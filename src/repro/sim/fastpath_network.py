"""Vectorized multi-switch network fast path.

The object-model network simulator
(:class:`repro.network.netsim.NetworkSimulator`) advances one network
replica at a time with per-cell Python objects, which is faithful but
slow: every Monte-Carlo point of a network experiment (the Figure 9
parking-lot sweep, fabric-sizing scans over mesh/fat-tree shapes) pays
per-cell deque traffic at every hop.  This module is its batched
counterpart, in the same spirit as :mod:`repro.sim.fastpath` for the
single switch:

- the VOQ state of **B independent network replicas** is one
  ``(B, N, N)`` count array *per switch* -- no Cell objects;
- every switch advances all B replicas with a single
  :class:`repro.core.batch.BatchScheduler` kernel call per slot (any
  registry scheduler -- PIM by default);
- links are latency-indexed ring buffers of in-flight per-flow cell
  counts, so propagation costs one slice per switch per slot;
- host injection (Bernoulli arrivals + round-robin flow service) and
  credit-based link flow control are evaluated as whole-array masks.

Slot-exact parity with the object model
---------------------------------------

With ``replicas=1`` and the default (PIM) scheduler, a run replicates
a freshly built :class:`~repro.network.netsim.NetworkSimulator` with
the same root seed *draw for draw*: scheduler streams are seeded from
the same ``sched:{switch}`` named streams, replica 0's host streams
are the object's ``host:{host}`` streams consumed in the same order
(one uniform per stochastic flow per unblocked slot), and the
slot phases run in the object's order -- deliveries land, hosts
inject (credit-checked first, consuming no draws when blocked),
switches schedule sequentially in ``topology.switches()`` order with
blocked-output masks computed at each switch's turn.  Per-slot
injection/delivery/transfer/backlog series therefore match the
object's :class:`~repro.network.netsim.NetworkSlotRecord` stream
exactly; :func:`repro.check.differential.network_parity` asserts this
on every bundled topology.

What cell identity costs and what replaces it: per-flow FIFO order is
implicit (a flow's cells follow one path and every per-hop queue is
FIFO), so mean end-to-end delay is recovered per flow by Little's law
-- a cell injected in slot t and delivered in slot t' is present in
exactly ``t' - t`` end-of-slot in-system samples.  Over a run whose
warm-window cells all reach their destination the per-flow mean equals
the object backend's :class:`~repro.sim.stats.DelayStats` mean
exactly; cells still in flight at the end contribute their partial
delay to the integral but no delivery, the usual truncation bias of
the estimator.

The one per-cell structure retained is a deque of flow ids per
(input, output) VOQ *that more than one flow shares*, per replica --
needed to replicate :class:`repro.switch.buffers.VOQBuffer`'s
round-robin flow service bit for bit.  Single-flow VOQs (the common
case) resolve departures purely from arrays.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.batch import build_batch_scheduler
from repro.core.pim import AN2_ITERATIONS, AcceptPolicy
from repro.network.netsim import FlowSpec
from repro.obs.perf import NULL_PHASE_TIMER
from repro.network.routing import Router
from repro.network.topology import Topology
from repro.sim.rng import RandomStreams

__all__ = [
    "NetworkFastpath",
    "NetworkFastpathResult",
    "NetworkSeries",
    "run_fastpath_network",
]

#: Slots of host-injection uniforms pre-drawn per RNG call (amortizes
#: generator overhead without breaking draw-for-draw stream order).
_HOST_CHUNK_SLOTS = 1024


@dataclass(frozen=True)
class _HostPlan:
    """Compiled injection state for one source host."""

    name: str
    fids: np.ndarray  # (m,) global flow indices, in add_flow order
    greedy: np.ndarray  # (m,) bool: rate >= 1.0
    stoch_local: np.ndarray  # (k,) local indices of stochastic flows
    stoch_col: np.ndarray  # (m,) local index -> column in pending (-1 greedy)
    rates: np.ndarray  # (k,) stochastic rates, in flow order
    first_switch: int  # peer switch index, or -1 for a direct host link
    peer_port: int  # input port on the peer (credit check target)
    latency: int  # first-hop link latency


@dataclass(frozen=True)
class _SwitchPlan:
    """Compiled routing/link state for one switch."""

    name: str
    ports: int
    in_port: np.ndarray  # (F,) arrival port per flow (-1: not routed here)
    out_port: np.ndarray  # (F,) departure port per flow (-1: not routed here)
    is_multi: np.ndarray  # (F,) flow's VOQ here is shared by >1 flow
    voq_single: np.ndarray  # (N, N) sole flow index, -1 shared, -2 empty
    multi_voqs: Tuple[Tuple[int, int], ...]  # shared (input, output) pairs
    next_switch: np.ndarray  # (F,) downstream switch index (-1: host)
    next_lat: np.ndarray  # (F,) latency of the flow's outgoing link
    switch_ports: Tuple[Tuple[int, int, int], ...]  # (port, peer idx, peer port)
    ring_slots: int  # max incoming link latency + 1


@dataclass
class NetworkSeries:
    """Per-slot observables of replica 0, for differential checks.

    Row ``t`` of each array is the slot-``t`` counterpart of the object
    simulator's :class:`~repro.network.netsim.NetworkSlotRecord`.
    """

    flow_ids: List[int]
    switch_names: List[str]
    injected: np.ndarray  # (slots, F) cells injected per flow
    delivered: np.ndarray  # (slots, F) cells delivered per flow
    transfers: np.ndarray  # (slots, S) cells crossing each fabric
    backlog: np.ndarray  # (slots, S) buffered cells at slot end


@dataclass
class NetworkFastpathResult:
    """Per-flow, per-replica statistics from a fast-path network run.

    Mirrors the pooled API of
    :class:`repro.network.netsim.NetworkResult` (``throughput``,
    ``shares``) so sweeps can switch backends, and adds per-replica
    arrays for confidence intervals.

    ``delivered`` counts deliveries in slots >= warmup (the object
    backend's convention); ``delay_cells``/``delay_integral`` key the
    warm-up filter on the *injection* slot, matching
    :class:`repro.sim.stats.DelayStats`, with the delay sum recovered
    by Little's law (exact for cells delivered before the run ends).
    """

    flow_ids: List[int]
    replicas: int
    slots: int
    warmup: int
    delivered: np.ndarray  # (B, F) deliveries inside the window
    injected: np.ndarray  # (B, F) injections over the whole run
    delay_cells: np.ndarray  # (B, F) warm cells delivered
    delay_integral: np.ndarray  # (B, F) summed in-system slots of warm cells
    final_backlog: np.ndarray  # (B,) cells buffered in switches at the end
    series: Optional[NetworkSeries] = None
    _index: Dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._index = {fid: k for k, fid in enumerate(self.flow_ids)}

    @property
    def window(self) -> int:
        """Measurement slots: ``slots - warmup``."""
        return self.slots - self.warmup

    def throughput(self, flow_id: int) -> float:
        """Delivered cells per slot for one flow, pooled over replicas."""
        if self.window <= 0:
            return 0.0
        column = self.delivered[:, self._index[flow_id]]
        return float(column.sum()) / (self.window * self.replicas)

    def shares(self) -> Dict[int, float]:
        """Each flow's fraction of all delivered cells (pooled)."""
        total = int(self.delivered.sum())
        if total == 0:
            return {fid: 0.0 for fid in self.flow_ids}
        return {
            fid: float(self.delivered[:, k].sum()) / total
            for k, fid in enumerate(self.flow_ids)
        }

    def mean_delay(self, flow_id: int) -> float:
        """Pooled mean end-to-end delay of one flow, in slots."""
        k = self._index[flow_id]
        cells = int(self.delay_cells[:, k].sum())
        if cells == 0:
            return 0.0
        return float(self.delay_integral[:, k].sum()) / cells

    def delivered_map(self, replica: int = 0) -> Dict[int, int]:
        """One replica's delivered counts as a flow-id dict."""
        return {
            fid: int(self.delivered[replica, k])
            for k, fid in enumerate(self.flow_ids)
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        pooled = int(self.delivered.sum())
        return (
            f"network fastpath x{self.replicas} replicas, {self.slots} slots "
            f"({len(self.flow_ids)} flows): delivered {pooled} cells, "
            f"backlog {int(self.final_backlog.sum())}"
        )


class NetworkFastpath:
    """Batch-vectorized counterpart of
    :class:`repro.network.netsim.NetworkSimulator`.

    Parameters
    ----------
    topology:
        The network graph (switches, hosts, links with latencies).
    replicas:
        Independent network replicas B advanced in lockstep.
    seed:
        Root seed.  Scheduler streams are derived exactly as the
        object simulator derives them (``sched:{switch}``), and
        replica 0's host streams are the object's ``host:{host}``
        streams, which is what makes B=1 runs slot-exact replicas of
        the object backend.
    buffer_limit:
        Optional per-input-port buffer size in cells; enables the
        same credit-based link flow control as the object simulator.
    iterations, accept:
        Kernel configuration per switch (defaults match the object
        simulator's default scheduler factory).
    scheduler:
        Batched kernel registry name used at every switch
        (``repro.core.BATCH_SCHEDULERS``); occupancy-aware kernels see
        each switch's VOQ depths masked by the blocked-output requests.

    Flows are registered with :meth:`add_flow`; :meth:`run` simulates.
    Every ``run()`` is an independent replay from slot 0, like the
    object backend's.
    """

    def __init__(
        self,
        topology: Topology,
        replicas: int = 1,
        seed: Optional[int] = None,
        buffer_limit: Optional[int] = None,
        iterations: Optional[int] = AN2_ITERATIONS,
        accept: AcceptPolicy = "random",
        scheduler: str = "pim",
    ):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if buffer_limit is not None and buffer_limit < 1:
            raise ValueError(f"buffer_limit must be >= 1, got {buffer_limit}")
        self.topology = topology
        self.replicas = replicas
        self.seed = seed
        self.buffer_limit = buffer_limit
        self.iterations = iterations
        self.accept = accept
        self.scheduler = scheduler
        self.router = Router(topology)
        self._flows: Dict[int, FlowSpec] = {}
        self._host_order: List[str] = []  # sources, in first-flow order
        self._host_flows: Dict[str, List[FlowSpec]] = {}
        self._switch_names = [node.name for node in topology.switches()]
        self._switch_index = {name: k for k, name in enumerate(self._switch_names)}
        self._plans: Optional[Tuple[List[_SwitchPlan], List[_HostPlan], int]] = None

    def add_flow(self, flow: FlowSpec, path: Optional[List[str]] = None) -> None:
        """Register a flow: install its route and its host source."""
        if flow.flow_id in self._flows:
            raise ValueError(f"duplicate flow id {flow.flow_id}")
        self.router.install(flow.flow_id, flow.src, flow.dst, path)
        self._flows[flow.flow_id] = flow
        if flow.src not in self._host_flows:
            self._host_order.append(flow.src)
            self._host_flows[flow.src] = []
        self._host_flows[flow.src].append(flow)
        self._plans = None

    # ------------------------------------------------------------------
    # Compilation: topology + routes -> dense per-switch/per-host arrays
    # ------------------------------------------------------------------

    def _compile(self) -> Tuple[List[_SwitchPlan], List[_HostPlan], int]:
        if self._plans is not None:
            return self._plans
        flow_ids = list(self._flows)
        fcount = len(flow_ids)
        fidx = {fid: k for k, fid in enumerate(flow_ids)}
        n_sw = len(self._switch_names)

        in_port = [np.full(fcount, -1, dtype=np.int64) for _ in range(n_sw)]
        out_port = [np.full(fcount, -1, dtype=np.int64) for _ in range(n_sw)]
        next_switch = [np.full(fcount, -1, dtype=np.int64) for _ in range(n_sw)]
        next_lat = [np.zeros(fcount, dtype=np.int64) for _ in range(n_sw)]
        max_in_lat = [0] * n_sw
        delivery_lat = 1

        for fid in flow_ids:
            f = fidx[fid]
            route = self.router.route(fid)
            path = route.path
            # Walk the actual links hop by hop, starting from the host's
            # single port, so parallel links resolve to the right ports.
            node, port = path[0], 0
            for hop in range(1, len(path)):
                link = self.topology.link_at(node, port)
                if link is None:
                    raise ValueError(f"{node} port {port} is not connected")
                peer, peer_port = link.endpoint(node)
                if peer != path[hop]:
                    raise AssertionError(
                        f"flow {fid}: link from {node} reaches {peer}, "
                        f"path expects {path[hop]}"
                    )
                if hop == len(path) - 1:
                    delivery_lat = max(delivery_lat, link.latency)
                else:
                    s2 = self._switch_index[peer]
                    in_port[s2][f] = peer_port
                    out_port[s2][f] = self.router.output_port(peer, fid)
                    max_in_lat[s2] = max(max_in_lat[s2], link.latency)
                if node != path[0]:
                    s1 = self._switch_index[node]
                    if hop == len(path) - 1:
                        next_switch[s1][f] = -1
                    else:
                        next_switch[s1][f] = self._switch_index[peer]
                    next_lat[s1][f] = link.latency
                node = peer
                if hop < len(path) - 1:
                    port = self.router.output_port(node, fid)

        switch_plans: List[_SwitchPlan] = []
        for s, name in enumerate(self._switch_names):
            ports = self.topology.node(name).ports
            voq_single = np.full((ports, ports), -2, dtype=np.int64)
            members: Dict[Tuple[int, int], List[int]] = {}
            for f in range(fcount):
                if in_port[s][f] < 0:
                    continue
                key = (int(in_port[s][f]), int(out_port[s][f]))
                members.setdefault(key, []).append(f)
            is_multi = np.zeros(fcount, dtype=bool)
            multi_voqs = []
            for (i, j), flows_here in members.items():
                if len(flows_here) == 1:
                    voq_single[i, j] = flows_here[0]
                else:
                    voq_single[i, j] = -1
                    multi_voqs.append((i, j))
                    for f in flows_here:
                        is_multi[f] = True
            sw_ports = []
            for j in range(ports):
                peer = self.topology.peer(name, j)
                if peer is not None and self.topology.node(peer[0]).is_switch:
                    sw_ports.append((j, self._switch_index[peer[0]], peer[1]))
            switch_plans.append(
                _SwitchPlan(
                    name=name,
                    ports=ports,
                    in_port=in_port[s],
                    out_port=out_port[s],
                    is_multi=is_multi,
                    voq_single=voq_single,
                    multi_voqs=tuple(multi_voqs),
                    next_switch=next_switch[s],
                    next_lat=next_lat[s],
                    switch_ports=tuple(sw_ports),
                    ring_slots=max_in_lat[s] + 1,
                )
            )

        host_plans: List[_HostPlan] = []
        for host in self._host_order:
            flows = self._host_flows[host]
            fids = np.array([fidx[f.flow_id] for f in flows], dtype=np.int64)
            greedy = np.array([f.rate >= 1.0 for f in flows], dtype=bool)
            stoch_local = np.nonzero(~greedy)[0].astype(np.int64)
            stoch_col = np.full(len(flows), -1, dtype=np.int64)
            stoch_col[stoch_local] = np.arange(stoch_local.size)
            rates = np.array([flows[k].rate for k in stoch_local], dtype=np.float64)
            link = self.topology.link_at(host, 0)
            if link is None:
                raise ValueError(f"source host {host} is not connected")
            peer, peer_port = link.endpoint(host)
            if self.topology.node(peer).is_switch:
                first_switch = self._switch_index[peer]
            else:
                first_switch = -1
                delivery_lat = max(delivery_lat, link.latency)
            host_plans.append(
                _HostPlan(
                    name=host,
                    fids=fids,
                    greedy=greedy,
                    stoch_local=stoch_local,
                    stoch_col=stoch_col,
                    rates=rates,
                    first_switch=first_switch,
                    peer_port=peer_port,
                    latency=link.latency,
                )
            )

        self._plans = (switch_plans, host_plans, delivery_lat + 1)
        return self._plans

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def run(
        self,
        slots: int,
        warmup: int = 0,
        record_series: bool = False,
        check: bool = False,
        phase_timer=None,
    ) -> NetworkFastpathResult:
        """Simulate ``slots`` slots across all replicas.

        Parameters
        ----------
        slots, warmup:
            Run length and transient-elimination window, as the object
            backend's :meth:`~repro.network.netsim.NetworkSimulator.run`.
        record_series:
            Collect replica 0's per-slot
            injection/delivery/transfer/backlog series (the
            :class:`NetworkSeries` the parity oracle compares against
            object-backend :class:`~repro.network.netsim.NetworkSlotRecord`
            records).  Costs a few scalar reads per slot.
        check:
            Assert conservation/non-negativity invariants every slot
            (tests only; slows the run).
        phase_timer:
            Optional :class:`repro.obs.perf.PhaseTimer`; profiles the
            run under the shared taxonomy (``run`` root with
            ``run/compile`` plan compilation + scheduler construction,
            ``run/delivery`` link deliveries landing, ``run/arrivals``
            host injection, ``run/kernel`` per-switch scheduling and
            transfer, ``run/update`` delay/series/check accounting).
        """
        timer = (
            phase_timer
            if phase_timer is not None and phase_timer.enabled
            else NULL_PHASE_TIMER
        )
        with timer.phase("run"):
            return self._run(timer, slots, warmup, record_series, check)

    def _run(
        self,
        timer,
        slots: int,
        warmup: int,
        record_series: bool,
        check: bool,
    ) -> NetworkFastpathResult:
        if slots <= 0:
            raise ValueError(f"slots must be positive, got {slots}")
        if not 0 <= warmup <= slots:
            raise ValueError(f"warmup must be in [0, {slots}], got {warmup}")
        with timer.phase("compile"):
            switch_plans, host_plans, dring_slots = self._compile()
            flow_ids = list(self._flows)
            fcount = len(flow_ids)
            n_sw = len(switch_plans)
            B = self.replicas
            limit = self.buffer_limit

            streams = RandomStreams(self.seed)
            scheds = []
            for sw in switch_plans:
                sched_seed = int(streams.get(f"sched:{sw.name}").integers(2**31))
                scheds.append(
                    build_batch_scheduler(
                        self.scheduler,
                        replicas=B,
                        ports=sw.ports,
                        iterations=self.iterations,
                        accept=self.accept,
                        rng=np.random.default_rng(sched_seed),
                        track_sizes=False,
                    )
                )

        occ = [np.zeros((B, sw.ports, sw.ports), dtype=np.int64) for sw in switch_plans]
        queued = [np.zeros((B, fcount), dtype=np.int64) for _ in switch_plans]
        rings = [
            np.zeros((sw.ring_slots, B, fcount), dtype=np.int64)
            for sw in switch_plans
        ]
        dring = np.zeros((dring_slots, B, fcount), dtype=np.int64)
        deques: List[Dict[Tuple[int, int], List[deque]]] = [
            {key: [deque() for _ in range(B)] for key in sw.multi_voqs}
            for sw in switch_plans
        ]

        # Replica 0 consumes the object simulator's host:{h} stream;
        # extra replicas get independent derived streams.
        host_gens = [
            [
                streams.get(f"host:{hp.name}" if b == 0 else f"host:{hp.name}/replica{b}")
                for b in range(B)
            ]
            for hp in host_plans
        ]
        pool_len = [hp.stoch_local.size * _HOST_CHUNK_SLOTS for hp in host_plans]
        pools = [
            np.zeros((B, L), dtype=np.float64) if L else None
            for L in pool_len
        ]
        pool_cursor = [np.full(B, L, dtype=np.int64) for L in pool_len]
        pending = [
            np.zeros((B, hp.stoch_local.size), dtype=np.int64) for hp in host_plans
        ]
        cursor_rr = [np.zeros(B, dtype=np.int64) for _ in host_plans]

        injected = np.zeros((B, fcount), dtype=np.int64)
        delivered_total = np.zeros((B, fcount), dtype=np.int64)
        delivered_window = np.zeros((B, fcount), dtype=np.int64)
        delay_cells = np.zeros((B, fcount), dtype=np.int64)
        delay_integral = np.zeros((B, fcount), dtype=np.int64)
        in_system_warm = np.zeros((B, fcount), dtype=np.int64)
        cold_outstanding = np.zeros((B, fcount), dtype=np.int64)

        if record_series:
            series_inj = np.zeros((slots, fcount), dtype=np.int64)
            series_del = np.zeros((slots, fcount), dtype=np.int64)
            series_xfer = np.zeros((slots, n_sw), dtype=np.int64)
            series_backlog = np.zeros((slots, n_sw), dtype=np.int64)

        all_replicas = np.arange(B)

        for t in range(slots):
            # -- 1. Link deliveries land: switch arrivals buffer, host
            #       arrivals complete end to end.
            with timer.phase("delivery"):
                dslice = dring[t % dring_slots]
                if dslice.any():
                    if record_series:
                        series_del[t] = dslice[0]
                    bb, ff = np.nonzero(dslice)
                    delivered_total[bb, ff] += 1
                    if t >= warmup:
                        delivered_window[bb, ff] += 1
                    cold = cold_outstanding[bb, ff] > 0
                    cold_outstanding[bb[cold], ff[cold]] -= 1
                    warm_b, warm_f = bb[~cold], ff[~cold]
                    delay_cells[warm_b, warm_f] += 1
                    in_system_warm[warm_b, warm_f] -= 1
                    dslice[:] = 0
                for s, sw in enumerate(switch_plans):
                    aslice = rings[s][t % sw.ring_slots]
                    if not aslice.any():
                        continue
                    bb, ff = np.nonzero(aslice)
                    ii = sw.in_port[ff]
                    jj = sw.out_port[ff]
                    # One cell per link direction per slot means at most
                    # one arrival per (replica, input): the triples are
                    # unique and plain fancy increments are safe.
                    occ[s][bb, ii, jj] += 1
                    pre = queued[s][bb, ff]
                    queued[s][bb, ff] = pre + 1
                    shared = sw.is_multi[ff]
                    if shared.any():
                        dq = deques[s]
                        for b, f, i, j, p in zip(
                            bb[shared], ff[shared], ii[shared], jj[shared],
                            pre[shared],
                        ):
                            if p == 0:  # empty -> non-empty: becomes eligible
                                dq[(int(i), int(j))][b].append(int(f))
                    aslice[:] = 0

            # -- 2. Hosts inject one cell each (credit-checked first;
            #       a blocked host consumes no draws, like the object).
            arrivals_span = timer.phase("arrivals")
            arrivals_span.__enter__()
            for h, hp in enumerate(host_plans):
                if limit is not None and hp.first_switch >= 0:
                    free = occ[hp.first_switch][:, hp.peer_port, :].sum(axis=1) < limit
                    u = np.nonzero(free)[0]
                    if u.size == 0:
                        continue
                else:
                    u = all_replicas
                m = hp.fids.size
                k = hp.stoch_local.size
                if k:
                    L = pool_len[h]
                    refill = np.nonzero(pool_cursor[h] >= L)[0]
                    for b in refill:
                        pools[h][b] = host_gens[h][b].random(L)
                    pool_cursor[h][refill] = 0
                    take = pool_cursor[h][u, None] + np.arange(k)[None, :]
                    draws = pools[h][u[:, None], take]
                    pool_cursor[h][u] += k
                    pending[h][u] += draws < hp.rates[None, :]
                    elig = np.broadcast_to(hp.greedy, (u.size, m)).copy()
                    elig[:, hp.stoch_local] = pending[h][u] > 0
                else:
                    if not hp.greedy.any():
                        continue
                    elig = np.broadcast_to(hp.greedy, (u.size, m))
                offs = (np.arange(m)[None, :] - cursor_rr[h][u, None]) % m
                score = np.where(elig, offs, m)
                pick = score.argmin(axis=1)
                emitted = score[np.arange(u.size), pick] < m
                if not emitted.any():
                    continue
                eu = u[emitted]
                pk = pick[emitted]
                cursor_rr[h][eu] = (pk + 1) % m
                stoch_pick = ~hp.greedy[pk]
                if stoch_pick.any():
                    pending[h][eu[stoch_pick], hp.stoch_col[pk[stoch_pick]]] -= 1
                fsel = hp.fids[pk]
                injected[eu, fsel] += 1
                if t >= warmup:
                    in_system_warm[eu, fsel] += 1
                else:
                    cold_outstanding[eu, fsel] += 1
                if hp.first_switch >= 0:
                    ring = rings[hp.first_switch]
                    ring[(t + hp.latency) % ring.shape[0], eu, fsel] += 1
                else:
                    dring[(t + hp.latency) % dring_slots, eu, fsel] += 1
                if record_series and eu[0] == 0:
                    series_inj[t, fsel[0]] += 1
            arrivals_span.__exit__(None, None, None)

            # -- 3. Switches schedule and transfer, sequentially in
            #       topology order (credit masks see earlier switches'
            #       departures, exactly like the object loop).
            kernel_span = timer.phase("kernel")
            kernel_span.__enter__()
            for s, sw in enumerate(switch_plans):
                requests = occ[s] > 0
                if limit is not None:
                    for j, ps, pp in sw.switch_ports:
                        blocked = occ[ps][:, pp, :].sum(axis=1) >= limit
                        if blocked.any():
                            requests[blocked, :, j] = False
                if not requests.any():
                    continue  # zero scheduling rounds run either way: no draws
                if getattr(scheds[s], "needs_occupancy", False):
                    match = scheds[s].schedule(
                        requests, np.where(requests, occ[s], 0)
                    )
                else:
                    match = scheds[s].schedule(requests)
                bb, ii = np.nonzero(match >= 0)
                if bb.size == 0:
                    continue
                jj = match[bb, ii]
                occ[s][bb, ii, jj] -= 1
                if check and (occ[s] < 0).any():
                    raise AssertionError(f"negative VOQ occupancy at {sw.name}")
                fsel = sw.voq_single[ii, jj].copy()
                shared = np.nonzero(fsel < 0)[0]
                for x in shared:
                    fsel[x] = deques[s][(int(ii[x]), int(jj[x]))][bb[x]].popleft()
                queued[s][bb, fsel] -= 1
                for x in shared:
                    if queued[s][bb[x], fsel[x]] > 0:
                        # Flow still has cells: rotate to the back.
                        deques[s][(int(ii[x]), int(jj[x]))][bb[x]].append(int(fsel[x]))
                tgt = sw.next_switch[fsel]
                lat = sw.next_lat[fsel]
                to_host = tgt < 0
                if to_host.any():
                    dring[
                        (t + lat[to_host]) % dring_slots, bb[to_host], fsel[to_host]
                    ] += 1
                onward = np.nonzero(~to_host)[0]
                if onward.size:
                    for s2 in np.unique(tgt[onward]):
                        sel = onward[tgt[onward] == s2]
                        ring = rings[s2]
                        ring[(t + lat[sel]) % ring.shape[0], bb[sel], fsel[sel]] += 1
                if record_series:
                    series_xfer[t, s] = int((bb == 0).sum())
            kernel_span.__exit__(None, None, None)

            with timer.phase("update"):
                delay_integral += in_system_warm
                if record_series:
                    for s in range(n_sw):
                        series_backlog[t, s] = int(occ[s][0].sum())
                if check:
                    buffered = sum(o.sum(axis=(1, 2)) for o in occ)
                    in_flight = sum(r.sum(axis=(0, 2)) for r in rings) + dring.sum(
                        axis=(0, 2)
                    )
                    if not np.array_equal(
                        injected.sum(axis=1),
                        delivered_total.sum(axis=1) + buffered + in_flight,
                    ):
                        raise AssertionError(
                            f"cell conservation violated at slot {t}"
                        )
                    for s in range(n_sw):
                        if not np.array_equal(
                            occ[s].sum(axis=(1, 2)), queued[s].sum(axis=1)
                        ):
                            raise AssertionError(
                                f"VOQ/per-flow count mismatch at "
                                f"{switch_plans[s].name}"
                            )

        series = None
        if record_series:
            series = NetworkSeries(
                flow_ids=flow_ids,
                switch_names=list(self._switch_names),
                injected=series_inj,
                delivered=series_del,
                transfers=series_xfer,
                backlog=series_backlog,
            )
        final_backlog = sum(o.sum(axis=(1, 2)) for o in occ) if n_sw else np.zeros(
            B, dtype=np.int64
        )
        return NetworkFastpathResult(
            flow_ids=flow_ids,
            replicas=B,
            slots=slots,
            warmup=warmup,
            delivered=delivered_window,
            injected=injected,
            delay_cells=delay_cells,
            delay_integral=delay_integral,
            final_backlog=final_backlog,
            series=series,
        )


def run_fastpath_network(
    topology: Topology,
    flows: List[FlowSpec],
    slots: int,
    replicas: int = 1,
    warmup: int = 0,
    seed: Optional[int] = 0,
    buffer_limit: Optional[int] = None,
    scheduler: str = "pim",
    record_series: bool = False,
    check: bool = False,
    phase_timer=None,
) -> NetworkFastpathResult:
    """Build a :class:`NetworkFastpath`, add ``flows``, and run it."""
    sim = NetworkFastpath(
        topology, replicas=replicas, seed=seed, buffer_limit=buffer_limit,
        scheduler=scheduler,
    )
    for flow in flows:
        sim.add_flow(flow)
    return sim.run(
        slots,
        warmup=warmup,
        record_series=record_series,
        check=check,
        phase_timer=phase_timer,
    )
