"""A minimal slot-synchronous simulation engine.

Single-switch experiments drive themselves (see
:meth:`repro.switch.switch.CrossbarSwitch.run`); the engine exists for
compositions of several clocked components -- most importantly the
multi-switch network simulator, where sources, switches, and links must
advance in a consistent per-slot order.

Each slot the engine runs three deterministic sub-phases over all
registered processes:

1. ``begin_slot``  -- arrivals are injected / cells land from links,
2. ``transfer``    -- each component makes its scheduling decision and
   moves cells (switch crossbar transfers, link propagation),
3. ``end_slot``    -- bookkeeping, statistics, departures.

This three-phase split mirrors the hardware pipeline: the AN2 runs
parallel iterative matching for the *next* slot while the current
slot's cells cross the crossbar, so a cell arriving in slot t is first
eligible to depart in slot t+1 at the earliest; our switch model
documents where it makes the same assumption.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, runtime_checkable

from repro.obs.perf import NULL_PHASE_TIMER

__all__ = ["SlotProcess", "SimulationEngine"]


@runtime_checkable
class SlotProcess(Protocol):
    """Protocol for components driven by :class:`SimulationEngine`.

    All three hooks are optional in spirit; components implement the
    phases they care about and leave the rest as no-ops.
    """

    def begin_slot(self, slot: int) -> None:
        """Phase 1: accept arrivals for this slot."""

    def transfer(self, slot: int) -> None:
        """Phase 2: schedule and move cells."""

    def end_slot(self, slot: int) -> None:
        """Phase 3: account departures and update statistics."""


class SimulationEngine:
    """Drives a set of :class:`SlotProcess` components slot by slot.

    Processes run in registration order within each phase, and all
    processes complete a phase before any process starts the next; this
    makes cross-component interactions (e.g. a link delivering into a
    downstream switch) independent of registration order so long as
    producers write in ``transfer`` and consumers read in the following
    slot's ``begin_slot``.
    """

    def __init__(self, probe=None, phase_timer=None) -> None:
        self._processes: List[SlotProcess] = []
        self._slot = 0
        self._slot_hooks: List[Callable[[int], None]] = []
        # Optional repro.obs.probe.Probe; when enabled, each slot emits
        # a SlotBegin event before phase 1 runs, giving multi-component
        # simulations the same per-slot trace spine as the single-switch
        # backends.  Disabled (the default) costs one boolean per slot.
        self._probe = probe
        self._traced = probe is not None and probe.enabled
        # Optional repro.obs.perf.PhaseTimer; the three engine phases
        # map onto the shared taxonomy: begin_slot -> run/arrivals,
        # transfer -> run/kernel, end_slot -> run/update.
        self._timer = (
            phase_timer
            if phase_timer is not None and phase_timer.enabled
            else NULL_PHASE_TIMER
        )

    @property
    def slot(self) -> int:
        """The next slot to be executed."""
        return self._slot

    @property
    def probe(self):
        """The attached probe, or None when the engine is untraced."""
        return self._probe

    def add_process(self, process: SlotProcess) -> None:
        """Register a component; it joins at the current slot."""
        self._processes.append(process)

    def add_slot_hook(self, hook: Callable[[int], None]) -> None:
        """Register a callback invoked after each completed slot."""
        self._slot_hooks.append(hook)

    def run(self, slots: int, until: Optional[Callable[[int], bool]] = None) -> int:
        """Advance the simulation by up to ``slots`` slots.

        Parameters
        ----------
        slots:
            Maximum number of slots to execute.
        until:
            Optional early-stop predicate evaluated after each slot with
            the slot index just completed; simulation stops when it
            returns True.

        Returns the number of slots actually executed.
        """
        if slots < 0:
            raise ValueError(f"slots must be non-negative, got {slots}")
        timer = self._timer
        executed = 0
        with timer.phase("run"):
            for _ in range(slots):
                current = self._slot
                if self._traced:
                    self._probe.begin_slot(current)
                with timer.phase("arrivals"):
                    for process in self._processes:
                        process.begin_slot(current)
                with timer.phase("kernel"):
                    for process in self._processes:
                        process.transfer(current)
                with timer.phase("update"):
                    for process in self._processes:
                        process.end_slot(current)
                    for hook in self._slot_hooks:
                        hook(current)
                self._slot += 1
                executed += 1
                if until is not None and until(current):
                    break
        if self._traced and timer.enabled:
            self._probe.phase_profile(timer, slots=self._slot)
        return executed
