"""Statistics accumulators for slotted simulations.

The paper's Figures 3-5 plot *average queueing delay in cell slots*
against *offered load*, after discarding the initial transient
("All simulations were run for long enough to eliminate the effect of
any initial transient", Section 3.5).  The classes here provide:

- :class:`RunningMeanVar` -- Welford one-pass mean/variance,
- :class:`DelayStats` -- per-cell delay with warm-up discarding,
  histograms, and percentiles,
- :class:`ThroughputCounter` -- offered vs carried load accounting,
- :func:`batch_means_ci` -- batch-means confidence interval for a
  steady-state mean, used by the benches to report convergence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "RunningMeanVar",
    "DelayStats",
    "FlowStats",
    "ThroughputCounter",
    "batch_means_ci",
    "stationarity_ratio",
]


class RunningMeanVar:
    """One-pass (Welford) accumulator of mean and variance.

    >>> acc = RunningMeanVar()
    >>> for x in [1.0, 2.0, 3.0]:
    ...     acc.add(x)
    >>> acc.mean
    2.0
    >>> round(acc.variance, 6)
    1.0
    """

    __slots__ = ("count", "_mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        """Incorporate one observation."""
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than 2 samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count < 2:
            return 0.0
        return self.stddev / math.sqrt(self.count)

    def merge(self, other: "RunningMeanVar") -> None:
        """Fold another accumulator into this one (parallel Welford)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count, self._mean, self._m2 = other.count, other._mean, other._m2
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total


@dataclass
class DelayStats:
    """Per-cell queueing-delay statistics with warm-up discarding.

    Delays are recorded in integer cell slots (departure slot minus
    arrival slot).  Observations from cells that *arrived* before
    ``warmup`` are discarded, matching the paper's transient removal.

    Warm-up discard convention, stated precisely: the filter keys on
    the **arrival** slot, not the departure slot.  A cell that arrives
    in slot ``warmup - 1`` and departs in slot ``warmup + 10`` is
    discarded; a cell that arrives in slot ``warmup`` is counted no
    matter how late it departs.  This is deliberate -- filtering on
    departures would bias the window toward short delays (cells that
    arrived late in the transient but cleared quickly).  The fast-path
    backend's Little's-law estimator follows the same arrival-keyed
    convention when run with ``warmup_mode="arrival"``
    (:func:`repro.sim.fastpath.run_fastpath`); its historical default
    ``"slot"`` mode instead drops whole slots before ``warmup`` from
    the backlog integral, which agrees in steady state but differs at
    the boundary by O(backlog) cells.

    Attributes
    ----------
    warmup:
        Arrival-slot threshold below which observations are ignored
        (``warmup == 0`` keeps everything, including the transient).
    """

    warmup: int = 0
    _acc: RunningMeanVar = field(default_factory=RunningMeanVar)
    _histogram: Dict[int, int] = field(default_factory=dict)
    _max: int = 0

    def record(self, arrival_slot: int, departure_slot: int) -> None:
        """Record one cell's delay; ignored if it arrived during warm-up."""
        if arrival_slot < self.warmup:
            return
        delay = departure_slot - arrival_slot
        if delay < 0:
            raise ValueError(
                f"negative delay: departed slot {departure_slot} before arrival slot {arrival_slot}"
            )
        self._acc.add(float(delay))
        self._histogram[delay] = self._histogram.get(delay, 0) + 1
        if delay > self._max:
            self._max = delay

    @property
    def count(self) -> int:
        """Number of recorded (post-warm-up) cells."""
        return self._acc.count

    @property
    def mean(self) -> float:
        """Mean delay in slots."""
        return self._acc.mean

    @property
    def stddev(self) -> float:
        """Standard deviation of delay in slots."""
        return self._acc.stddev

    @property
    def stderr(self) -> float:
        """Standard error of the mean delay."""
        return self._acc.stderr

    @property
    def max(self) -> int:
        """Largest observed delay in slots."""
        return self._max

    def percentile(self, q: float) -> int:
        """Return the smallest delay d with at least ``q`` of mass <= d.

        ``q`` is a fraction in (0, 1].  Raises ``ValueError`` when empty.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        if not self._histogram:
            raise ValueError("no observations recorded")
        target = q * self.count
        running = 0
        for delay in sorted(self._histogram):
            running += self._histogram[delay]
            if running >= target:
                return delay
        return self._max

    def histogram(self) -> Dict[int, int]:
        """Copy of the delay histogram {delay_slots: cell_count}."""
        return dict(self._histogram)


@dataclass
class ThroughputCounter:
    """Offered vs carried traffic accounting over a measurement window.

    *Offered load* counts cells injected by the traffic source; *carried
    load* counts cells that departed the switch.  Normalizing carried
    cells by (slots x ports) yields per-link utilization, the x/y axes
    of Figures 1 and 3-5.
    """

    warmup: int = 0
    offered: int = 0
    carried: int = 0
    _first_slot: Optional[int] = None
    _last_slot: Optional[int] = None

    def record_arrival(self, slot: int, count: int = 1) -> None:
        """Record ``count`` cells offered in ``slot``."""
        if slot < self.warmup:
            return
        self._touch(slot)
        self.offered += count

    def record_departure(self, slot: int, count: int = 1) -> None:
        """Record ``count`` cells carried in ``slot``."""
        if slot < self.warmup:
            return
        self._touch(slot)
        self.carried += count

    def _touch(self, slot: int) -> None:
        if self._first_slot is None or slot < self._first_slot:
            self._first_slot = slot
        if self._last_slot is None or slot > self._last_slot:
            self._last_slot = slot

    @property
    def window(self) -> int:
        """Number of slots spanned by the measurement window."""
        if self._first_slot is None or self._last_slot is None:
            return 0
        return self._last_slot - self._first_slot + 1

    def carried_per_slot(self, ports: int = 1) -> float:
        """Mean carried cells per slot per port (link utilization)."""
        if self.window == 0:
            return 0.0
        return self.carried / (self.window * ports)

    def offered_per_slot(self, ports: int = 1) -> float:
        """Mean offered cells per slot per port."""
        if self.window == 0:
            return 0.0
        return self.offered / (self.window * ports)


def stationarity_ratio(samples: List[float]) -> float:
    """Second-half mean over first-half mean of a series.

    A cheap check that the warm-up truly removed the transient (the
    paper: "run for long enough to eliminate the effect of any initial
    transient"): a ratio far from 1 means the mean is still drifting
    and the measurement window should grow.  Returns ``inf`` when the
    first half's mean is zero but the second's is not.
    """
    if len(samples) < 4:
        raise ValueError("need at least 4 samples")
    half = len(samples) // 2
    first = sum(samples[:half]) / half
    second = sum(samples[half : 2 * half]) / half
    if first == 0.0:
        return 1.0 if second == 0.0 else math.inf
    return second / first


def batch_means_ci(samples: List[float], batches: int = 20, z: float = 1.96) -> Tuple[float, float]:
    """Batch-means estimate of (mean, half-width) for a correlated series.

    Slotted-simulation delay series are autocorrelated, so the naive
    standard error understates uncertainty.  Batch means splits the
    series into ``batches`` contiguous batches and treats batch averages
    as approximately independent.

    Returns ``(mean, half_width)``; half-width is ``z`` times the batch
    standard error.  Raises ``ValueError`` if there are fewer samples
    than batches.
    """
    n = len(samples)
    if batches < 2:
        raise ValueError("need at least 2 batches")
    if n < batches:
        raise ValueError(f"need at least {batches} samples, got {n}")
    size = n // batches
    means = []
    for b in range(batches):
        chunk = samples[b * size : (b + 1) * size]
        means.append(sum(chunk) / len(chunk))
    grand = sum(means) / batches
    var = sum((m - grand) ** 2 for m in means) / (batches - 1)
    half = z * math.sqrt(var / batches)
    return grand, half


class FlowStats:
    """Per-flow completion-time statistics with warm-up discarding.

    A flow of ``size`` cells that starts injecting at ``start_slot`` and
    whose last cell departs at ``completion_slot`` has flow completion
    time (FCT) ``completion_slot - start_slot + 1`` -- the same
    inclusive slot convention as per-cell delay, so a one-cell flow
    scheduled immediately has FCT 1.  Slowdown is FCT divided by the
    flow's ideal service time at line rate (``size`` slots, since an
    input injects at most one cell per slot), so slowdown >= 1 always.

    Warm-up mirrors :class:`DelayStats`'s arrival-keyed convention:
    flows that *start* before ``warmup`` are discarded, regardless of
    when they complete.  Flows still incomplete when the run ends are
    counted in ``incomplete`` but contribute no FCT sample.
    """

    def __init__(self, warmup: int = 0):
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        self.warmup = warmup
        self.incomplete = 0
        self.warm_discarded = 0
        self._samples: List[Tuple[int, int]] = []  # (size, fct)

    def record(self, size: int, start_slot: int, completion_slot: int) -> None:
        """Record one completed flow."""
        if size <= 0:
            raise ValueError(f"flow size must be positive, got {size}")
        if completion_slot < start_slot + size - 1:
            raise ValueError(
                f"flow of {size} cells cannot finish at slot {completion_slot} "
                f"having started at slot {start_slot}"
            )
        if start_slot < self.warmup:
            self.warm_discarded += 1
            return
        self._samples.append((size, completion_slot - start_slot + 1))

    def merge(self, other: "FlowStats") -> None:
        """Pool another accumulator's samples (e.g. across replicas)."""
        self.incomplete += other.incomplete
        self.warm_discarded += other.warm_discarded
        self._samples.extend(other._samples)

    @property
    def count(self) -> int:
        """Completed post-warm-up flows."""
        return len(self._samples)

    def observations(self) -> List[Tuple[int, int]]:
        """The ``(size, fct)`` samples, in completion order."""
        return list(self._samples)

    @property
    def mean_fct(self) -> float:
        if not self._samples:
            return 0.0
        return sum(f for _, f in self._samples) / len(self._samples)

    @property
    def mean_slowdown(self) -> float:
        if not self._samples:
            return 0.0
        return sum(f / s for s, f in self._samples) / len(self._samples)

    @staticmethod
    def _percentile(values: List[float], q: float) -> float:
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not values:
            return 0.0
        ordered = sorted(values)
        rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    def fct_percentile(self, q: float) -> float:
        """FCT at percentile ``q`` (nearest-rank)."""
        return self._percentile([float(f) for _, f in self._samples], q)

    def slowdown_percentile(self, q: float) -> float:
        """Slowdown at percentile ``q`` (nearest-rank)."""
        return self._percentile([f / s for s, f in self._samples], q)

    @property
    def p99_fct(self) -> float:
        return self.fct_percentile(99.0)

    @property
    def p99_slowdown(self) -> float:
        return self.slowdown_percentile(99.0)

    def summary(self) -> str:
        """One-line human-readable digest."""
        if not self._samples:
            return f"no completed flows ({self.incomplete} incomplete)"
        return (
            f"{self.count} flows: FCT mean {self.mean_fct:.2f} "
            f"p99 {self.p99_fct:.0f} slots, slowdown mean "
            f"{self.mean_slowdown:.2f} p99 {self.p99_slowdown:.2f}"
            f" ({self.incomplete} incomplete)"
        )

    def __repr__(self) -> str:
        return (
            f"FlowStats(count={self.count}, incomplete={self.incomplete}, "
            f"warmup={self.warmup})"
        )
