"""Flow routing tables.

"A routing table in each switch, built during network configuration,
determines the output port for each flow.  All cells from a flow take
the same path through the network." (Section 2.)

:class:`Router` owns the per-switch tables.  Installing a flow walks
its path and records, at every switch on it, the output port toward
the next hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.network.topology import Topology

__all__ = ["Router", "FlowRoute"]


@dataclass(frozen=True)
class FlowRoute:
    """An installed flow's path through the network."""

    flow_id: int
    src: str
    dst: str
    path: Tuple[str, ...]

    @property
    def hops(self) -> int:
        """Number of switches traversed."""
        return len(self.path) - 2  # exclude the two hosts


class Router:
    """Per-switch flow routing tables over a :class:`Topology`."""

    def __init__(self, topology: Topology):
        self.topology = topology
        # switch name -> flow_id -> output port
        self._tables: Dict[str, Dict[int, int]] = {
            node.name: {} for node in topology.switches()
        }
        self._routes: Dict[int, FlowRoute] = {}

    def install(self, flow_id: int, src: str, dst: str, path: Optional[List[str]] = None) -> FlowRoute:
        """Install a flow from host ``src`` to host ``dst``.

        Uses the BFS shortest path when ``path`` is omitted.  Raises
        ``ValueError`` for duplicate flows, unknown hosts, disconnected
        pairs, or an invalid explicit path.
        """
        if flow_id in self._routes:
            raise ValueError(f"flow {flow_id} already installed")
        for name in (src, dst):
            if self.topology.node(name).is_switch:
                raise ValueError(f"{name} is a switch; flows run host to host")
        if path is None:
            path = self.topology.shortest_path(src, dst)
            if path is None:
                raise ValueError(f"no path from {src} to {dst}")
        if path[0] != src or path[-1] != dst:
            raise ValueError("explicit path must start at src and end at dst")
        for index in range(1, len(path) - 1):
            switch = path[index]
            if not self.topology.node(switch).is_switch:
                raise ValueError(f"path interior node {switch} is not a switch")
            out_port = self.topology.port_toward(switch, path[index + 1])
            self._tables[switch][flow_id] = out_port
        route = FlowRoute(flow_id, src, dst, tuple(path))
        self._routes[flow_id] = route
        return route

    def output_port(self, switch: str, flow_id: int) -> int:
        """The configured output port for a flow at a switch.

        Raises ``KeyError`` when the flow is not routed through the
        switch -- a misdelivered cell, which the simulator treats as a
        hard error.
        """
        return self._tables[switch][flow_id]

    def route(self, flow_id: int) -> FlowRoute:
        """The installed route of a flow."""
        return self._routes[flow_id]

    def flows(self) -> List[FlowRoute]:
        """All installed routes."""
        return list(self._routes.values())
