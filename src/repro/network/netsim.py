"""Slot-clocked multi-switch network simulation.

Composes host sources, links, and per-switch VOQ+scheduler cores into
one network, advancing everything in lockstep cell slots.  Each switch
runs its own scheduler instance (PIM by default); cells hop from
switch to switch with the link latency, and per-flow end-to-end
statistics are collected at the destination hosts.

This substrate backs the Figure 9 parking-lot unfairness experiment
(flows merging along a chain of switches toward a bottleneck link) and
end-to-end delay checks for CBR/VBR mixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.pim import PIMScheduler
from repro.network.routing import Router
from repro.obs.perf import NULL_PHASE_TIMER
from repro.network.topology import Topology
from repro.sim.rng import RandomStreams
from repro.sim.stats import DelayStats
from repro.switch.buffers import VOQBuffer
from repro.switch.cell import Cell, ServiceClass
from repro.switch.fabric import CrossbarFabric

__all__ = [
    "FlowSpec",
    "HostSource",
    "NetworkSimulator",
    "NetworkResult",
    "NetworkSlotRecord",
]


@dataclass(frozen=True)
class FlowSpec:
    """A host-to-host flow the simulator should carry.

    ``rate`` is the cells-per-slot injection rate; ``rate >= 1`` makes
    the flow *greedy* (always has a cell ready -- the saturated sources
    of Figure 9).
    """

    flow_id: int
    src: str
    dst: str
    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"rate must be non-negative, got {self.rate}")


class HostSource:
    """Per-host injection: one cell per slot onto the host's link.

    A host controller drives a single link, so when several of its
    flows have cells ready it injects round-robin among them; greedy
    flows always have a cell ready, stochastic flows accumulate
    Bernoulli arrivals in a pending counter.
    """

    def __init__(self, host: str, flows: List[FlowSpec], rng: np.random.Generator):
        self.host = host
        self.flows = flows
        self._rng = rng
        self._pending = {f.flow_id: 0 for f in flows}
        self._seqno = {f.flow_id: 0 for f in flows}
        self._cursor = 0

    def add_flow(self, flow: FlowSpec) -> None:
        """Register one more flow on this host's link.

        Keeps the pending/sequence counters consistent with the flow
        list so callers never have to reach into them.
        """
        self.flows.append(flow)
        self._pending[flow.flow_id] = 0
        self._seqno[flow.flow_id] = 0

    def reset(self, rng: Optional[np.random.Generator] = None) -> None:
        """Clear injection state (and optionally swap in a fresh stream)
        so the next run starts from the same origin as the first."""
        if rng is not None:
            self._rng = rng
        self._pending = {f.flow_id: 0 for f in self.flows}
        self._seqno = {f.flow_id: 0 for f in self.flows}
        self._cursor = 0

    def emit(self, slot: int) -> Optional[Cell]:
        """The cell this host injects in ``slot``, or None.

        Stochastic flows first accumulate Bernoulli arrivals into their
        pending counters; the link then serves one ready flow.  Service
        rotates over the *stable* flow list, not over the slot's ready
        subset: the cursor marks the flow after the last one served,
        and the first ready flow at or after it is chosen.  (Indexing a
        cursor into the changing ready-subset instead lets a flow be
        served twice in a row -- or be skipped -- whenever another
        flow's readiness flips between slots.)
        """
        for flow in self.flows:
            if flow.rate < 1.0 and self._rng.random() < flow.rate:
                self._pending[flow.flow_id] += 1
        chosen = None
        for offset in range(len(self.flows)):
            candidate = self.flows[(self._cursor + offset) % len(self.flows)]
            if candidate.rate >= 1.0 or self._pending[candidate.flow_id] > 0:
                chosen = candidate
                self._cursor = (self._cursor + offset + 1) % len(self.flows)
                break
        if chosen is None:
            return None
        if chosen.rate < 1.0:
            self._pending[chosen.flow_id] -= 1
        seq = self._seqno[chosen.flow_id]
        self._seqno[chosen.flow_id] = seq + 1
        return Cell(
            flow_id=chosen.flow_id,
            output=-1,  # resolved per switch from the routing table
            service=ServiceClass.VBR,
            seqno=seq,
            injected_slot=slot,
        )


@dataclass(frozen=True)
class NetworkSlotRecord:
    """One slot's observable network state, for differential checks.

    Handed to the optional ``observer`` callback of
    :meth:`NetworkSimulator.run` at the end of every slot.  The fields
    are exactly what the vectorized network fast path
    (:mod:`repro.sim.fastpath_network`) reproduces, so a slot-exact
    comparison of the two backends reduces to comparing these records
    (see :func:`repro.check.differential.network_parity`).
    """

    slot: int
    injected: Dict[int, int]  # flow_id -> cells injected this slot
    delivered: Dict[int, int]  # flow_id -> cells delivered this slot
    transfers: Dict[str, int]  # switch -> cells crossing its fabric
    backlog: Dict[str, int]  # switch -> buffered cells at slot end


@dataclass
class NetworkResult:
    """Per-flow end-to-end statistics from a network run."""

    delivered: Dict[int, int] = field(default_factory=dict)
    delay: Dict[int, DelayStats] = field(default_factory=dict)
    slots: int = 0
    warmup: int = 0

    def throughput(self, flow_id: int) -> float:
        """Delivered cells per slot for one flow (post-warm-up)."""
        window = self.slots - self.warmup
        if window <= 0:
            return 0.0
        return self.delivered.get(flow_id, 0) / window

    def shares(self) -> Dict[int, float]:
        """Each flow's fraction of all delivered cells."""
        total = sum(self.delivered.values())
        if total == 0:
            return {flow_id: 0.0 for flow_id in self.delivered}
        return {flow_id: count / total for flow_id, count in self.delivered.items()}


class _SwitchCore:
    """One switch's buffers + scheduler + fabric inside the network."""

    def __init__(self, name: str, ports: int, scheduler):
        self.name = name
        self.ports = ports
        self.scheduler = scheduler
        self.buffers = [VOQBuffer(ports) for _ in range(ports)]
        self.fabric = CrossbarFabric(ports)

    def reset(self) -> None:
        """Empty the VOQ buffers and restore the scheduler's state."""
        self.buffers = [VOQBuffer(self.ports) for _ in range(self.ports)]
        if hasattr(self.scheduler, "reset"):
            self.scheduler.reset()

    def accept(self, port: int, cell: Cell, slot: int) -> None:
        cell.arrival_slot = slot
        self.buffers[port].enqueue(cell)

    def schedule_and_transfer(
        self, blocked_outputs: Optional[set] = None
    ) -> List[Tuple[int, Cell]]:
        """Run the scheduler; returns (output_port, cell) departures.

        ``blocked_outputs`` are output ports whose downstream buffer
        has no credit (link-level flow control); their request columns
        are masked so the scheduler gives the slots to other traffic.
        """
        requests = np.zeros((self.ports, self.ports), dtype=bool)
        for i, buffer in enumerate(self.buffers):
            requests[i] = buffer.request_vector()
        if blocked_outputs:
            for j in blocked_outputs:
                requests[:, j] = False
        matching = self.scheduler.schedule(requests)
        selected = [(i, self.buffers[i].dequeue(j)) for i, j in matching]
        delivered = self.fabric.transfer(selected)
        return [(j, cells[0]) for j, cells in delivered.items()]

    def input_occupancy(self, port: int) -> int:
        return len(self.buffers[port])

    def backlog(self) -> int:
        return sum(len(b) for b in self.buffers)


class NetworkSimulator:
    """Drive a topology of switches and host sources slot by slot.

    Parameters
    ----------
    topology:
        The network graph.
    scheduler_factory:
        Called once per switch as ``factory(switch_name, ports)``;
        defaults to fresh 4-iteration PIM schedulers with per-switch
        derived seeds.
    seed:
        Root seed for all randomness (host sources, schedulers).
    buffer_limit:
        Optional per-input-port VBR buffer size in cells.  When set,
        link-level flow control engages: a sender (switch or host)
        must not transmit onto a link whose far-end input buffer has
        no credit -- the Section 4 note that "VBR cells use a
        different set of buffers, which are subject to flow control".
        Because a cell can already be in flight when credit runs out,
        occupancy may overshoot by up to the link latency; the limit
        plus that slack is a hard bound (asserted in tests).
    """

    def __init__(
        self,
        topology: Topology,
        scheduler_factory: Optional[Callable[[str, int], object]] = None,
        seed: Optional[int] = None,
        buffer_limit: Optional[int] = None,
    ):
        if buffer_limit is not None and buffer_limit < 1:
            raise ValueError(f"buffer_limit must be >= 1, got {buffer_limit}")
        self.buffer_limit = buffer_limit
        self.topology = topology
        self.router = Router(topology)
        self._streams = RandomStreams(seed)
        if scheduler_factory is None:
            def scheduler_factory(name: str, ports: int):
                return PIMScheduler(seed=int(self._streams.get(f"sched:{name}").integers(2**31)))
        self._switches: Dict[str, _SwitchCore] = {
            node.name: _SwitchCore(node.name, node.ports, scheduler_factory(node.name, node.ports))
            for node in topology.switches()
        }
        self._sources: Dict[str, HostSource] = {}
        self._flows: Dict[int, FlowSpec] = {}
        # Cells in flight: arrival_slot -> list of (node, port, cell).
        self._in_transit: Dict[int, List[Tuple[str, int, Cell]]] = {}

    def add_flow(self, flow: FlowSpec, path: Optional[List[str]] = None) -> None:
        """Register a flow: install its route and its host source."""
        if flow.flow_id in self._flows:
            raise ValueError(f"duplicate flow id {flow.flow_id}")
        self.router.install(flow.flow_id, flow.src, flow.dst, path)
        self._flows[flow.flow_id] = flow
        if flow.src not in self._sources:
            self._sources[flow.src] = HostSource(
                flow.src, [], self._streams.get(f"host:{flow.src}")
            )
        self._sources[flow.src].add_flow(flow)

    def _ship(self, node: str, port: int, cell: Cell, slot: int) -> Optional[Tuple[str, int]]:
        """Put a cell on the link leaving (node, port)."""
        link = self.topology.link_at(node, port)
        if link is None:
            raise AssertionError(f"cell departed unconnected port {port} of {node}")
        peer, peer_port = link.endpoint(node)
        self._in_transit.setdefault(slot + link.latency, []).append((peer, peer_port, cell))
        return peer, peer_port

    def _reset_run_state(self) -> None:
        """Restore the network to its as-built state before a run.

        ``run`` restarts its slot clock at 0, so any state keyed by or
        accumulated over absolute slots -- cells in flight (keyed by
        arrival slot), switch VOQ buffers, host pending/sequence
        counters, and every random stream -- must be rewound with it.
        Without this, a second ``run()`` revives stale in-flight cells
        from the first (their arrival slots land inside the new clock)
        and records nonsense (even negative) delays against them.
        Resetting rather than carrying a continuous clock makes a rerun
        of the same simulator replay the first run draw for draw, the
        same contract the schedulers' ``reset()`` honors.
        """
        self._in_transit.clear()
        for core in self._switches.values():
            core.reset()
        for host, source in self._sources.items():
            source.reset(self._streams.restart(f"host:{host}"))

    def run(
        self,
        slots: int,
        warmup: int = 0,
        observer: Optional[Callable[[NetworkSlotRecord], None]] = None,
        phase_timer=None,
    ) -> NetworkResult:
        """Simulate ``slots`` slots; returns per-flow statistics.

        Each call is an independent replay from slot 0: all network
        state (in-flight cells, buffers, counters, random streams) is
        reset first, so two ``run()`` calls on the same simulator
        produce identical results.

        ``observer``, when given, is called at the end of every slot
        with a :class:`NetworkSlotRecord` of that slot's injections,
        deliveries, per-switch transfer counts, and per-switch backlog
        (unfiltered by ``warmup``).  It costs nothing when omitted.

        ``phase_timer``, when given an enabled
        :class:`repro.obs.perf.PhaseTimer`, profiles the run under the
        shared taxonomy: ``run`` root, ``run/delivery`` link deliveries
        landing, ``run/arrivals`` host injection, ``run/kernel``
        per-switch scheduling and transfer, ``run/update`` observer
        bookkeeping.
        """
        timer = (
            phase_timer
            if phase_timer is not None and phase_timer.enabled
            else NULL_PHASE_TIMER
        )
        with timer.phase("run"):
            self._reset_run_state()
            result = NetworkResult(slots=slots, warmup=warmup)
            for flow_id in self._flows:
                result.delivered[flow_id] = 0
                result.delay[flow_id] = DelayStats(warmup=warmup)

            for slot in range(slots):
                injected_now: Dict[int, int] = {}
                delivered_now: Dict[int, int] = {}
                transfers_now: Dict[str, int] = {}
                # 1. Link deliveries land: at switches they are buffered;
                #    at hosts the cell has arrived end-to-end.
                with timer.phase("delivery"):
                    for node, port, cell in self._in_transit.pop(slot, []):
                        spec = self.topology.node(node)
                        if spec.is_switch:
                            cell.output = self.router.output_port(
                                node, cell.flow_id
                            )
                            self._switches[node].accept(port, cell, slot)
                        else:
                            route = self.router.route(cell.flow_id)
                            if route.dst != node:
                                raise AssertionError(
                                    f"flow {cell.flow_id} delivered to {node}, "
                                    f"expected {route.dst}"
                                )
                            # Throughput counts deliveries in the
                            # measurement window; with saturated sources a
                            # cell's injection slot can precede the window
                            # by an unbounded queueing backlog, so
                            # filtering on injection would silently
                            # discard slow flows entirely.
                            if slot >= warmup:
                                result.delivered[cell.flow_id] += 1
                            if cell.injected_slot >= warmup:
                                result.delay[cell.flow_id].record(
                                    cell.injected_slot, slot
                                )
                            if observer is not None:
                                delivered_now[cell.flow_id] = (
                                    delivered_now.get(cell.flow_id, 0) + 1
                                )
                # 2. Hosts inject one cell each onto their links (holding
                #    back when the far-end buffer has no credit).
                with timer.phase("arrivals"):
                    for host, source in self._sources.items():
                        if not self._has_credit(host, 0):
                            continue
                        cell = source.emit(slot)
                        if cell is not None:
                            self._ship(host, 0, cell, slot)
                            if observer is not None:
                                injected_now[cell.flow_id] = (
                                    injected_now.get(cell.flow_id, 0) + 1
                                )
                # 3. Switches schedule and transfer; departures enter
                #    links.
                with timer.phase("kernel"):
                    for core in self._switches.values():
                        blocked = self._blocked_outputs(core)
                        departures = core.schedule_and_transfer(blocked)
                        for out_port, cell in departures:
                            self._ship(core.name, out_port, cell, slot)
                        if observer is not None:
                            transfers_now[core.name] = len(departures)
                if observer is not None:
                    with timer.phase("update"):
                        observer(
                            NetworkSlotRecord(
                                slot=slot,
                                injected=injected_now,
                                delivered=delivered_now,
                                transfers=transfers_now,
                                backlog={
                                    name: core.backlog()
                                    for name, core in self._switches.items()
                                },
                            )
                        )
        return result

    def _has_credit(self, node: str, port: int) -> bool:
        """True when the link at (node, port) may carry a cell now."""
        if self.buffer_limit is None:
            return True
        peer = self.topology.peer(node, port)
        if peer is None:
            return True
        peer_name, peer_port = peer
        if not self.topology.node(peer_name).is_switch:
            return True  # hosts sink at link rate; no credit needed
        occupancy = self._switches[peer_name].input_occupancy(peer_port)
        return occupancy < self.buffer_limit

    def _blocked_outputs(self, core: _SwitchCore) -> Optional[set]:
        if self.buffer_limit is None:
            return None
        return {
            port for port in range(core.ports) if not self._has_credit(core.name, port)
        }

    def backlog(self) -> int:
        """Cells buffered across all switches (excludes cells in flight)."""
        return sum(core.backlog() for core in self._switches.values())
