"""Prebuilt topology factories for common experiment shapes.

The paper's network-level discussions revolve around a handful of
shapes: chains of switches (Figure 9's parking lot), a server behind a
backbone (the client-server motivation), redundant-path meshes
(Section 1's availability argument).  These factories build them in
one call; each returns the :class:`repro.network.topology.Topology`
plus the host names, so tests, benches, and user code stop hand-wiring
the same graphs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.network.topology import Topology

__all__ = [
    "chain",
    "parking_lot",
    "star",
    "campus",
    "diamond",
    "fat_tree",
    "mesh",
    "build",
    "TOPOLOGIES",
]

#: Shapes :func:`build` knows how to construct by name.
TOPOLOGIES = ("chain", "parking_lot", "star", "campus", "diamond", "fat_tree", "mesh")


def chain(switches: int, hosts_per_end: int = 1, switch_ports: int = 4, latency: int = 1) -> Tuple[Topology, List[str], List[str]]:
    """A linear chain of switches with hosts at both ends.

    Returns ``(topology, left_hosts, right_hosts)``; hosts are named
    ``l0..`` and ``r0..``.
    """
    if switches < 1:
        raise ValueError("need at least one switch")
    topo = Topology()
    names = [f"s{i}" for i in range(switches)]
    for name in names:
        topo.add_switch(name, switch_ports)
    for a, b in zip(names, names[1:]):
        topo.connect(a, b, latency=latency)
    left, right = [], []
    for index in range(hosts_per_end):
        l_name, r_name = f"l{index}", f"r{index}"
        topo.add_host(l_name)
        topo.add_host(r_name)
        topo.connect(l_name, names[0], latency=latency)
        topo.connect(r_name, names[-1], latency=latency)
        left.append(l_name)
        right.append(r_name)
    return topo, left, right


def parking_lot(stages: int = 3, switch_ports: int = 4, latency: int = 1) -> Tuple[Topology, List[str], str]:
    """The Figure 9 merge chain: two hosts at the first switch, one
    more joining at every later switch, one sink after the last.

    Returns ``(topology, source_hosts, sink)`` with sources ordered by
    merge point (earliest first).
    """
    if stages < 2:
        raise ValueError("need at least two stages")
    topo = Topology()
    names = [f"s{i}" for i in range(stages)]
    for name in names:
        topo.add_switch(name, switch_ports)
    for a, b in zip(names, names[1:]):
        topo.connect(a, b, latency=latency)
    sources = []
    for index in range(2):
        host = f"h{index}"
        topo.add_host(host)
        topo.connect(host, names[0], latency=latency)
        sources.append(host)
    for stage in range(1, stages):
        host = f"h{stage + 1}"
        topo.add_host(host)
        topo.connect(host, names[stage], latency=latency)
        sources.append(host)
    topo.add_host("sink")
    topo.connect("sink", names[-1], latency=latency)
    return topo, sources, "sink"


def star(clients: int, switch_ports: int = None, latency: int = 1) -> Tuple[Topology, List[str], str]:
    """One switch, one server, ``clients`` client hosts.

    Returns ``(topology, client_hosts, server)``.
    """
    if clients < 1:
        raise ValueError("need at least one client")
    ports = switch_ports if switch_ports is not None else clients + 1
    if ports < clients + 1:
        raise ValueError(f"switch needs at least {clients + 1} ports")
    topo = Topology()
    topo.add_switch("hub", ports)
    topo.add_host("server")
    topo.connect("server", "hub", latency=latency)
    names = []
    for index in range(clients):
        name = f"c{index}"
        topo.add_host(name)
        topo.connect(name, "hub", latency=latency)
        names.append(name)
    return topo, names, "server"


def campus(workgroups: int = 2, clients_per_group: int = 2, latency: int = 1) -> Tuple[Topology, List[str], str]:
    """Workgroup switches under one backbone with a server.

    Returns ``(topology, client_hosts, server)``.
    """
    if workgroups < 1 or clients_per_group < 1:
        raise ValueError("need at least one workgroup and one client")
    topo = Topology()
    topo.add_switch("backbone", workgroups + 1)
    topo.add_host("server")
    topo.connect("server", "backbone", latency=latency)
    clients = []
    for group in range(workgroups):
        switch = f"wg{group}"
        topo.add_switch(switch, clients_per_group + 1)
        topo.connect(switch, "backbone", latency=latency)
        for index in range(clients_per_group):
            name = f"c{group}_{index}"
            topo.add_host(name)
            topo.connect(name, switch, latency=latency)
            clients.append(name)
    return topo, clients, "server"


def diamond(latency: int = 1) -> Tuple[Topology, Dict[str, List[str]]]:
    """Two disjoint equal-cost paths between two host pairs -- the
    redundant-path availability shape of Section 1.

    Returns ``(topology, {"left": [...], "right": [...]})``.
    """
    topo = Topology()
    for name in ("in", "upper", "lower", "out"):
        topo.add_switch(name, 4)
    topo.connect("in", "upper", latency=latency)
    topo.connect("in", "lower", latency=latency)
    topo.connect("upper", "out", latency=latency)
    topo.connect("lower", "out", latency=latency)
    hosts = {"left": [], "right": []}
    for index in range(2):
        l_name, r_name = f"hl{index}", f"hr{index}"
        topo.add_host(l_name)
        topo.add_host(r_name)
        topo.connect(l_name, "in", latency=latency)
        topo.connect(r_name, "out", latency=latency)
        hosts["left"].append(l_name)
        hosts["right"].append(r_name)
    return topo, hosts


def fat_tree(k: int = 4, latency: int = 1) -> Tuple[Topology, List[str]]:
    """A three-tier k-ary fat tree (core / aggregation / edge).

    The canonical datacenter-scale shape: ``k`` pods, each with
    ``k/2`` aggregation and ``k/2`` edge switches; every switch has
    exactly ``k`` ports.  Edge switch ``e`` of a pod serves ``k/2``
    hosts and uplinks to every aggregation switch of its pod;
    aggregation switch ``a`` uplinks to core switches ``a*k/2 ..
    (a+1)*k/2 - 1``; each of the ``(k/2)^2`` cores connects to one
    aggregation switch in every pod.  Total: ``5k^2/4`` switches and
    ``k^3/4`` hosts, with equal bisection capacity at every tier.

    Returns ``(topology, hosts)`` with hosts named ``h{pod}_{edge}_{i}``
    in pod-major order.

    >>> topo, hosts = fat_tree(2)
    >>> (len(topo.switches()), len(hosts))
    (5, 2)
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat tree arity must be even and >= 2, got {k}")
    half = k // 2
    topo = Topology()
    for core in range(half * half):
        topo.add_switch(f"core{core}", k)
    for pod in range(k):
        for agg in range(half):
            topo.add_switch(f"agg{pod}_{agg}", k)
        for edge in range(half):
            topo.add_switch(f"edge{pod}_{edge}", k)
        for edge in range(half):
            for agg in range(half):
                topo.connect(f"edge{pod}_{edge}", f"agg{pod}_{agg}", latency=latency)
        for agg in range(half):
            for up in range(half):
                topo.connect(
                    f"agg{pod}_{agg}", f"core{agg * half + up}", latency=latency
                )
    hosts = []
    for pod in range(k):
        for edge in range(half):
            for index in range(half):
                name = f"h{pod}_{edge}_{index}"
                topo.add_host(name)
                topo.connect(name, f"edge{pod}_{edge}", latency=latency)
                hosts.append(name)
    return topo, hosts


def mesh(rows: int, cols: int, switch_ports: int = None, latency: int = 1) -> Tuple[Topology, List[str]]:
    """A rows x cols grid of switches, one host per switch.

    Each switch links to its 4-neighborhood (right and down links are
    created; left/up come for free on the full-duplex fiber) and
    carries one host, so a ``4 x 4`` mesh is a 16-switch fabric with 16
    hosts -- the bench shape for the network fast path.  Switches get
    just enough ports for their degree plus the host unless
    ``switch_ports`` forces a uniform (larger) size.

    Returns ``(topology, hosts)`` with hosts named ``h{r}_{c}`` in
    row-major order.

    >>> topo, hosts = mesh(2, 3)
    >>> (len(topo.switches()), len(hosts))
    (6, 6)
    """
    if rows < 1 or cols < 1:
        raise ValueError("mesh needs at least one row and one column")
    topo = Topology()
    for r in range(rows):
        for c in range(cols):
            degree = (r > 0) + (r < rows - 1) + (c > 0) + (c < cols - 1)
            needed = degree + 1  # neighbors plus the local host
            ports = switch_ports if switch_ports is not None else needed
            if ports < needed:
                raise ValueError(
                    f"switch s{r}_{c} needs {needed} ports, got {ports}"
                )
            topo.add_switch(f"s{r}_{c}", ports)
    for r in range(rows):
        for c in range(cols):
            if c < cols - 1:
                topo.connect(f"s{r}_{c}", f"s{r}_{c + 1}", latency=latency)
            if r < rows - 1:
                topo.connect(f"s{r}_{c}", f"s{r + 1}_{c}", latency=latency)
    hosts = []
    for r in range(rows):
        for c in range(cols):
            name = f"h{r}_{c}"
            topo.add_host(name)
            topo.connect(name, f"s{r}_{c}", latency=latency)
            hosts.append(name)
    return topo, hosts


def build(name: str, size: int = 3, latency: int = 1) -> Tuple[Topology, List[str]]:
    """Uniform entry point over every bundled shape.

    Returns ``(topology, hosts)`` regardless of the factory's native
    return shape, so callers that only need "a named topology of a
    given size and its hosts" -- the CLI, the differential oracle, the
    network fuzzer -- can stay agnostic of each generator's signature.
    ``size`` scales the shape's natural knob (switches per chain, pods
    per fat tree, rows per mesh, ...); ``diamond`` ignores it.
    """
    if size < 1:
        raise ValueError(f"size must be positive, got {size}")
    if name == "chain":
        topo, left, right = chain(size, hosts_per_end=2, latency=latency)
        return topo, left + right
    if name == "parking_lot":
        topo, sources, sink = parking_lot(max(2, size), latency=latency)
        return topo, sources + [sink]
    if name == "star":
        topo, clients, server = star(size, latency=latency)
        return topo, clients + [server]
    if name == "campus":
        topo, clients, server = campus(size, 2, latency=latency)
        return topo, clients + [server]
    if name == "diamond":
        topo, hosts = diamond(latency=latency)
        return topo, hosts["left"] + hosts["right"]
    if name == "fat_tree":
        return fat_tree(max(2, size + size % 2), latency=latency)
    if name == "mesh":
        return mesh(size, size, latency=latency)
    raise ValueError(f"unknown topology {name!r}; known: {', '.join(TOPOLOGIES)}")
