"""Prebuilt topology factories for common experiment shapes.

The paper's network-level discussions revolve around a handful of
shapes: chains of switches (Figure 9's parking lot), a server behind a
backbone (the client-server motivation), redundant-path meshes
(Section 1's availability argument).  These factories build them in
one call; each returns the :class:`repro.network.topology.Topology`
plus the host names, so tests, benches, and user code stop hand-wiring
the same graphs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.network.topology import Topology

__all__ = ["chain", "parking_lot", "star", "campus", "diamond"]


def chain(switches: int, hosts_per_end: int = 1, switch_ports: int = 4) -> Tuple[Topology, List[str], List[str]]:
    """A linear chain of switches with hosts at both ends.

    Returns ``(topology, left_hosts, right_hosts)``; hosts are named
    ``l0..`` and ``r0..``.
    """
    if switches < 1:
        raise ValueError("need at least one switch")
    topo = Topology()
    names = [f"s{i}" for i in range(switches)]
    for name in names:
        topo.add_switch(name, switch_ports)
    for a, b in zip(names, names[1:]):
        topo.connect(a, b)
    left, right = [], []
    for index in range(hosts_per_end):
        l_name, r_name = f"l{index}", f"r{index}"
        topo.add_host(l_name)
        topo.add_host(r_name)
        topo.connect(l_name, names[0])
        topo.connect(r_name, names[-1])
        left.append(l_name)
        right.append(r_name)
    return topo, left, right


def parking_lot(stages: int = 3, switch_ports: int = 4) -> Tuple[Topology, List[str], str]:
    """The Figure 9 merge chain: two hosts at the first switch, one
    more joining at every later switch, one sink after the last.

    Returns ``(topology, source_hosts, sink)`` with sources ordered by
    merge point (earliest first).
    """
    if stages < 2:
        raise ValueError("need at least two stages")
    topo = Topology()
    names = [f"s{i}" for i in range(stages)]
    for name in names:
        topo.add_switch(name, switch_ports)
    for a, b in zip(names, names[1:]):
        topo.connect(a, b)
    sources = []
    for index in range(2):
        host = f"h{index}"
        topo.add_host(host)
        topo.connect(host, names[0])
        sources.append(host)
    for stage in range(1, stages):
        host = f"h{stage + 1}"
        topo.add_host(host)
        topo.connect(host, names[stage])
        sources.append(host)
    topo.add_host("sink")
    topo.connect("sink", names[-1])
    return topo, sources, "sink"


def star(clients: int, switch_ports: int = None) -> Tuple[Topology, List[str], str]:
    """One switch, one server, ``clients`` client hosts.

    Returns ``(topology, client_hosts, server)``.
    """
    if clients < 1:
        raise ValueError("need at least one client")
    ports = switch_ports if switch_ports is not None else clients + 1
    if ports < clients + 1:
        raise ValueError(f"switch needs at least {clients + 1} ports")
    topo = Topology()
    topo.add_switch("hub", ports)
    topo.add_host("server")
    topo.connect("server", "hub")
    names = []
    for index in range(clients):
        name = f"c{index}"
        topo.add_host(name)
        topo.connect(name, "hub")
        names.append(name)
    return topo, names, "server"


def campus(workgroups: int = 2, clients_per_group: int = 2) -> Tuple[Topology, List[str], str]:
    """Workgroup switches under one backbone with a server.

    Returns ``(topology, client_hosts, server)``.
    """
    if workgroups < 1 or clients_per_group < 1:
        raise ValueError("need at least one workgroup and one client")
    topo = Topology()
    topo.add_switch("backbone", workgroups + 1)
    topo.add_host("server")
    topo.connect("server", "backbone")
    clients = []
    for group in range(workgroups):
        switch = f"wg{group}"
        topo.add_switch(switch, clients_per_group + 1)
        topo.connect(switch, "backbone")
        for index in range(clients_per_group):
            name = f"c{group}_{index}"
            topo.add_host(name)
            topo.connect(name, switch)
            clients.append(name)
    return topo, clients, "server"


def diamond() -> Tuple[Topology, Dict[str, List[str]]]:
    """Two disjoint equal-cost paths between two host pairs -- the
    redundant-path availability shape of Section 1.

    Returns ``(topology, {"left": [...], "right": [...]})``.
    """
    topo = Topology()
    for name in ("in", "upper", "lower", "out"):
        topo.add_switch(name, 4)
    topo.connect("in", "upper")
    topo.connect("in", "lower")
    topo.connect("upper", "out")
    topo.connect("lower", "out")
    hosts = {"left": [], "right": []}
    for index in range(2):
        l_name, r_name = f"hl{index}", f"hr{index}"
        topo.add_host(l_name)
        topo.add_host(r_name)
        topo.connect(l_name, "in")
        topo.connect(r_name, "out")
        hosts["left"].append(l_name)
        hosts["right"].append(r_name)
    return topo, hosts
