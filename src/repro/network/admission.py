"""Network-level CBR admission control (Section 4).

"When a request is issued, network management software must determine
whether it can be granted.  In our approach, this is possible if there
is a path from source to destination on which each link's uncommitted
capacity can accommodate the requested bandwidth.  If network software
finds such a path, it grants the request, and notifies the involved
switches of the additional reservation."

:class:`NetworkAdmission` keeps a
:class:`repro.cbr.reservations.ReservationTable` per switch and a
committed-cells-per-frame counter per link direction; a request
searches (BFS, shortest feasible path first) for a path whose links
all have capacity, then installs the reservation at every switch on it
-- each switch recomputing its own frame schedule, which "the selected
switches can compute ... in parallel".
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.cbr.reservations import ReservationTable
from repro.network.topology import Topology
from repro.switch.cell import ServiceClass
from repro.switch.flow import Flow

__all__ = ["NetworkAdmission", "AdmittedFlow"]


class AdmittedFlow:
    """Record of one admitted CBR flow."""

    def __init__(self, flow_id: int, src: str, dst: str, cells_per_frame: int, path: List[str]):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.cells_per_frame = cells_per_frame
        self.path = list(path)

    @property
    def hops(self) -> int:
        """Number of switches on the path."""
        return len(self.path) - 2

    def __repr__(self) -> str:
        return (
            f"AdmittedFlow({self.flow_id}, {self.src}->{self.dst}, "
            f"{self.cells_per_frame} cells/frame, path={self.path})"
        )


class NetworkAdmission:
    """CBR admission control over a topology.

    Parameters
    ----------
    topology:
        The network graph.
    frame_slots:
        Frame length F, a network-wide parameter (Section 4).
    """

    def __init__(self, topology: Topology, frame_slots: int):
        self.topology = topology
        self.frame_slots = frame_slots
        self.tables: Dict[str, ReservationTable] = {
            node.name: ReservationTable(node.ports, frame_slots)
            for node in topology.switches()
        }
        # Committed cells/frame per directed link hop (from, to).
        self._committed: Dict[Tuple[str, str], int] = {}
        self._admitted: Dict[int, AdmittedFlow] = {}

    def committed(self, from_node: str, to_node: str) -> int:
        """Cells per frame committed on the directed hop."""
        return self._committed.get((from_node, to_node), 0)

    def _hop_has_capacity(self, from_node: str, to_node: str, cells: int) -> bool:
        return self.committed(from_node, to_node) + cells <= self.frame_slots

    def find_path(self, src: str, dst: str, cells_per_frame: int) -> Optional[List[str]]:
        """Shortest path whose every directed hop has spare capacity."""
        if src == dst:
            raise ValueError("source and destination must differ")
        parents: Dict[str, str] = {}
        queue = deque([src])
        seen = {src}
        while queue:
            current = queue.popleft()
            for neighbor in self.topology.neighbors(current):
                if neighbor in seen:
                    continue
                if not self._hop_has_capacity(current, neighbor, cells_per_frame):
                    continue
                # Interior nodes must be switches.
                if neighbor != dst and not self.topology.node(neighbor).is_switch:
                    continue
                parents[neighbor] = current
                if neighbor == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                seen.add(neighbor)
                queue.append(neighbor)
        return None

    def request(self, flow_id: int, src: str, dst: str, cells_per_frame: int) -> Optional[AdmittedFlow]:
        """Try to admit a CBR flow; returns None when no path fits.

        On success every switch on the path holds the reservation in
        its frame schedule and the link commitments are updated.  The
        operation is atomic: when link commitments and switch
        bookkeeping agree, switch-level admission cannot fail once
        :meth:`find_path` succeeded -- but if they have been desynced
        (an operator touched a table directly, or a schedule rejects
        the slots), a mid-path ``admit`` failure rolls back every
        switch already holding the flow before re-raising, so no
        half-installed reservation is left behind (and no link
        commitment is ever recorded for it).
        """
        if flow_id in self._admitted:
            raise ValueError(f"flow {flow_id} already admitted")
        if cells_per_frame < 1 or cells_per_frame > self.frame_slots:
            raise ValueError(
                f"cells_per_frame must be in 1..{self.frame_slots}, got {cells_per_frame}"
            )
        path = self.find_path(src, dst, cells_per_frame)
        if path is None:
            return None
        installed: List[str] = []
        try:
            for index in range(1, len(path) - 1):
                switch = path[index]
                in_port = self.topology.port_toward(switch, path[index - 1])
                out_port = self.topology.port_toward(switch, path[index + 1])
                self.tables[switch].admit(
                    Flow(
                        flow_id=flow_id,
                        src=in_port,
                        dst=out_port,
                        service=ServiceClass.CBR,
                        cells_per_frame=cells_per_frame,
                    )
                )
                installed.append(switch)
        except Exception:
            for switch in installed:
                self.tables[switch].release(flow_id)
            raise
        for index in range(len(path) - 1):
            hop = (path[index], path[index + 1])
            self._committed[hop] = self._committed.get(hop, 0) + cells_per_frame
        admitted = AdmittedFlow(flow_id, src, dst, cells_per_frame, path)
        self._admitted[flow_id] = admitted
        return admitted

    def release(self, flow_id: int) -> None:
        """Tear down an admitted flow everywhere."""
        admitted = self._admitted.pop(flow_id, None)
        if admitted is None:
            raise KeyError(f"flow {flow_id} not admitted")
        path = admitted.path
        for index in range(1, len(path) - 1):
            self.tables[path[index]].release(flow_id)
        for index in range(len(path) - 1):
            hop = (path[index], path[index + 1])
            self._committed[hop] -= admitted.cells_per_frame
            if self._committed[hop] == 0:
                del self._committed[hop]

    def admitted_flows(self) -> List[AdmittedFlow]:
        """All currently admitted flows."""
        return list(self._admitted.values())
