"""Network topology: switches, hosts, and full-duplex links.

Each link is point-to-point between a switch port and either a host
controller or another switch's port (Section 2).  The i-th input and
i-th output of a switch share one full-duplex fiber, which is why a
single port index identifies both directions here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["Topology", "Node", "Link"]


@dataclass(frozen=True)
class Node:
    """A network node: a switch with N ports, or a single-port host."""

    name: str
    kind: str  # "switch" or "host"
    ports: int

    @property
    def is_switch(self) -> bool:
        """True for switches, False for hosts."""
        return self.kind == "switch"


@dataclass(frozen=True)
class Link:
    """A full-duplex link between two node ports."""

    a: str
    a_port: int
    b: str
    b_port: int
    latency: int = 1

    def endpoint(self, node: str) -> Tuple[str, int]:
        """The (peer, peer_port) seen from ``node``."""
        if node == self.a:
            return self.b, self.b_port
        if node == self.b:
            return self.a, self.a_port
        raise ValueError(f"{node} is not an endpoint of this link")


class Topology:
    """A graph of switches and hosts joined by point-to-point links.

    >>> topo = Topology()
    >>> topo.add_switch("s1", ports=4)
    >>> topo.add_host("h1")
    >>> topo.connect("h1", "s1")
    >>> topo.shortest_path("h1", "h1")
    ['h1']
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, Node] = {}
        self._links: List[Link] = []
        # (node, port) -> Link
        self._port_map: Dict[Tuple[str, int], Link] = {}

    def add_switch(self, name: str, ports: int) -> None:
        """Add an N-port switch."""
        if name in self._nodes:
            raise ValueError(f"duplicate node name: {name}")
        if ports <= 0:
            raise ValueError(f"ports must be positive, got {ports}")
        self._nodes[name] = Node(name, "switch", ports)

    def add_host(self, name: str) -> None:
        """Add a single-port host controller."""
        if name in self._nodes:
            raise ValueError(f"duplicate node name: {name}")
        self._nodes[name] = Node(name, "host", 1)

    def node(self, name: str) -> Node:
        """Look up a node (raises ``KeyError`` if absent)."""
        return self._nodes[name]

    @property
    def nodes(self) -> List[Node]:
        """All nodes."""
        return list(self._nodes.values())

    @property
    def links(self) -> List[Link]:
        """All links."""
        return list(self._links)

    def switches(self) -> List[Node]:
        """All switch nodes."""
        return [n for n in self._nodes.values() if n.is_switch]

    def hosts(self) -> List[Node]:
        """All host nodes."""
        return [n for n in self._nodes.values() if not n.is_switch]

    def _free_port(self, name: str) -> int:
        node = self._nodes[name]
        for port in range(node.ports):
            if (name, port) not in self._port_map:
                return port
        raise ValueError(f"no free port on {name}")

    def connect(
        self,
        a: str,
        b: str,
        a_port: Optional[int] = None,
        b_port: Optional[int] = None,
        latency: int = 1,
    ) -> Link:
        """Join two nodes with a link; ports auto-assign when omitted."""
        if a not in self._nodes or b not in self._nodes:
            missing = a if a not in self._nodes else b
            raise KeyError(f"unknown node: {missing}")
        if latency < 1:
            raise ValueError(f"link latency must be >= 1 slot, got {latency}")
        if a_port is None:
            a_port = self._free_port(a)
        if b_port is None:
            b_port = self._free_port(b)
        for name, port in ((a, a_port), (b, b_port)):
            if port >= self._nodes[name].ports or port < 0:
                raise ValueError(f"port {port} out of range on {name}")
            if (name, port) in self._port_map:
                raise ValueError(f"port {port} on {name} already connected")
        link = Link(a, a_port, b, b_port, latency)
        self._links.append(link)
        self._port_map[(a, a_port)] = link
        self._port_map[(b, b_port)] = link
        return link

    def link_at(self, name: str, port: int) -> Optional[Link]:
        """The link attached to (node, port), or None."""
        return self._port_map.get((name, port))

    def peer(self, name: str, port: int) -> Optional[Tuple[str, int]]:
        """The (peer, peer_port) across the link at (node, port)."""
        link = self.link_at(name, port)
        return link.endpoint(name) if link else None

    def port_toward(self, name: str, neighbor: str) -> int:
        """The port on ``name`` whose link leads to ``neighbor``.

        Raises ``ValueError`` if they are not adjacent (first match
        wins when there are parallel links).
        """
        for (node, port), link in self._port_map.items():
            if node == name and link.endpoint(name)[0] == neighbor:
                return port
        raise ValueError(f"{name} has no link to {neighbor}")

    def neighbors(self, name: str) -> List[str]:
        """Adjacent node names."""
        result = []
        node = self._nodes[name]
        for port in range(node.ports):
            peer = self.peer(name, port)
            if peer is not None:
                result.append(peer[0])
        return result

    def shortest_path(self, src: str, dst: str) -> Optional[List[str]]:
        """BFS shortest path (by hop count) from ``src`` to ``dst``."""
        if src not in self._nodes or dst not in self._nodes:
            missing = src if src not in self._nodes else dst
            raise KeyError(f"unknown node: {missing}")
        if src == dst:
            return [src]
        parents: Dict[str, str] = {}
        queue = deque([src])
        seen = {src}
        while queue:
            current = queue.popleft()
            for neighbor in self.neighbors(current):
                if neighbor in seen:
                    continue
                parents[neighbor] = current
                if neighbor == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                seen.add(neighbor)
                queue.append(neighbor)
        return None
