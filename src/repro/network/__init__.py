"""Arbitrary-topology network substrate.

The paper's network is "a collection of switches, links, and host
network controllers ... connected ... in any topology" (Section 2),
with flow-based routing: a routing table in each switch, built at
configuration time, fixes the output port for every flow.

- :mod:`repro.network.topology` -- the node/link graph,
- :mod:`repro.network.routing` -- per-switch flow routing tables,
- :mod:`repro.network.netsim` -- the slot-clocked multi-switch
  simulator (used for the Figure 9 fairness experiment and end-to-end
  latency checks),
- :mod:`repro.network.admission` -- network-level CBR admission
  control: find a path with uncommitted capacity and reserve it at
  every switch (Section 4).
"""

from repro.network.topology import Topology
from repro.network.routing import Router
from repro.network.netsim import (
    NetworkSimulator,
    NetworkSlotRecord,
    HostSource,
    FlowSpec,
)
from repro.network.admission import NetworkAdmission
from repro.network import topologies

__all__ = [
    "Topology",
    "Router",
    "NetworkSimulator",
    "NetworkSlotRecord",
    "HostSource",
    "FlowSpec",
    "NetworkAdmission",
    "topologies",
]
