"""Command-line interface: run the paper's experiments from a shell.

Installed as the ``repro-an2`` console script::

    repro-an2 info
    repro-an2 delay --scheduler pim --load 0.9 --ports 16
    repro-an2 delay --load 0.9 --trace run.jsonl --metrics
    repro-an2 delay --backend fastpath --load 0.9 --trace run.jsonl --profile
    repro-an2 trace summarize run.jsonl --plot
    repro-an2 trace summarize run.jsonl --format json
    repro-an2 sweep --workload clientserver --loads 0.5 0.7 0.9
    repro-an2 table1 --patterns 5000
    repro-an2 cbr-bounds --hops 4 --tolerance 1e-4
    repro-an2 fairness
    repro-an2 statistical --backend fastpath --replicas 64 --load 0.8
    repro-an2 network --topology mesh --size 4 --backend fastpath --replicas 64
    repro-an2 check --suite network --seeds 10
    repro-an2 perf report --backend fastpath --replicas 16
    repro-an2 perf report --from-history latest --bench fastpath
    repro-an2 perf compare prev latest --bench fastpath
    repro-an2 perf gate --tolerance 0.4
    repro-an2 perf list
    repro-an2 scenario run --trace run.csv --ports 8 --backend fastpath
    repro-an2 fleet run benchmarks/perf/specs/sched_zoo.json --pool 4
    repro-an2 fleet status benchmarks/perf/specs/sched_zoo.json
    repro-an2 fleet report benchmarks/perf/specs/sched_zoo.json --out report.txt
    repro-an2 fleet gate benchmarks/perf/specs/fleet_smoke.json --metric throughput

Each subcommand is a thin wrapper over the library; the full
regeneration harness lives in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _build_scheduler(name: str, ports: int, iterations: int, seed: int):
    from repro.core.islip import ISLIPScheduler
    from repro.core.lqf import LQFScheduler
    from repro.core.maximum import MaximumMatchingScheduler
    from repro.core.pim import PIMScheduler
    from repro.core.qps import QPSScheduler
    from repro.core.wavefront import WavefrontScheduler

    if name == "pim":
        return PIMScheduler(iterations=iterations, seed=seed)
    if name == "pim-inf":
        return PIMScheduler(iterations=None, seed=seed)
    if name == "islip":
        return ISLIPScheduler(iterations=iterations)
    if name == "lqf":
        return LQFScheduler(seed=seed)
    if name == "qps":
        return QPSScheduler(rounds=iterations, seed=seed)
    if name == "wavefront":
        return WavefrontScheduler()
    if name == "maximum":
        return MaximumMatchingScheduler()
    raise argparse.ArgumentTypeError(f"unknown scheduler: {name}")


def _build_traffic(name: str, ports: int, load: float, seed: int):
    from repro.traffic.bursty import BurstyTraffic
    from repro.traffic.clientserver import ClientServerTraffic
    from repro.traffic.periodic import PeriodicTraffic
    from repro.traffic.uniform import UniformTraffic

    if name == "uniform":
        return UniformTraffic(ports, load=load, seed=seed)
    if name == "clientserver":
        return ClientServerTraffic(ports, load=load, seed=seed)
    if name == "bursty":
        return BurstyTraffic(ports, load=min(load, 0.99), seed=seed)
    if name == "periodic":
        return PeriodicTraffic(ports, load=load, burst=2 * ports, seed=seed)
    raise argparse.ArgumentTypeError(f"unknown workload: {name}")


def _build_switch(scheduler_name: str, ports: int, iterations: int, seed: int):
    from repro.core.fifo import FIFOScheduler
    from repro.core.output_queueing import OutputQueuedSwitch
    from repro.switch.switch import CrossbarSwitch, FIFOSwitch

    if scheduler_name == "fifo":
        return FIFOSwitch(ports, FIFOScheduler(policy="random", seed=seed))
    if scheduler_name == "output-queueing":
        return OutputQueuedSwitch(ports)
    return CrossbarSwitch(ports, _build_scheduler(scheduler_name, ports, iterations, seed))


def cmd_info(args: argparse.Namespace) -> int:
    """Print the AN2 headline hardware numbers."""
    from repro.hardware.cost import (
        PRODUCTION_MODEL,
        PROTOTYPE_MODEL,
        cell_rate,
        schedule_time_budget,
        uncontended_latency,
    )

    print("AN2 switch (16 ports, 1 Gb/s links, 53-byte ATM cells)")
    print(f"  scheduling budget per slot : {schedule_time_budget() * 1e9:.0f} ns")
    print(f"  aggregate cell rate        : {cell_rate() / 1e6:.1f} M cells/s")
    print(f"  uncontended latency        : {uncontended_latency() * 1e6:.1f} us")
    print("\nComponent cost shares (Table 2):")
    print(f"  {'unit':<18}{'prototype':>10}{'production':>12}")
    production = dict(PRODUCTION_MODEL.table2_rows())
    for name, share in PROTOTYPE_MODEL.table2_rows():
        print(f"  {name:<18}{share:>9.0f}%{production[name]:>11.0f}%")
    return 0


def _args_config(args: argparse.Namespace) -> dict:
    """The run's logical config from its parsed flags (for manifests)."""
    skip = {"func", "command", "trace", "metrics", "trace_stride", "profile"}
    return {
        key: value
        for key, value in sorted(vars(args).items())
        if key not in skip and not callable(value)
    }


def _build_probe(args: argparse.Namespace):
    """Probe from --trace/--metrics/--trace-stride flags (or None).

    Traced runs open with a :class:`repro.obs.perf.RunManifest` record,
    so every JSONL trace carries the git SHA / platform / versions /
    seed / config hash of the run that produced it.
    """
    if not (args.trace or args.metrics):
        return None
    from repro.obs import JSONLSink, MetricsRegistry, NullSink, Probe

    sink = JSONLSink(args.trace) if args.trace else NullSink()
    metrics = MetricsRegistry() if args.metrics else None
    probe = Probe(sink, metrics=metrics, stride=args.trace_stride)
    if args.trace:
        from repro.obs.perf import RunManifest

        probe.run_manifest(
            RunManifest.collect(
                seed=getattr(args, "seed", None), config=_args_config(args)
            )
        )
    return probe


def _finish_probe(probe) -> None:
    """Close the sink and render the metrics table, if any."""
    if probe is None:
        return
    probe.close()
    if probe.metrics is not None:
        print("\nmetrics:")
        print(probe.metrics.render())


def cmd_delay(args: argparse.Namespace) -> int:
    """One (scheduler, workload, load) point, on either backend."""
    from repro.obs.perf import PhaseTimer

    probe = _build_probe(args)
    timer = PhaseTimer() if args.profile else None

    def _print_profile() -> None:
        if timer is not None:
            print("\nphase profile:")
            print(timer.report(slots=args.slots).render())

    if args.backend == "fastpath":
        fastpath_choices = ("pim", "pim-inf", "islip", "lqf", "wavefront", "qps")
        if args.scheduler not in fastpath_choices or args.workload != "uniform":
            print(
                "error: --backend fastpath supports only --scheduler "
                + "/".join(fastpath_choices)
                + " with --workload uniform",
                file=sys.stderr,
            )
            return 2
        from repro.sim.fastpath import run_fastpath

        result = run_fastpath(
            args.ports,
            args.load,
            args.slots,
            replicas=1,
            warmup=args.warmup,
            iterations=None if args.scheduler == "pim-inf" else args.iterations,
            scheduler="pim" if args.scheduler == "pim-inf" else args.scheduler,
            seed=args.seed,
            arrival_seeds=[args.seed + 1],
            probe=probe,
            phase_timer=timer,
        )
        print(result.summary())
        _print_profile()
        _finish_probe(probe)
        return 0
    switch = _build_switch(args.scheduler, args.ports, args.iterations, args.seed)
    if (probe is not None or timer is not None) and args.scheduler in (
        "fifo", "output-queueing"
    ):
        print(
            "error: --trace/--metrics/--profile require a crossbar scheduler "
            "(pim, pim-inf, islip, lqf, wavefront, qps, maximum)",
            file=sys.stderr,
        )
        return 2
    traffic = _build_traffic(args.workload, args.ports, args.load, args.seed + 1)
    extra = {}
    if probe is not None:
        extra["probe"] = probe
    if timer is not None:
        extra["phase_timer"] = timer
    result = switch.run(traffic, slots=args.slots, warmup=args.warmup, **extra)
    print(result.summary())
    _print_profile()
    _finish_probe(probe)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Delay vs load for FIFO / PIM-4 / output queueing (Figures 3-4)."""
    from repro.traffic.trace import TraceRecorder

    names = ["fifo", "pim", "output-queueing"]
    print(f"{'load':>6}" + "".join(f"{name:>22}" for name in names))
    for load in args.loads:
        recorder = TraceRecorder(
            _build_traffic(args.workload, args.ports, load, args.seed)
        )
        cells = []
        first = True
        for name in names:
            traffic = recorder if first else recorder.replay()
            first = False
            switch = _build_switch(name, args.ports, args.iterations, args.seed)
            result = switch.run(traffic, slots=args.slots, warmup=args.warmup)
            cells.append(f"{result.mean_delay:12.2f} ({result.throughput:4.2f})")
        print(f"{load:6.2f}" + "".join(f"{cell:>22}" for cell in cells))
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    """Regenerate Table 1 at a chosen sample size."""
    from repro.core.pim import pim_match_batch

    rng = np.random.default_rng(args.seed)
    print(f"{'p':>5}  K=1     K=2     K=3     K=4    ({args.patterns} patterns each)")
    for p in (0.10, 0.25, 0.50, 0.75, 1.0):
        batch = rng.random((args.patterns, args.ports, args.ports)) < p
        cumulative = pim_match_batch(batch, rng)
        total = cumulative[:, -1].sum()
        row = []
        for k in range(4):
            col = cumulative[:, min(k, cumulative.shape[1] - 1)]
            row.append(100.0 * col.sum() / total)
        print(f"{p:5.2f}  " + "  ".join(f"{x:6.2f}" for x in row))
    return 0


def cmd_cbr_bounds(args: argparse.Namespace) -> int:
    """Appendix B bounds vs a simulated drifting-clock chain."""
    from repro.cbr.clock import (
        ClockModel,
        cbr_buffer_bound,
        cbr_latency_bound,
        controller_frame_slots,
        simulate_cbr_chain,
    )

    clock = ClockModel(
        slot_time=1.0,
        switch_frame_slots=args.frame,
        controller_frame_slots=controller_frame_slots(args.frame, args.tolerance, 5),
        tolerance=args.tolerance,
    )
    result = simulate_cbr_chain(
        clock, hops=args.hops, link_latency=args.link_latency,
        cells=args.cells, seed=args.seed,
    )
    latency_bound = cbr_latency_bound(args.hops, clock, args.link_latency)
    buffer_bound = cbr_buffer_bound(args.hops, clock, args.link_latency)
    print(f"{args.hops} hops, frame {args.frame} slots, tolerance {args.tolerance:g}")
    print(f"  max adjusted latency : {result.max_adjusted_latency():10.1f} slots "
          f"(bound {latency_bound:.1f})")
    print(f"  max buffer occupancy : {max(result.max_buffer_occupancy):10d} cells "
          f"(bound {buffer_bound:.1f} per unit reservation)")
    return 0


def cmd_fairness(args: argparse.Namespace) -> int:
    """The Figure 8 unfairness and the statistical-matching fix."""
    from repro.core.pim import PIMScheduler
    from repro.core.statistical import StatisticalMatcher
    from repro.fairness.metrics import jain_index

    ports = 4
    requests = np.zeros((ports, ports), dtype=bool)
    requests[0, 0] = requests[1, 0] = requests[2, 0] = True
    requests[3, :] = True
    pim = PIMScheduler(iterations=4, seed=args.seed)
    counts = np.zeros(ports)
    for _ in range(args.slots):
        for i, j in pim.schedule(requests):
            if j == 0:
                counts[i] += 1
    shares = counts / counts.sum()
    print("Figure 8 with PIM: output 1 split", [f"{s:.3f}" for s in shares],
          f"jain={jain_index(list(shares)):.3f}")

    alloc = np.zeros((ports, ports), dtype=np.int64)
    alloc[:, 0] = 4
    alloc[3, 1] = alloc[3, 2] = alloc[3, 3] = 4
    matcher = StatisticalMatcher(alloc, units=16, rounds=2, seed=args.seed)
    counts = np.zeros(ports)
    for _ in range(args.slots):
        for i, j in matcher.match():
            if j == 0:
                counts[i] += 1
    shares = counts / counts.sum()
    print("With statistical matching:      ", [f"{s:.3f}" for s in shares],
          f"jain={jain_index(list(shares)):.3f}")
    return 0


def _build_reservations(ports: int, frame_slots: int, utilization: float, seed: int):
    """Random feasible reservation table, one flow per connection.

    Built as a sum of permutation matrices (like the differential
    harness), so no input or output link is over-committed and the
    Slepian-Duguid insertion always succeeds.
    """
    from repro.cbr.reservations import ReservationTable
    from repro.check.differential import _random_allocations
    from repro.sim.rng import derive_seed
    from repro.switch.cell import ServiceClass
    from repro.switch.flow import Flow

    rng = np.random.default_rng(derive_seed(seed, "cli/cbr-allocations"))
    matrix = _random_allocations(ports, frame_slots, rng, fraction=utilization)
    table = ReservationTable(ports, frame_slots)
    flow_id = 1
    for i in range(ports):
        for j in range(ports):
            if matrix[i, j]:
                table.admit(
                    Flow(
                        flow_id=flow_id, src=i, dst=j,
                        service=ServiceClass.CBR,
                        cells_per_frame=int(matrix[i, j]),
                    )
                )
                flow_id += 1
    return table


def cmd_cbr(args: argparse.Namespace) -> int:
    """Integrated CBR+VBR switch (Section 4), on either backend."""
    probe = _build_probe(args)
    table = _build_reservations(args.ports, args.frame, args.utilization, args.seed)
    reserved = int(table.reserved_matrix().sum())
    print(
        f"{args.ports}x{args.ports} integrated switch, frame {args.frame} slots, "
        f"{len(table.flows())} CBR flows ({reserved} cells/frame reserved), "
        f"VBR load {args.vbr_load}"
    )
    if args.backend == "fastpath":
        from repro.sim.fastpath_cbr import run_fastpath_cbr

        result = run_fastpath_cbr(
            table,
            args.vbr_load,
            args.slots,
            replicas=args.replicas,
            warmup=args.warmup,
            scheduler=args.scheduler,
            seed=args.seed,
            probe=probe,
            trace_stride=None,
        )
        print(result.summary())
        _finish_probe(probe)
        return 0
    if args.replicas != 1:
        print("error: --replicas needs --backend fastpath", file=sys.stderr)
        return 2
    if args.scheduler != "pim":
        print("error: --scheduler needs --backend fastpath", file=sys.stderr)
        return 2
    from repro.cbr.integrated import IntegratedSwitch
    from repro.core.pim import PIMScheduler
    from repro.sim.rng import derive_seed
    from repro.traffic.cbr_source import CBRSource
    from repro.traffic.uniform import UniformTraffic

    switch = IntegratedSwitch(
        table, scheduler=PIMScheduler(seed=derive_seed(args.seed, "cli/cbr-match"))
    )
    traffic = [
        CBRSource(args.ports, table.flows(), args.frame),
        UniformTraffic(
            args.ports, load=args.vbr_load,
            seed=derive_seed(args.seed, "cli/cbr-vbr"),
        ),
    ]
    if probe is not None:
        result = switch.run(traffic, slots=args.slots, warmup=args.warmup, probe=probe)
    else:
        result = switch.run(traffic, slots=args.slots, warmup=args.warmup)
    print(result.summary())
    print(
        f"  cbr: {result.cbr_delay.count} cells, mean delay "
        f"{result.cbr_delay.mean:.2f} slots; vbr: {result.vbr_delay.count} "
        f"cells, mean delay {result.vbr_delay.mean:.2f} slots"
    )
    bound = (
        f", bound max {max(result.cbr_buffer_bound)}"
        if result.cbr_buffer_bound else ""
    )
    print(
        f"  reserved slots used {result.cbr_slots_used}, donated "
        f"{result.cbr_slots_donated}; peak cbr buffer "
        f"{result.peak_cbr_buffer}{bound}"
    )
    _finish_probe(probe)
    return 0


def cmd_statistical(args: argparse.Namespace) -> int:
    """Statistically-matched switch (Section 5), on either backend."""
    from repro.check.differential import _random_allocations
    from repro.sim.rng import derive_seed

    probe = _build_probe(args)
    rng = np.random.default_rng(derive_seed(args.seed, "cli/stat-allocations"))
    allocations = _random_allocations(
        args.ports, args.units, rng, fraction=args.utilization
    )
    match_seed = derive_seed(args.seed, "cli/stat-match")
    print(
        f"{args.ports}x{args.ports} statistical matching, X={args.units} units "
        f"({int(allocations.sum())} allocated), rounds {args.rounds}, "
        f"fill {'on' if args.fill else 'off'}, load {args.load}"
    )
    if args.backend == "fastpath":
        from repro.sim.fastpath_statistical import run_fastpath_statistical

        result = run_fastpath_statistical(
            allocations,
            args.units,
            args.load,
            args.slots,
            rounds=args.rounds,
            fill=args.fill,
            replicas=args.replicas,
            warmup=args.warmup,
            seed=args.seed,
            match_seed=match_seed,
            probe=probe,
        )
        print(result.summary())
        _finish_probe(probe)
        return 0
    if args.replicas != 1:
        print("error: --replicas needs --backend fastpath", file=sys.stderr)
        return 2
    from repro.core.statistical import StatisticalMatcher
    from repro.switch.switch import CrossbarSwitch
    from repro.traffic.uniform import UniformTraffic

    matcher = StatisticalMatcher(
        allocations, units=args.units, rounds=args.rounds,
        seed=match_seed, fill=args.fill,
    )
    switch = CrossbarSwitch(args.ports, matcher)
    traffic = UniformTraffic(
        args.ports, load=args.load, seed=derive_seed(args.seed, "cli/stat-traffic")
    )
    if probe is not None:
        result = switch.run(traffic, slots=args.slots, warmup=args.warmup, probe=probe)
    else:
        result = switch.run(traffic, slots=args.slots, warmup=args.warmup)
    print(result.summary())
    _finish_probe(probe)
    return 0


def cmd_network(args: argparse.Namespace) -> int:
    """Multi-switch fabric (Section 2's LAN view), on either backend."""
    from repro.network.netsim import FlowSpec, NetworkSimulator
    from repro.network.topologies import build
    from repro.sim.rng import derive_seed

    topo, hosts = build(args.topology, args.size, latency=args.latency)
    if len(hosts) < 2:
        print(
            f"error: {args.topology}(size={args.size}) has {len(hosts)} hosts; "
            "need at least 2 for flows",
            file=sys.stderr,
        )
        return 2
    flow_rng = np.random.default_rng(derive_seed(args.seed, "cli/network-flows"))
    rates = (1.0, 0.8, 0.5, 0.25)
    flows = []
    for flow_id in range(1, args.flows + 1):
        src, dst = flow_rng.choice(len(hosts), size=2, replace=False)
        flows.append(
            FlowSpec(flow_id, hosts[src], hosts[dst], float(flow_rng.choice(rates)))
        )
    limit = args.buffer_limit if args.buffer_limit > 0 else None
    print(
        f"{args.topology}(size={args.size}): {len(topo.switches())} switches, "
        f"{len(hosts)} hosts, {len(flows)} flows, link latency {args.latency}"
        + (f", buffer limit {limit}" if limit else "")
    )
    for flow in flows:
        print(f"  flow {flow.flow_id}: {flow.src} -> {flow.dst} rate {flow.rate}")
    if args.backend == "fastpath":
        from repro.sim.fastpath_network import run_fastpath_network

        result = run_fastpath_network(
            topo,
            flows,
            args.slots,
            replicas=args.replicas,
            warmup=args.warmup,
            scheduler=args.scheduler,
            seed=args.seed,
            buffer_limit=limit,
        )
        print(result.summary())
        return 0
    if args.replicas != 1:
        print("error: --replicas needs --backend fastpath", file=sys.stderr)
        return 2
    if args.scheduler != "pim":
        print("error: --scheduler needs --backend fastpath", file=sys.stderr)
        return 2
    sim = NetworkSimulator(topo, seed=args.seed, buffer_limit=limit)
    for flow in flows:
        sim.add_flow(flow)
    result = sim.run(args.slots, warmup=args.warmup)
    window = args.slots - args.warmup
    print(f"{len(flows)} flows over {window} post-warm-up slots:")
    for flow in flows:
        stats = result.delay.get(flow.flow_id)
        delay = (
            f"mean delay {stats.mean:8.2f} ({stats.count} cells)"
            if stats is not None and stats.count
            else "no warm deliveries"
        )
        print(
            f"  flow {flow.flow_id}: throughput "
            f"{result.throughput(flow.flow_id):6.4f}  {delay}"
        )
    return 0


def cmd_sched_study(args: argparse.Namespace) -> int:
    """Cross-scheduler delay-vs-load study on the fast path."""
    from repro.analysis.scheduler_study import (
        format_table,
        rows_for_record,
        run_study,
    )

    print(
        f"{args.ports}x{args.ports} fast path, {args.replicas} replicas, "
        f"{args.slots} slots (warmup {args.slots // 5}), "
        f"schedulers: {', '.join(args.schedulers)}"
    )
    rows = run_study(
        ports=args.ports,
        loads=args.loads,
        slots=args.slots,
        replicas=args.replicas,
        iterations=args.iterations,
        seed=args.seed,
        schedulers=args.schedulers,
    )
    print(format_table(rows))
    violations = [row for row in rows if row.bound_ok is False]
    if violations:
        for row in violations:
            print(
                f"BOUND VIOLATION: {row.scheduler} at load {row.load:.2f}: "
                f"measured {row.mean_delay:.2f} > bound {row.bound:.2f}",
                file=sys.stderr,
            )
    else:
        finite = sum(1 for row in rows if row.bound_ok is not None)
        print(
            f"\nmaximal-matching delay bound held at all {finite} "
            "applicable points"
        )
    if args.record:
        from repro.obs.store import record_result

        entry = record_result(
            "sched_study",
            rows_for_record(rows),
            config={
                "ports": args.ports,
                "loads": list(args.loads),
                "slots": args.slots,
                "replicas": args.replicas,
                "iterations": args.iterations,
                "schedulers": list(args.schedulers),
            },
            seed=args.seed,
        )
        print(f"recorded {entry.bench} run {entry.run_id}")
    return 1 if violations else 0


def cmd_scenario_list(args: argparse.Namespace) -> int:
    """The named-scenario registry, one line per scenario."""
    from repro.traffic.scenarios import list_scenarios

    print(f"{'name':<19}{'ports':>6}{'load':>6}{'slots':>7}{'warmup':>8}  description")
    for spec in list_scenarios():
        print(
            f"{spec.name:<19}{spec.ports:>6}{spec.load:>6.2f}{spec.slots:>7}"
            f"{spec.warmup:>8}  {spec.description}"
        )
    return 0


def _run_trace_replay(args: argparse.Namespace) -> int:
    """``scenario run --trace``: replay a recorded trace file.

    JSON traces carry their own port count; rotorsim-style CSV traces
    (``slot,input,output`` rows) need ``--ports``.  The replay runs on
    either backend; flow-completion stats need flow-aware sources, so
    the FCT columns come out blank (the cell-level summary still
    prints).
    """
    from repro.analysis.fct_tables import fct_row, format_fct_table
    from repro.core.batch import build_object_scheduler
    from repro.sim.rng import derive_seed
    from repro.traffic.trace import TraceTraffic

    if args.parity:
        print("error: --parity and --trace are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.replicas != 1:
        print("error: --trace replays one fixed schedule; --replicas "
              "must stay 1", file=sys.stderr)
        return 2
    try:
        if args.trace.endswith(".csv"):
            if args.ports is None:
                print("error: CSV traces carry no port count; pass --ports",
                      file=sys.stderr)
                return 2
            traffic = TraceTraffic.load_csv(args.trace, args.ports)
        else:
            traffic = TraceTraffic.load(args.trace)
    except (OSError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    ports = traffic.ports
    slots = args.slots if args.slots is not None else traffic.last_slot + 1
    if slots < 1:
        print(f"error: {args.trace}: trace is empty", file=sys.stderr)
        return 2
    warmup = args.warmup if args.warmup is not None else 0
    drain = args.drain if args.drain is not None else max(600, 2 * slots)
    load = traffic.total_cells / (ports * slots) if slots else 0.0
    print(
        f"trace replay {args.trace}: {traffic.total_cells} cells, "
        f"{ports}x{ports}, {slots} arrival slots (warmup {warmup}, "
        f"drain {drain}), scheduler {args.scheduler}, backend {args.backend}"
    )
    if args.backend == "fastpath":
        from repro.sim.fastpath import run_fastpath

        result = run_fastpath(
            ports,
            load,
            slots,
            replicas=1,
            warmup=warmup,
            iterations=args.iterations,
            scheduler=args.scheduler,
            seed=args.seed,
            sources=[traffic],
            drain_slots=drain,
            warmup_mode="arrival",
        )
    else:
        from repro.switch.switch import CrossbarSwitch

        scheduler = build_object_scheduler(
            args.scheduler,
            iterations=args.iterations,
            seed=derive_seed(args.seed, "cli/scenario-match"),
            ports=ports,
        )
        switch = CrossbarSwitch(ports, scheduler)
        result = switch.run(traffic, slots=slots + drain, warmup=warmup)
    print(result.summary())
    print()
    print(format_fct_table(
        [fct_row(args.trace, args.scheduler, args.backend,
                 getattr(result, "fct", None), result)]
    ))
    return 0


def cmd_scenario_run(args: argparse.Namespace) -> int:
    """One named scenario on either backend, with per-flow FCT stats."""
    from repro.analysis.fct_tables import fct_row, format_fct_table
    from repro.sim.rng import derive_seed
    from repro.traffic.scenarios import get_scenario

    if args.trace is not None:
        if args.name is not None:
            print("error: --trace replays a file; omit the scenario name",
                  file=sys.stderr)
            return 2
        return _run_trace_replay(args)
    if args.name is None:
        print("error: pass a scenario name (see 'scenario list') or --trace",
              file=sys.stderr)
        return 2
    try:
        spec = get_scenario(args.name)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    slots = args.slots if args.slots is not None else spec.slots
    if args.warmup is not None:
        warmup = args.warmup
    elif args.slots is not None:
        # Shortened run: scale the warmup down with it, or the whole
        # arrival window could fall inside the discarded transient.
        warmup = min(spec.warmup, slots // 5)
    else:
        warmup = spec.warmup
    drain = args.drain if args.drain is not None else max(600, 2 * slots)
    ports = args.ports if args.ports is not None else spec.ports
    load = args.load if args.load is not None else spec.load

    if args.parity:
        from repro.check.differential import scenario_parity
        from repro.check.invariants import InvariantViolation

        try:
            report = scenario_parity(
                args.name,
                scheduler=args.scheduler,
                slots=slots,
                seed=args.seed,
                warmup=warmup,
                drain_slots=drain,
                iterations=args.iterations,
                ports=args.ports,
                load=args.load,
            )
        except InvariantViolation as exc:
            print(f"PARITY FAILURE: {exc}", file=sys.stderr)
            return 1
        print(report)
        rows = [
            fct_row(args.name, args.scheduler, "object",
                    report.object_result.fct, report.object_result),
            fct_row(args.name, args.scheduler, "fastpath",
                    report.fast_result.fct, report.fast_result),
        ]
        print()
        print(format_fct_table(rows))
        return 0

    print(
        f"scenario {spec.name}: {spec.description}\n"
        f"  {ports}x{ports}, load {load}, {slots} arrival slots "
        f"(warmup {warmup}, drain {drain}), scheduler {args.scheduler}, "
        f"backend {args.backend}"
    )
    if args.backend == "fastpath":
        from repro.sim.fastpath import run_fastpath

        sources = [
            spec.build_source(
                derive_seed(args.seed, f"cli/scenario-traffic/{replica}"),
                ports=args.ports,
                load=args.load,
            )
            for replica in range(args.replicas)
        ]
        result = run_fastpath(
            ports,
            load,
            slots,
            replicas=args.replicas,
            warmup=warmup,
            iterations=args.iterations,
            scheduler=args.scheduler,
            seed=args.seed,
            sources=sources,
            drain_slots=drain,
            warmup_mode="arrival",
        )
    else:
        if args.replicas != 1:
            print("error: --replicas needs --backend fastpath", file=sys.stderr)
            return 2
        from repro.core.batch import build_object_scheduler
        from repro.switch.switch import CrossbarSwitch
        from repro.traffic.flows import WindowedSource

        scheduler = build_object_scheduler(
            args.scheduler,
            iterations=args.iterations,
            seed=derive_seed(args.seed, "cli/scenario-match"),
            ports=ports,
        )
        source = spec.build_source(
            derive_seed(args.seed, "cli/scenario-traffic/0"),
            ports=args.ports,
            load=args.load,
        )
        switch = CrossbarSwitch(ports, scheduler)
        result = switch.run(
            WindowedSource(source, slots), slots=slots + drain, warmup=warmup
        )
    print(result.summary())
    print()
    print(format_fct_table(
        [fct_row(spec.name, args.scheduler, args.backend, result.fct, result)]
    ))
    return 0


def cmd_scenario_smoke(args: argparse.Namespace) -> int:
    """One small scenario per kernel, both backends, parity-checked.

    Kernel ``i`` runs scenario ``i mod len(registry)``, so every batched
    kernel and every named scenario appears at least once.  Each run is
    a full :func:`repro.check.differential.scenario_parity` comparison;
    the combined FCT table goes to stdout and, with ``--out``, to a
    file for CI artifacting.
    """
    from repro.analysis.fct_tables import fct_row, format_fct_table
    from repro.check.differential import scenario_parity
    from repro.check.invariants import InvariantViolation
    from repro.core.batch import BATCH_SCHEDULERS
    from repro.traffic.scenarios import SCENARIOS

    names = list(SCENARIOS)
    rows = []
    failures = []
    for index, scheduler in enumerate(BATCH_SCHEDULERS):
        scenario = names[index % len(names)]
        try:
            report = scenario_parity(
                scenario,
                scheduler=scheduler,
                slots=args.slots,
                seed=args.seed,
                warmup=args.warmup,
            )
        except InvariantViolation as exc:
            failures.append(str(exc))
            print(f"PARITY FAILURE: {exc}", file=sys.stderr)
            continue
        print(report)
        rows.append(
            fct_row(scenario, scheduler, "object",
                    report.object_result.fct, report.object_result)
        )
        rows.append(
            fct_row(scenario, scheduler, "fastpath",
                    report.fast_result.fct, report.fast_result)
        )
    table = format_fct_table(rows)
    print()
    print(table)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(table + "\n")
            for failure in failures:
                handle.write(f"PARITY FAILURE: {failure}\n")
        print(f"\nwrote FCT table to {args.out}")
    if failures:
        print(f"\n{len(failures)} parity failures", file=sys.stderr)
        return 1
    print(f"\nall {len(BATCH_SCHEDULERS)} kernel/scenario parity runs passed")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Randomized invariant/differential sweeps (see repro.check)."""
    from repro.check import (
        fuzz,
        fuzz_cbr,
        fuzz_churn,
        fuzz_network,
        fuzz_scenarios,
        fuzz_statistical,
    )

    suites = {
        "switch": fuzz,
        "cbr": fuzz_cbr,
        "churn": fuzz_churn,
        "statistical": fuzz_statistical,
        "network": fuzz_network,
        "scenario": fuzz_scenarios,
    }
    selected = list(suites) if args.suite == "all" else [args.suite]
    ok = True
    for name in selected:
        report = suites[name](
            seeds=args.seeds,
            budget_seconds=args.budget,
            out_dir=args.out,
            base_seed=args.seed,
        )
        print(f"[{name}] {report.describe()}")
        ok = ok and report.ok
    return 0 if ok else 1


def _budget_seconds(text: str) -> float:
    """Parse a wall-clock budget: plain seconds, '60s', or '2m'."""
    text = text.strip().lower()
    scale = 1.0
    if text.endswith("m"):
        scale, text = 60.0, text[:-1]
    elif text.endswith("s"):
        text = text[:-1]
    try:
        value = float(text) * scale
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid budget {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError("budget must be positive")
    return value


def _summarize_events(events) -> dict:
    """Machine-readable summary of a trace's events.

    This dict is the single source for both output formats of ``trace
    summarize``: the text renderer prints it, and ``--format json``
    dumps it verbatim (so the JSON is exactly what the text shows).
    """
    slot_begins = [e for e in events if e.kind == "slot_begin"]
    transfers = [e for e in events if e.kind == "crossbar_transfer"]
    departures = [e for e in events if e.kind == "cell_departure"]
    snapshots = [e for e in events if e.kind == "voq_snapshot"]
    pim_by_slot = {}
    for e in events:
        if e.kind == "pim_iteration":
            pim_by_slot.setdefault(e.slot, []).append(e)

    summary = {
        "events": len(events),
        "slots_traced": len(slot_begins),
        "offered_cells": sum(e.arrivals for e in slot_begins),
        "carried_cells": sum(e.cells for e in transfers),
        "departures": len(departures),
        "mean_delay": (
            sum(e.delay for e in departures) / len(departures)
            if departures
            else None
        ),
    }

    manifests = [e for e in events if e.kind == "run_manifest"]
    if manifests:
        summary["manifest"] = manifests[0].manifest

    if pim_by_slot:
        # Table 1's statistic from the trace: for each slot, matched is
        # cumulative per iteration; slots that converged early carry
        # their final size forward to K.
        iterations_per_slot = []
        k_max = 0
        for rounds in pim_by_slot.values():
            rounds.sort(key=lambda e: e.iteration)
            iterations_per_slot.append(rounds[-1].iteration)
            k_max = max(k_max, rounds[-1].iteration)
        within_k = [0] * k_max
        final_total = 0
        for rounds in pim_by_slot.values():
            final_total += rounds[-1].matched
            for k in range(k_max):
                within_k[k] += rounds[min(k, len(rounds) - 1)].matched
        summary["pim"] = {
            "sampled_slots": len(pim_by_slot),
            "mean_iterations": sum(iterations_per_slot) / len(iterations_per_slot),
            "within_k_pct": {
                f"K={k + 1}": (
                    100.0 * within_k[k] / final_total if final_total else 0.0
                )
                for k in range(k_max)
            },
        }

    if snapshots:
        hottest = max(snapshots, key=lambda e: e.total)
        summary["voq"] = {
            "snapshots": len(snapshots),
            "peak_occupancy": hottest.total,
            "peak_slot": hottest.slot,
        }

    profiles = [e for e in events if e.kind == "phase_profile"]
    if profiles:
        profile = profiles[-1]
        summary["phases"] = {
            "phases": profile.phases,
            "wall_seconds": profile.wall_seconds,
            "slots": profile.slots,
            "cells": profile.cells,
        }
    return summary


def _phase_report_from_summary(phases: dict):
    """A renderable PhaseReport from a summary's ``phases`` block."""
    from repro.obs.perf import PhaseReport, PhaseStat

    wall = phases.get("wall_seconds", 0.0)
    stats = [
        PhaseStat(
            path=path,
            calls=int(stat.get("calls", 0)),
            seconds=stat.get("seconds", 0.0),
            share=(stat.get("seconds", 0.0) / wall) if wall > 0 else 0.0,
        )
        for path, stat in phases.get("phases", {}).items()
    ]
    slots = phases.get("slots", -1)
    cells = phases.get("cells", -1)
    return PhaseReport(
        phases=stats,
        wall_seconds=wall,
        slots=slots if slots is not None and slots >= 0 else None,
        cells=cells if cells is not None and cells >= 0 else None,
    )


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    """Render a traced run: totals, PIM anatomy, backlog curve."""
    from repro.analysis.ascii_plot import bar_chart, line_chart
    from repro.obs import read_events, write_csv_summary

    try:
        events = list(read_events(args.path))
    except FileNotFoundError:
        print(f"{args.path}: no such trace file", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"{args.path}: malformed trace: {exc}", file=sys.stderr)
        return 1
    if not events:
        print(f"{args.path}: empty trace", file=sys.stderr)
        return 1

    summary = _summarize_events(events)
    if args.csv:
        rows = write_csv_summary(events, args.csv)
        summary["csv"] = {"path": args.csv, "rows": rows}
    if args.format == "json":
        summary["path"] = args.path
        print(json.dumps(summary, indent=2))
        return 0

    print(f"trace: {args.path}  ({summary['events']} events)")
    print(f"  slots traced    : {summary['slots_traced']}")
    print(f"  offered cells   : {summary['offered_cells']}")
    print(f"  carried cells   : {summary['carried_cells']}")
    if summary["departures"]:
        print(
            f"  mean delay      : {summary['mean_delay']:.2f} slots "
            f"({summary['departures']} cell departures)"
        )
    if "manifest" in summary:
        manifest = summary["manifest"]
        print(
            f"  manifest        : git {manifest.get('git_sha', 'unknown')[:12]}  "
            f"seed {manifest.get('seed')}  config {manifest.get('config_hash', '')}"
        )

    if "pim" in summary:
        pim = summary["pim"]
        print(f"\nPIM anatomy ({pim['sampled_slots']} sampled slots):")
        print(f"  mean iterations/slot : {pim['mean_iterations']:.2f}")
        print("  % of final matches found within K iterations (cf. Table 1):")
        shares = pim["within_k_pct"]
        for name, pct in shares.items():
            print(f"    {name}  {pct:6.2f}%")
        if args.plot:
            print()
            print(bar_chart(shares, width=40, reference=100.0, reference_label="100%"))

    if args.plot:
        slot_begins = [e for e in events if e.kind == "slot_begin"]
        if len(slot_begins) >= 2:
            backlog_points = [(float(e.slot), float(e.backlog)) for e in slot_begins]
            print("\nbacklog at slot start:")
            print(
                line_chart(
                    {"backlog": backlog_points},
                    width=60,
                    height=10,
                    x_label="slot",
                )
            )
    if "voq" in summary:
        voq = summary["voq"]
        print(
            f"\n{voq['snapshots']} VOQ snapshots; peak pooled occupancy "
            f"{voq['peak_occupancy']} cells at slot {voq['peak_slot']}"
        )
    if "phases" in summary:
        print("\nphase profile:")
        print(_phase_report_from_summary(summary["phases"]).render())
    if "csv" in summary:
        print(
            f"\nwrote per-slot summary ({summary['csv']['rows']} rows) "
            f"to {summary['csv']['path']}"
        )
    return 0


def _history_store(args: argparse.Namespace):
    """A PerfStore rooted at --history (default: the repo's history)."""
    from repro.obs.store import DEFAULT_HISTORY_DIR, PerfStore

    return PerfStore(args.history or DEFAULT_HISTORY_DIR)


def _print_manifest(manifest: dict) -> None:
    print(
        f"manifest: git {manifest.get('git_sha', 'unknown')[:12]}  "
        f"python {manifest.get('python_version', '?')}  "
        f"numpy {manifest.get('numpy_version', '?')}  "
        f"seed {manifest.get('seed')}  config {manifest.get('config_hash', '')}"
    )


def cmd_perf_report(args: argparse.Namespace) -> int:
    """Per-phase breakdown: profile a run now, or render a history entry."""
    from repro.obs.perf import PhaseReport, PhaseTimer, RunManifest

    if args.from_history is not None:
        store = _history_store(args)
        try:
            entry = store.resolve(args.bench, args.from_history)
        except (LookupError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"bench {entry.bench}, run {entry.run_id}")
        _print_manifest(entry.manifest)
        if entry.phases is None:
            print(
                f"error: run {entry.run_id} recorded no phase breakdown",
                file=sys.stderr,
            )
            return 1
        print()
        print(PhaseReport.from_dict(entry.phases).render())
        return 0

    timer = PhaseTimer()
    slots_total = args.replicas * args.slots
    cells = None
    if args.backend == "fastpath":
        from repro.sim.fastpath import run_fastpath

        result = run_fastpath(
            args.ports, args.load, args.slots, replicas=args.replicas,
            warmup=args.warmup, seed=args.seed, phase_timer=timer,
        )
        cells = int(result.carried_cells.sum())
    elif args.backend == "cbr":
        from repro.sim.fastpath_cbr import run_fastpath_cbr

        table = _build_reservations(args.ports, 50, 0.5, args.seed)
        result = run_fastpath_cbr(
            table, args.load, args.slots, replicas=args.replicas,
            warmup=args.warmup, seed=args.seed, phase_timer=timer,
        )
        cells = int(result.carried_cbr.sum() + result.carried_vbr.sum())
    elif args.backend == "statistical":
        from repro.check.differential import _random_allocations
        from repro.sim.fastpath_statistical import run_fastpath_statistical
        from repro.sim.rng import derive_seed

        rng = np.random.default_rng(derive_seed(args.seed, "cli/stat-allocations"))
        allocations = _random_allocations(args.ports, 16, rng, fraction=0.75)
        result = run_fastpath_statistical(
            allocations, 16, args.load, args.slots, replicas=args.replicas,
            warmup=args.warmup, seed=args.seed, phase_timer=timer,
        )
        cells = int(result.carried_cells.sum())
    elif args.backend == "network":
        from repro.network.netsim import FlowSpec
        from repro.network.topologies import build
        from repro.sim.fastpath_network import run_fastpath_network
        from repro.sim.rng import derive_seed

        topo, hosts = build("parking_lot", 3, latency=1)
        flow_rng = np.random.default_rng(derive_seed(args.seed, "cli/network-flows"))
        flows = []
        for flow_id in range(1, 5):
            src, dst = flow_rng.choice(len(hosts), size=2, replace=False)
            flows.append(FlowSpec(flow_id, hosts[src], hosts[dst], args.load))
        result = run_fastpath_network(
            topo, flows, args.slots, replicas=args.replicas,
            warmup=args.warmup, seed=args.seed, phase_timer=timer,
        )
        cells = int(result.delivered.sum())
    elif args.backend == "object":
        from repro.core.pim import PIMScheduler
        from repro.switch.switch import CrossbarSwitch
        from repro.traffic.uniform import UniformTraffic

        switch = CrossbarSwitch(args.ports, PIMScheduler(seed=args.seed))
        traffic = UniformTraffic(args.ports, load=args.load, seed=args.seed + 1)
        switch.run(
            traffic, slots=args.slots, warmup=args.warmup, phase_timer=timer
        )
        slots_total = args.slots
    else:  # parity: both backends nested under object/ and fastpath/
        from repro.obs.parity import diff_backends

        report = diff_backends(
            args.ports, args.load, args.slots,
            traffic_seed=args.seed, phase_timer=timer,
        )
        slots_total = 2 * (args.slots + report.drain_slots)

    manifest = RunManifest.collect(seed=args.seed, config=_args_config(args))
    print(f"profiled {args.backend} run:")
    _print_manifest(manifest.to_dict())
    print()
    print(timer.report(slots=slots_total, cells=cells).render())
    return 0


def cmd_perf_list(args: argparse.Namespace) -> int:
    """Recorded history entries, per bench."""
    store = _history_store(args)
    benches = [args.bench] if args.bench else store.benches()
    if not benches:
        print(f"no perf history under {store.root}", file=sys.stderr)
        return 1
    status = 0
    for bench in benches:
        try:
            entries = store.load(bench)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"{bench}: {len(entries)} entries")
        if not entries and args.bench:
            status = 1
        for index, entry in enumerate(entries):
            sha = entry.manifest.get("git_sha", "unknown")[:12]
            extra = "  +phases" if entry.phases else ""
            print(
                f"  [{index}] {entry.run_id}  git {sha}  "
                f"{len(entry.results)} results{extra}"
            )
    return status


def cmd_perf_compare(args: argparse.Namespace) -> int:
    """Config-by-config diff of two history entries."""
    from repro.obs.store import compare_entries

    store = _history_store(args)
    try:
        entry_a = store.resolve(args.bench, args.run_a)
        entry_b = store.resolve(args.bench, args.run_b)
    except (LookupError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rows = compare_entries(entry_a, entry_b, metric=args.metric)
    print(f"bench {args.bench}, metric {args.metric}:")
    print(f"  a = {entry_a.run_id}  (git {entry_a.manifest.get('git_sha', '?')[:12]})")
    print(f"  b = {entry_b.run_id}  (git {entry_b.manifest.get('git_sha', '?')[:12]})")
    if not rows:
        print("  no shared configs carry this metric", file=sys.stderr)
        return 1
    for row in rows:
        print(
            f"  {row['a']:>12.2f} -> {row['b']:>12.2f}  "
            f"(x{row['ratio']:.2f})  {row['config']}"
        )
    ratios = sorted(row["ratio"] for row in rows)
    print(f"  ratio b/a: min x{ratios[0]:.2f}, max x{ratios[-1]:.2f}")
    return 0


def cmd_perf_gate(args: argparse.Namespace) -> int:
    """Gate the newest history entry of each bench against its past."""
    from repro.obs.store import DEFAULT_TOLERANCE, gate

    store = _history_store(args)
    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    benches = [args.bench] if args.bench else store.benches()
    if not benches:
        print(f"no perf history under {store.root}", file=sys.stderr)
        return 1
    ok = True
    for bench in benches:
        try:
            entries = store.load(bench)
            if not entries:
                raise ValueError(f"no history recorded for bench {bench!r}")
            report = gate(
                entries, bench=bench, metric=args.metric, tolerance=tolerance
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"[{bench}]")
        print(report.describe())
        ok = ok and report.ok
    return 0 if ok else 1


def _parse_set(items: Optional[List[str]]) -> dict:
    """Parse repeated ``--set key=value`` flags into a parameter dict.

    Values parse as JSON when they can (``--set slots=100`` is an int,
    ``--set measure='"speedup"'`` a string) and fall back to the raw
    string otherwise, so bare words work without quoting gymnastics.
    """
    out = {}
    for item in items or []:
        key, sep, text = item.partition("=")
        if not sep or not key.strip():
            raise argparse.ArgumentTypeError(
                f"--set needs key=value, got {item!r}"
            )
        try:
            out[key.strip()] = json.loads(text)
        except json.JSONDecodeError:
            out[key.strip()] = text
    return out


def _load_fleet_spec(args: argparse.Namespace):
    """(spec, results_path, extra_defaults) from the shared fleet flags."""
    import os

    from repro.fleet import load_spec

    spec = load_spec(args.spec)
    results = args.results or os.path.join("fleet-results", f"{spec.name}.jsonl")
    extra = _parse_set(args.set)
    return spec, results, extra


def cmd_fleet_run(args: argparse.Namespace) -> int:
    """Run (or resume) a sweep spec across a worker pool."""
    from repro.fleet import record_sweep, render_report, run_sweep

    try:
        spec, results, extra = _load_fleet_spec(args)
    except (OSError, ValueError, argparse.ArgumentTypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(spec.summary())
    print(f"results: {results}  pool: {args.pool}")
    outcome = run_sweep(
        spec, results, pool=args.pool, extra_defaults=extra, progress=print
    )
    print()
    print(outcome.describe())
    if not outcome.ok:
        return 1
    print()
    print(render_report(spec, outcome.records))
    if args.record:
        from repro.obs.store import DEFAULT_HISTORY_DIR

        entry = record_sweep(
            spec,
            outcome.records,
            history_dir=args.history or DEFAULT_HISTORY_DIR,
            snapshot=args.snapshot,
        )
        print(f"\nrecorded {entry.bench} run {entry.run_id}")
    return 0


def cmd_fleet_status(args: argparse.Namespace) -> int:
    """Where a sweep stands: done / error / pending cells vs the spec."""
    from repro.fleet import sweep_status

    try:
        spec, results, extra = _load_fleet_spec(args)
        print(sweep_status(spec, results, extra))
    except (OSError, ValueError, argparse.ArgumentTypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_fleet_report(args: argparse.Namespace) -> int:
    """Aggregate a sweep's completed cells into tables."""
    from repro.fleet import SweepStore, render_report

    try:
        spec, results, _ = _load_fleet_spec(args)
        records = list(SweepStore(results).latest_done().values())
    except (OSError, ValueError, argparse.ArgumentTypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    records.sort(key=lambda r: r["index"])
    text = render_report(spec, records, metrics=args.metrics)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\nwrote report to {args.out}")
    return 0 if records else 1


def cmd_fleet_gate(args: argparse.Namespace) -> int:
    """Gate the current sweep against the bench's recorded trajectory.

    The sweep store's completed cells become the candidate entry; the
    baseline is every entry recorded for the spec's bench name in the
    perf history (``fleet run --record`` appends them).  Same median /
    tolerance policy as ``perf gate``.
    """
    from repro.fleet import SweepStore, sweep_entry
    from repro.obs.store import DEFAULT_TOLERANCE, gate

    try:
        spec, results, _ = _load_fleet_spec(args)
        records = list(SweepStore(results).latest_done().values())
    except (OSError, ValueError, argparse.ArgumentTypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not records:
        print(f"error: no completed cells in {results}; run the sweep first",
              file=sys.stderr)
        return 1
    records.sort(key=lambda r: r["index"])
    candidate = sweep_entry(spec, records)
    store = _history_store(args)
    try:
        baseline = store.load(spec.bench_name)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    try:
        report = gate(
            baseline + [candidate],
            bench=spec.bench_name,
            metric=args.metric,
            tolerance=tolerance,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"[{spec.bench_name}] candidate: current sweep store "
          f"({len(records)} cells), baseline: {len(baseline)} recorded runs")
    print(report.describe())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-an2`` argument parser."""
    from repro.core.batch import BATCH_SCHEDULERS
    from repro.network.topologies import TOPOLOGIES

    parser = argparse.ArgumentParser(
        prog="repro-an2",
        description="Experiments from 'High Speed Switch Scheduling for LANs' (ASPLOS 1992)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="AN2 headline hardware numbers").set_defaults(func=cmd_info)

    delay = sub.add_parser("delay", help="one scheduler/workload/load point")
    delay.add_argument("--scheduler", default="pim",
                       choices=["pim", "pim-inf", "islip", "lqf", "wavefront",
                                "qps", "maximum", "fifo", "output-queueing"])
    delay.add_argument("--workload", default="uniform",
                       choices=["uniform", "clientserver", "bursty", "periodic"])
    delay.add_argument("--load", type=float, default=0.9)
    delay.add_argument("--ports", type=int, default=16)
    delay.add_argument("--iterations", type=int, default=4)
    delay.add_argument("--slots", type=int, default=10_000)
    delay.add_argument("--warmup", type=int, default=1_000)
    delay.add_argument("--seed", type=int, default=0)
    delay.add_argument("--backend", default="object", choices=["object", "fastpath"],
                       help="object = per-cell CrossbarSwitch; fastpath = "
                            "count-based vectorized simulator (uniform workload; "
                            "pim/pim-inf/islip/lqf/wavefront/qps)")
    delay.add_argument("--trace", metavar="PATH", default=None,
                       help="write per-slot trace events to PATH as JSONL")
    delay.add_argument("--metrics", action="store_true",
                       help="collect and print a metrics registry summary")
    delay.add_argument("--trace-stride", type=_positive_int, default=1, metavar="N",
                       help="sample volume-heavy events (PIM anatomy, VOQ "
                            "snapshots) every N slots (default 1)")
    delay.add_argument("--profile", action="store_true",
                       help="time the run's phases (compile/arrivals/kernel/"
                            "update) and print the per-phase breakdown; with "
                            "--trace the profile also lands in the trace")
    delay.set_defaults(func=cmd_delay)

    sweep = sub.add_parser("sweep", help="Figure 3/4 style load sweep")
    sweep.add_argument("--workload", default="uniform",
                       choices=["uniform", "clientserver", "bursty"])
    sweep.add_argument("--loads", type=float, nargs="+",
                       default=[0.4, 0.6, 0.8, 0.9, 0.95])
    sweep.add_argument("--ports", type=int, default=16)
    sweep.add_argument("--iterations", type=int, default=4)
    sweep.add_argument("--slots", type=int, default=10_000)
    sweep.add_argument("--warmup", type=int, default=1_000)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.set_defaults(func=cmd_sweep)

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    table1.add_argument("--patterns", type=int, default=5_000)
    table1.add_argument("--ports", type=int, default=16)
    table1.add_argument("--seed", type=int, default=0)
    table1.set_defaults(func=cmd_table1)

    cbr = sub.add_parser("cbr-bounds", help="Appendix B latency/buffer bounds")
    cbr.add_argument("--hops", type=int, default=4)
    cbr.add_argument("--frame", type=int, default=1000)
    cbr.add_argument("--tolerance", type=float, default=1e-4)
    cbr.add_argument("--link-latency", type=float, default=10.0)
    cbr.add_argument("--cells", type=int, default=500)
    cbr.add_argument("--seed", type=int, default=0)
    cbr.set_defaults(func=cmd_cbr_bounds)

    fairness = sub.add_parser("fairness", help="Figure 8 and the statistical fix")
    fairness.add_argument("--slots", type=int, default=20_000)
    fairness.add_argument("--seed", type=int, default=0)
    fairness.set_defaults(func=cmd_fairness)

    cbr_run = sub.add_parser(
        "cbr",
        help="integrated CBR+VBR switch (Section 4) on a random feasible "
             "reservation table, object or vectorized fastpath backend",
    )
    cbr_run.add_argument("--ports", type=int, default=16)
    cbr_run.add_argument("--frame", type=int, default=50,
                         help="frame length F in slots (default 50)")
    cbr_run.add_argument("--utilization", type=float, default=0.5,
                         help="fraction of frame capacity reserved for CBR "
                              "(default 0.5)")
    cbr_run.add_argument("--vbr-load", type=float, default=0.6,
                         help="Bernoulli VBR load riding on top (default 0.6)")
    cbr_run.add_argument("--slots", type=int, default=10_000)
    cbr_run.add_argument("--warmup", type=int, default=1_000)
    cbr_run.add_argument("--seed", type=int, default=0)
    cbr_run.add_argument("--backend", default="object",
                         choices=["object", "fastpath"],
                         help="object = per-cell IntegratedSwitch; fastpath = "
                              "count-based vectorized simulator")
    cbr_run.add_argument("--replicas", type=_positive_int, default=1,
                         help="independent replicas (fastpath only, default 1)")
    cbr_run.add_argument("--scheduler", default="pim",
                         choices=["pim", "islip", "lqf", "wavefront", "qps"],
                         help="VBR matching kernel (fastpath only, default pim)")
    cbr_run.add_argument("--trace", metavar="PATH", default=None,
                         help="write per-slot trace events to PATH as JSONL")
    cbr_run.add_argument("--metrics", action="store_true",
                         help="collect and print a metrics registry summary")
    cbr_run.add_argument("--trace-stride", type=_positive_int, default=1,
                         metavar="N",
                         help="sample volume-heavy events every N slots")
    cbr_run.set_defaults(func=cmd_cbr)

    stat = sub.add_parser(
        "statistical",
        help="statistically-matched switch (Section 5) on a random feasible "
             "allocation matrix, object or vectorized fastpath backend",
    )
    stat.add_argument("--ports", type=int, default=16)
    stat.add_argument("--units", type=_positive_int, default=16,
                      help="allocation granularity X (default 16)")
    stat.add_argument("--utilization", type=float, default=0.75,
                      help="fraction of the X units reserved per link "
                           "(default 0.75)")
    stat.add_argument("--load", type=float, default=0.8,
                      help="Bernoulli offered load (default 0.8)")
    stat.add_argument("--rounds", type=_positive_int, default=2,
                      help="matching rounds per slot (default 2)")
    stat.add_argument("--no-fill", dest="fill", action="store_false",
                      help="disable the Section 5.2 PIM fill phase")
    stat.add_argument("--slots", type=int, default=10_000)
    stat.add_argument("--warmup", type=int, default=1_000)
    stat.add_argument("--seed", type=int, default=0)
    stat.add_argument("--backend", default="object",
                      choices=["object", "fastpath"],
                      help="object = per-cell CrossbarSwitch; fastpath = "
                           "count-based vectorized simulator")
    stat.add_argument("--replicas", type=_positive_int, default=1,
                      help="independent replicas (fastpath only, default 1)")
    stat.add_argument("--trace", metavar="PATH", default=None,
                      help="write per-slot trace events to PATH as JSONL")
    stat.add_argument("--metrics", action="store_true",
                      help="collect and print a metrics registry summary")
    stat.add_argument("--trace-stride", type=_positive_int, default=1,
                      metavar="N",
                      help="sample volume-heavy events every N slots")
    stat.set_defaults(func=cmd_statistical)

    network = sub.add_parser(
        "network",
        help="multi-switch fabric with routed host-to-host flows, object "
             "or vectorized fastpath backend",
    )
    network.add_argument("--topology", default="parking_lot",
                         choices=list(TOPOLOGIES),
                         help="bundled topology shape (default parking_lot)")
    network.add_argument("--size", type=_positive_int, default=3,
                         help="shape's natural scale knob: switches per chain, "
                              "pods per fat tree, rows per mesh (default 3)")
    network.add_argument("--latency", type=_positive_int, default=1,
                         help="link latency in slots (default 1)")
    network.add_argument("--flows", type=_positive_int, default=4,
                         help="random host-to-host flows to route (default 4)")
    network.add_argument("--slots", type=int, default=2_000)
    network.add_argument("--warmup", type=int, default=200)
    network.add_argument("--seed", type=int, default=0)
    network.add_argument("--buffer-limit", type=int, default=0,
                         help="per-output buffer credit limit in cells "
                              "(0 = unlimited, default)")
    network.add_argument("--backend", default="object",
                         choices=["object", "fastpath"],
                         help="object = per-cell NetworkSimulator; fastpath = "
                              "batched whole-fabric vectorized simulator")
    network.add_argument("--replicas", type=_positive_int, default=1,
                         help="independent replicas (fastpath only, default 1)")
    network.add_argument("--scheduler", default="pim",
                         choices=["pim", "islip", "lqf", "wavefront", "qps"],
                         help="per-switch matching kernel (fastpath only, "
                              "default pim)")
    network.set_defaults(func=cmd_network)

    study = sub.add_parser(
        "sched-study",
        help="cross-scheduler delay-vs-load study on the fast path, with "
             "the maximal-matching delay bound checked where it applies",
    )
    study.add_argument("--ports", type=int, default=16)
    study.add_argument("--loads", type=float, nargs="+",
                       default=[0.3, 0.45, 0.6, 0.75, 0.9])
    study.add_argument("--slots", type=int, default=2_000)
    study.add_argument("--replicas", type=_positive_int, default=8)
    study.add_argument("--iterations", type=_positive_int, default=4,
                       help="PIM/iSLIP iterations and QPS rounds (default 4)")
    study.add_argument("--seed", type=int, default=0)
    study.add_argument("--schedulers", nargs="+", default=list(BATCH_SCHEDULERS),
                       choices=list(BATCH_SCHEDULERS),
                       help="kernels to sweep (default: the whole registry)")
    study.add_argument("--record", action="store_true",
                       help="append the table to the perf history store "
                            "(benchmarks/perf/history/sched_study.jsonl)")
    study.set_defaults(func=cmd_sched_study)

    scenario = sub.add_parser(
        "scenario",
        help="named flow-level workload scenarios with per-flow FCT stats "
             "(repro.traffic.scenarios)",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)

    slist = scenario_sub.add_parser("list", help="the scenario registry")
    slist.set_defaults(func=cmd_scenario_list)

    srun = scenario_sub.add_parser(
        "run",
        help="run one named scenario on either backend (defaults: the "
             "scenario's own geometry), reporting per-flow FCT stats",
    )
    srun.add_argument("name", nargs="?", default=None,
                      help="scenario name (see 'scenario list'); omit "
                           "with --trace")
    srun.add_argument("--trace", metavar="PATH", default=None,
                      help="replay a recorded trace instead of a named "
                           "scenario: .json (TraceTraffic.save) or "
                           "rotorsim-style .csv (slot,input,output rows; "
                           "needs --ports)")
    srun.add_argument("--backend", default="object",
                      choices=["object", "fastpath"],
                      help="object = per-cell CrossbarSwitch; fastpath = "
                           "count-based vectorized simulator with a "
                           "flow-exact VOQ shadow (default object)")
    srun.add_argument("--scheduler", default="islip",
                      choices=list(BATCH_SCHEDULERS),
                      help="matching kernel (default islip)")
    srun.add_argument("--replicas", type=_positive_int, default=1,
                      help="independent replicas (fastpath only, default 1)")
    srun.add_argument("--slots", type=int, default=None,
                      help="arrival-carrying slots (default: the scenario's)")
    srun.add_argument("--warmup", type=int, default=None,
                      help="warmup slots (default: the scenario's)")
    srun.add_argument("--drain", type=int, default=None,
                      help="extra arrival-free slots to drain flow tails "
                           "(default max(600, 2*slots))")
    srun.add_argument("--iterations", type=_positive_int, default=4,
                      help="PIM/iSLIP iterations and QPS rounds (default 4)")
    srun.add_argument("--seed", type=int, default=0)
    srun.add_argument("--ports", type=int, default=None,
                      help="override the scenario's port count")
    srun.add_argument("--load", type=float, default=None,
                      help="override the scenario's offered load")
    srun.add_argument("--parity", action="store_true",
                      help="run BOTH backends seed-matched and check exact "
                           "agreement (scenario_parity), printing both FCT "
                           "rows")
    srun.set_defaults(func=cmd_scenario_run)

    ssmoke = scenario_sub.add_parser(
        "smoke",
        help="one small scenario per batched kernel, object vs fastpath "
             "with exact parity; prints the combined FCT table",
    )
    ssmoke.add_argument("--slots", type=int, default=250,
                        help="arrival slots per run (default 250)")
    ssmoke.add_argument("--warmup", type=int, default=0,
                        help="warmup slots (default 0, keeps parity exact)")
    ssmoke.add_argument("--seed", type=int, default=0)
    ssmoke.add_argument("--out", metavar="PATH", default=None,
                        help="also write the FCT table to PATH (CI artifact)")
    ssmoke.set_defaults(func=cmd_scenario_smoke)

    check = sub.add_parser(
        "check",
        help="randomized invariant & differential sweep across schedulers "
             "and backends (repro.check)",
    )
    check.add_argument("--suite", default="switch",
                       choices=["switch", "cbr", "churn", "statistical",
                                "network", "scenario", "all"],
                       help="switch = scheduler invariants + PIM parity; "
                            "cbr = integrated CBR+VBR object-vs-fastpath "
                            "parity; churn = Slepian-Duguid add/remove "
                            "consistency; statistical = slot-exact "
                            "statistical-matching object-vs-fastpath parity; "
                            "network = slot-exact whole-fabric "
                            "object-vs-fastpath parity; scenario = named "
                            "flow-level scenario parity with FCT samples "
                            "(default switch)")
    check.add_argument("--seeds", type=_positive_int, default=25,
                       help="number of random cases to sweep (default 25)")
    check.add_argument("--budget", type=_budget_seconds, default=None,
                       metavar="SECONDS",
                       help="wall-clock budget, e.g. 60, 60s, or 2m "
                            "(default: unbounded)")
    check.add_argument("--seed", type=int, default=0,
                       help="base seed; case i uses seed base+i (default 0)")
    check.add_argument("--out", metavar="DIR", default=None,
                       help="write shrunk failing cases to DIR as JSON "
                            "reproducers")
    check.set_defaults(func=cmd_check)

    trace = sub.add_parser("trace", help="inspect trace files written with --trace")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize", help="totals, PIM anatomy, and backlog curve of a trace"
    )
    summarize.add_argument("path", help="JSONL trace file")
    summarize.add_argument("--plot", action="store_true",
                           help="render ASCII charts of the anatomy and backlog")
    summarize.add_argument("--csv", metavar="PATH", default=None,
                           help="also write a per-slot CSV summary to PATH")
    summarize.add_argument("--format", default="text", choices=["text", "json"],
                           help="text = human-readable rendering (default); "
                                "json = the same summary as one JSON object")
    summarize.set_defaults(func=cmd_trace_summarize)

    perf = sub.add_parser(
        "perf",
        help="phase profiles, run manifests, and the perf-history store "
             "(repro.obs.perf / repro.obs.store)",
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    report = perf_sub.add_parser(
        "report",
        help="per-phase wall-time breakdown: profile a run now, or render "
             "the breakdown recorded in a history entry",
    )
    report.add_argument("--backend", default="fastpath",
                        choices=["fastpath", "cbr", "statistical", "network",
                                 "object", "parity"],
                        help="which simulator to profile (default fastpath)")
    report.add_argument("--ports", type=int, default=16)
    report.add_argument("--load", type=float, default=0.8)
    report.add_argument("--slots", type=int, default=2_000)
    report.add_argument("--warmup", type=int, default=200)
    report.add_argument("--replicas", type=_positive_int, default=8,
                        help="independent replicas (batch backends, default 8)")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--from-history", metavar="REF", default=None,
                        help="render a recorded entry instead of running: a "
                             "run id (or unique prefix), an integer index, "
                             "'latest', or 'prev'")
    report.add_argument("--bench", default="fastpath",
                        help="history bench name for --from-history "
                             "(default fastpath)")
    report.add_argument("--history", metavar="DIR", default=None,
                        help="history root (default benchmarks/perf/history)")
    report.set_defaults(func=cmd_perf_report)

    plist = perf_sub.add_parser("list", help="recorded history entries per bench")
    plist.add_argument("--bench", default=None,
                       help="one bench only (default: all recorded benches)")
    plist.add_argument("--history", metavar="DIR", default=None,
                       help="history root (default benchmarks/perf/history)")
    plist.set_defaults(func=cmd_perf_list)

    compare = perf_sub.add_parser(
        "compare", help="config-by-config diff of two history entries"
    )
    compare.add_argument("run_a", help="baseline entry: run id (or prefix), "
                                       "index, 'latest', or 'prev'")
    compare.add_argument("run_b", help="candidate entry, same references")
    compare.add_argument("--bench", default="fastpath",
                         help="history bench name (default fastpath)")
    compare.add_argument("--metric", default="slots_per_sec",
                         help="result field to diff (default slots_per_sec)")
    compare.add_argument("--history", metavar="DIR", default=None,
                         help="history root (default benchmarks/perf/history)")
    compare.set_defaults(func=cmd_perf_compare)

    pgate = perf_sub.add_parser(
        "gate",
        help="regression gate: newest entry vs the recorded trajectory "
             "(median of earlier runs, per matching config)",
    )
    pgate.add_argument("--bench", default=None,
                       help="one bench only (default: gate every recorded bench)")
    pgate.add_argument("--metric", default="speedup_vs_object",
                       help="result field to gate on (default "
                            "speedup_vs_object: machine-relative, so a "
                            "history recorded elsewhere stays meaningful)")
    pgate.add_argument("--tolerance", type=float, default=None,
                       help="allowed fractional drop below the baseline "
                            "median (default 0.4)")
    pgate.add_argument("--history", metavar="DIR", default=None,
                       help="history root (default benchmarks/perf/history)")
    pgate.set_defaults(func=cmd_perf_gate)

    fleet = sub.add_parser(
        "fleet",
        help="declarative sweep orchestration: run a spec file's grid "
             "across a worker pool with a crash-safe resumable results "
             "store (repro.fleet)",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    def _fleet_common(p):
        p.add_argument("spec", help="sweep spec file (.toml on Python >= "
                                    "3.11, or .json)")
        p.add_argument("--results", metavar="PATH", default=None,
                       help="sweep results store (default "
                            "fleet-results/<name>.jsonl)")
        p.add_argument("--set", metavar="KEY=VALUE", action="append",
                       default=None,
                       help="layer a parameter under the spec's defaults "
                            "(repeatable); changed parameters invalidate "
                            "completed cells, which then rerun")

    frun = fleet_sub.add_parser(
        "run",
        help="run (or resume) the sweep; completed cells are skipped, "
             "each worker appends its results crash-safely",
    )
    _fleet_common(frun)
    frun.add_argument("--pool", type=_positive_int, default=1,
                      help="worker processes (default 1; cell results are "
                           "pool-size-independent)")
    frun.add_argument("--record", action="store_true",
                      help="append the aggregated sweep to the perf history "
                           "under the spec's bench name")
    frun.add_argument("--history", metavar="DIR", default=None,
                      help="history root for --record "
                           "(default benchmarks/perf/history)")
    frun.add_argument("--snapshot", metavar="PATH", default=None,
                      help="also write a human-facing JSON snapshot "
                           "(with --record)")
    frun.set_defaults(func=cmd_fleet_run)

    fstatus = fleet_sub.add_parser(
        "status", help="done/error/pending cells of the sweep vs its spec"
    )
    _fleet_common(fstatus)
    fstatus.set_defaults(func=cmd_fleet_status)

    freport = fleet_sub.add_parser(
        "report",
        help="aggregate completed cells (median across repeats) into "
             "delay/FCT/speedup tables",
    )
    _fleet_common(freport)
    freport.add_argument("--metrics", nargs="+", default=None,
                         help="metric columns (default: the kind's standard "
                              "set plus any timing fields present)")
    freport.add_argument("--out", metavar="PATH", default=None,
                         help="also write the report to PATH (CI artifact)")
    freport.set_defaults(func=cmd_fleet_report)

    fgate = fleet_sub.add_parser(
        "gate",
        help="regression gate: the current sweep store vs the trajectory "
             "recorded for the spec's bench (same policy as 'perf gate')",
    )
    _fleet_common(fgate)
    fgate.add_argument("--metric", default="speedup_vs_object",
                       help="result field to gate on (default "
                            "speedup_vs_object; use a deterministic metric "
                            "like throughput for machine-independent gates)")
    fgate.add_argument("--tolerance", type=float, default=None,
                       help="allowed fractional drop below the baseline "
                            "median (default 0.4)")
    fgate.add_argument("--history", metavar="DIR", default=None,
                       help="history root (default benchmarks/perf/history)")
    fgate.set_defaults(func=cmd_fleet_gate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Console-script entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
