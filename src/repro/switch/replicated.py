"""Lossy k-replicated output-buffered switch (Section 2.4's alternative).

"It is more common for switches to be built with some small k chosen
as the replication factor.  If more than k cells arrive during a slot
for a given output, not all of them can be forwarded immediately.
Typically, the excess cells are simply dropped.  While studies have
shown that few cells are dropped with a uniform workload, local area
network traffic is rarely uniform ... a common pattern is
client-server communication, where a large fraction of incoming cells
tend to be destined for the same output port."

This is the Knockout/Sunshine-style design the AN2 argues against.
:class:`ReplicatedOutputSwitch` delivers up to k cells per output per
slot and drops the excess (optionally shunting up to r of them into a
re-circulating queue that competes with fresh arrivals next slot, as
in Starlite/Sunshine).  The loss-rate bench contrasts uniform vs
client-server drop rates -- the paper's argument for lossless
random-access input buffering.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.stats import DelayStats, ThroughputCounter
from repro.switch.buffers import OutputQueue
from repro.switch.cell import Cell
from repro.switch.results import SwitchResult

__all__ = ["ReplicatedOutputSwitch"]


class ReplicatedOutputSwitch:
    """Output-buffered switch with fabric replication factor k.

    Parameters
    ----------
    ports:
        Switch size N.
    replication:
        k, cells deliverable to one output per slot.  k = N is perfect
        output queueing; small k drops cells under hot-spot traffic.
    recirculation_ports:
        Capacity r of the re-circulating queue (0 disables it).  Up to
        r cells that lost the knockout are fed back and contend again
        next slot alongside fresh arrivals; cells losing with a full
        re-circulation queue are dropped.
    seed:
        Unused at present (knockout losers are chosen by arrival
        order, as in the hardware's fixed concentrator tree); kept for
        interface symmetry with the other switches.
    """

    def __init__(
        self,
        ports: int,
        replication: int,
        recirculation_ports: int = 0,
        seed: Optional[int] = None,
    ):
        if ports <= 0:
            raise ValueError(f"ports must be positive, got {ports}")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if recirculation_ports < 0:
            raise ValueError("recirculation_ports must be non-negative")
        self.ports = ports
        self.replication = replication
        self.recirculation_ports = recirculation_ports
        self.queues = [OutputQueue() for _ in range(ports)]
        self._recirculating: List[Cell] = []
        self.dropped_cells = 0

    def step(self, slot: int, arrivals: Sequence[Tuple[int, Cell]]) -> List[Cell]:
        """Advance one slot; returns departures (drops are counted)."""
        contenders: Dict[int, List[Cell]] = {}
        # Re-circulated cells contend first (they are older).
        for cell in self._recirculating:
            contenders.setdefault(cell.output, []).append(cell)
        self._recirculating = []
        for _, cell in arrivals:
            if not 0 <= cell.output < self.ports:
                raise ValueError(f"cell output {cell.output} out of range")
            cell.arrival_slot = slot
            contenders.setdefault(cell.output, []).append(cell)

        for output, cells in contenders.items():
            for cell in cells[: self.replication]:
                self.queues[output].enqueue(cell)
            for cell in cells[self.replication :]:
                if len(self._recirculating) < self.recirculation_ports:
                    self._recirculating.append(cell)
                else:
                    self.dropped_cells += 1

        departures = []
        for queue in self.queues:
            cell = queue.depart()
            if cell is not None:
                departures.append(cell)
        return departures

    def backlog(self) -> int:
        """Cells in output queues plus the re-circulating queue."""
        return sum(len(q) for q in self.queues) + len(self._recirculating)

    def run(self, traffic, slots: int, warmup: int = 0) -> SwitchResult:
        """Simulate; ``result.dropped`` counts knockout losses."""
        if traffic.ports != self.ports:
            raise ValueError(
                f"traffic is for {traffic.ports} ports, switch has {self.ports}"
            )
        delay = DelayStats(warmup=warmup)
        counter = ThroughputCounter(warmup=warmup)
        dropped_before = self.dropped_cells
        for slot in range(slots):
            arrivals = traffic.arrivals(slot)
            counter.record_arrival(slot, len(arrivals))
            departures = self.step(slot, arrivals)
            counter.record_departure(slot, len(departures))
            for cell in departures:
                delay.record(cell.arrival_slot, slot)
        return SwitchResult(
            delay=delay,
            counter=counter,
            ports=self.ports,
            slots=slots,
            backlog=self.backlog(),
            dropped=self.dropped_cells - dropped_before,
        )
