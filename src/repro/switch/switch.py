"""Slot-clocked single-switch models.

:class:`CrossbarSwitch` is the AN2 model: random-access (per-flow VOQ)
input buffers, a pluggable matching scheduler (PIM, iSLIP, wavefront,
maximum matching, statistical matching), and a non-blocking fabric.  It
never drops a cell and never reorders a flow.

:class:`FIFOSwitch` is the Section 2.4 baseline: one FIFO per input,
only head cells contend, head-of-line blocking and all.

Timing convention (uniform across all models so the Figure 3/4/5 curves
are comparable): arrivals land at the start of a slot, the scheduler
then computes the matching from the post-arrival queue state, matched
cells cross the fabric and depart at the end of the same slot.  A cell
that arrives and is immediately scheduled thus has queueing delay 0.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.core.matching import Matching
from repro.obs.perf import NULL_PHASE_TIMER
from repro.sim.stats import DelayStats, FlowStats, ThroughputCounter
from repro.switch.buffers import FIFOInputBuffer, OutputQueue, VOQBuffer
from repro.switch.cell import Cell
from repro.switch.fabric import CrossbarFabric, Fabric
from repro.switch.results import SwitchResult

__all__ = [
    "MatchScheduler",
    "TrafficSource",
    "reset_traffic",
    "CrossbarSwitch",
    "FIFOSwitch",
    "SwitchResult",
]


@runtime_checkable
class MatchScheduler(Protocol):
    """Anything that maps a request matrix to a matching, once per slot."""

    def schedule(self, requests: np.ndarray) -> Matching:
        """Return the matching for this slot."""

    def reset(self) -> None:
        """Clear cross-slot state before a fresh run."""


@runtime_checkable
class TrafficSource(Protocol):
    """A single-switch arrival process.

    Sources that carry cross-slot state (RNG streams, sequence numbers,
    burst/on-off state) also expose ``reset()`` restoring the
    as-constructed state; run entry points call it (when present) so a
    rerun with the same source replays the identical arrival trace --
    the same rerun contract schedulers honour.  Flow-aware sources
    additionally expose ``flow_records()`` (see
    :mod:`repro.traffic.flows`) which switches use to report per-flow
    completion-time statistics.
    """

    ports: int

    def arrivals(self, slot: int) -> List[Tuple[int, Cell]]:
        """Cells arriving in ``slot`` as (input_port, cell) pairs."""


def reset_traffic(traffic) -> None:
    """Rewind a traffic source if it supports the rerun contract."""
    reset = getattr(traffic, "reset", None)
    if callable(reset):
        reset()


class _OrderChecker:
    """Asserts per-flow FIFO order at departure (Section 3.1 guarantee)."""

    def __init__(self) -> None:
        self._last_seqno: Dict[int, int] = {}
        self.violations = 0

    def observe(self, cell: Cell) -> None:
        last = self._last_seqno.get(cell.flow_id)
        if last is not None and cell.seqno <= last:
            self.violations += 1
        self._last_seqno[cell.flow_id] = cell.seqno


class CrossbarSwitch:
    """Input-buffered switch with random-access buffers (the AN2 model).

    Parameters
    ----------
    ports:
        Switch size N.
    scheduler:
        A :class:`MatchScheduler`; typically
        :class:`repro.core.pim.PIMScheduler`.
    fabric:
        Data path; defaults to a crossbar.  Any non-blocking
        :class:`repro.switch.fabric.Fabric` works (Section 2.2).
    speedup:
        Cells the fabric may deliver per output per slot (Section 2.4's
        k-replication).  With ``speedup > 1`` cells pass through output
        queues and depart at one per slot; the scheduler must be
        configured with a matching ``output_capacity``.

    Examples
    --------
    >>> from repro.core.pim import PIMScheduler
    >>> from repro.traffic.uniform import UniformTraffic
    >>> switch = CrossbarSwitch(4, PIMScheduler(seed=0))
    >>> result = switch.run(UniformTraffic(4, load=0.5, seed=1), slots=500)
    >>> result.dropped
    0
    """

    def __init__(
        self,
        ports: int,
        scheduler: MatchScheduler,
        fabric: Optional[Fabric] = None,
        speedup: int = 1,
    ):
        if ports <= 0:
            raise ValueError(f"ports must be positive, got {ports}")
        if speedup < 1:
            raise ValueError(f"speedup must be >= 1, got {speedup}")
        self.ports = ports
        self.scheduler = scheduler
        self.fabric = fabric if fabric is not None else CrossbarFabric(ports)
        if self.fabric.ports != ports:
            raise ValueError("fabric size does not match switch size")
        self.speedup = speedup
        self.buffers = [VOQBuffer(ports) for _ in range(ports)]
        self.output_queues = [OutputQueue() for _ in range(ports)] if speedup > 1 else None

    def request_matrix(self) -> np.ndarray:
        """Boolean N x N occupancy snapshot the scheduler sees."""
        matrix = np.zeros((self.ports, self.ports), dtype=bool)
        for i, buffer in enumerate(self.buffers):
            matrix[i] = buffer.request_vector()
        return matrix

    def occupancy_matrix(self) -> np.ndarray:
        """Queued-cell counts per (input, output) VOQ.

        Supplied to schedulers that declare ``needs_occupancy`` (e.g.
        :class:`repro.core.lqf.LQFScheduler`); the AN2 schedulers use
        only the boolean request matrix.
        """
        matrix = np.zeros((self.ports, self.ports), dtype=np.int64)
        for i, buffer in enumerate(self.buffers):
            for j in range(self.ports):
                matrix[i, j] = buffer.occupancy_for(j)
        return matrix

    def step(
        self,
        slot: int,
        arrivals: Sequence[Tuple[int, Cell]],
        probe=None,
    ) -> List[Cell]:
        """Advance one slot; returns the cells that departed.

        Arrivals are enqueued first, so a cell can be scheduled in its
        arrival slot (delay 0).  With ``speedup == 1`` the fabric
        delivers straight onto the output links; with ``speedup > 1``
        delivered cells enter output queues and one per output departs.
        When a :class:`repro.obs.probe.Probe` is supplied, the slot
        emits a ``CrossbarTransfer`` event (cells crossing the fabric,
        which with ``speedup > 1`` can exceed the departures returned).
        """
        for input_port, cell in arrivals:
            if not 0 <= input_port < self.ports:
                raise ValueError(f"arrival at invalid input {input_port}")
            cell.arrival_slot = slot
            self.buffers[input_port].enqueue(cell)

        if getattr(self.scheduler, "needs_occupancy", False):
            matching = self.scheduler.schedule(
                self.request_matrix(), self.occupancy_matrix()
            )
        else:
            matching = self.scheduler.schedule(self.request_matrix())
        selected: List[Tuple[int, Cell]] = []
        for i, j in matching:
            # The scheduler may only match requested pairs; dequeue
            # raises if it matched an empty VOQ.
            selected.append((i, self.buffers[i].dequeue(j)))
        delivered = self.fabric.transfer(selected)
        if probe is not None:
            probe.transfer(len(selected))

        if self.output_queues is None:
            return [cells[0] for cells in delivered.values()]
        departures: List[Cell] = []
        for j, queue in enumerate(self.output_queues):
            for cell in delivered.get(j, []):
                queue.enqueue(cell)
            departed = queue.depart()
            if departed is not None:
                departures.append(departed)
        return departures

    def backlog(self) -> int:
        """Cells currently buffered anywhere in the switch."""
        total = sum(len(b) for b in self.buffers)
        if self.output_queues is not None:
            total += sum(len(q) for q in self.output_queues)
        return total

    def run(
        self,
        traffic: TrafficSource,
        slots: int,
        warmup: int = 0,
        probe=None,
        phase_timer=None,
    ) -> SwitchResult:
        """Simulate ``slots`` slots of ``traffic`` and collect statistics.

        Observations from cells arriving before ``warmup`` are
        discarded, per the paper's transient elimination.  Raises
        ``ValueError`` if the traffic source's port count mismatches.

        Parameters
        ----------
        probe:
            Optional :class:`repro.obs.probe.Probe`.  When enabled,
            every slot emits ``SlotBegin`` (offered arrivals +
            pre-arrival backlog), ``CrossbarTransfer``, and per-cell
            ``CellDeparture`` events; slots the probe samples
            additionally emit the PIM per-iteration anatomy (when the
            scheduler supports ``attach_probe``) and a ``VoqSnapshot``.
            The default disabled probe adds one attribute check per
            slot -- the tier-1 overhead test holds it under 5%.
        phase_timer:
            Optional :class:`repro.obs.perf.PhaseTimer`; profiles the
            run under the shared taxonomy (``run`` root with
            ``run/arrivals``, ``run/kernel`` the per-slot step, and
            ``run/update`` departure accounting).  The disabled default
            costs one attribute read per span.
        """
        if traffic.ports != self.ports:
            raise ValueError(
                f"traffic is for {traffic.ports} ports, switch has {self.ports}"
            )
        timer = (
            phase_timer
            if phase_timer is not None and phase_timer.enabled
            else NULL_PHASE_TIMER
        )
        with timer.phase("run"):
            self.scheduler.reset()
            reset_traffic(traffic)
            # The other half of the rerun contract: a run starts from an
            # empty switch, so rerunning the same (switch, traffic) pair
            # replays the same trajectory instead of draining leftovers.
            self.buffers = [VOQBuffer(self.ports) for _ in range(self.ports)]
            if self.output_queues is not None:
                self.output_queues = [OutputQueue() for _ in range(self.ports)]
            traced = probe is not None and probe.enabled
            if traced and hasattr(self.scheduler, "attach_probe"):
                self.scheduler.attach_probe(probe)
            delay = DelayStats(warmup=warmup)
            counter = ThroughputCounter(warmup=warmup)
            connection: Dict[Tuple[int, int], int] = {}
            order = _OrderChecker()
            input_of_cell: Dict[int, int] = {}
            arrivals_by_input = [0] * self.ports
            departures_by_output = [0] * self.ports
            flow_records = getattr(traffic, "flow_records", None)
            track_fct = callable(flow_records)
            departed_of_flow: Dict[int, int] = {}
            last_departure_slot: Dict[int, int] = {}

            for slot in range(slots):
                with timer.phase("arrivals"):
                    arrivals = traffic.arrivals(slot)
                counter.record_arrival(slot, len(arrivals))
                for input_port, cell in arrivals:
                    input_of_cell[cell.uid] = input_port
                    if slot >= warmup:
                        arrivals_by_input[input_port] += 1
                if traced:
                    probe.begin_slot(
                        slot, arrivals=len(arrivals), backlog=self.backlog()
                    )
                with timer.phase("kernel"):
                    if traced:
                        departures = self.step(slot, arrivals, probe=probe)
                    else:
                        departures = self.step(slot, arrivals)
                with timer.phase("update"):
                    counter.record_departure(slot, len(departures))
                    for cell in departures:
                        delay.record(cell.arrival_slot, slot)
                        order.observe(cell)
                        if track_fct:
                            fid = cell.flow_id
                            departed_of_flow[fid] = departed_of_flow.get(fid, 0) + 1
                            last_departure_slot[fid] = slot
                        if slot >= warmup:
                            departures_by_output[cell.output] += 1
                        src = input_of_cell.pop(cell.uid, None)
                        if traced:
                            probe.departure(
                                src if src is not None else -1,
                                cell.output,
                                slot - cell.arrival_slot,
                                flow_id=cell.flow_id,
                            )
                        if src is not None and cell.arrival_slot >= warmup:
                            key = (src, cell.output)
                            connection[key] = connection.get(key, 0) + 1
                if traced and probe.sampling:
                    probe.voq_snapshot(self.occupancy_matrix(), replica=0)

        if traced and hasattr(self.scheduler, "attach_probe"):
            self.scheduler.attach_probe(None)
        if traced and timer.enabled:
            probe.phase_profile(timer, slots=slots)
        if order.violations:
            raise AssertionError(
                f"{order.violations} per-flow order violations -- switch bug"
            )
        fct = None
        if track_fct:
            fct = FlowStats(warmup=warmup)
            for fid, record in flow_records().items():
                if departed_of_flow.get(fid, 0) >= record.size:
                    fct.record(record.size, record.start_slot, last_departure_slot[fid])
                else:
                    fct.incomplete += 1
        return SwitchResult(
            delay=delay,
            counter=counter,
            ports=self.ports,
            slots=slots,
            connection_cells=connection,
            backlog=self.backlog(),
            dropped=0,
            arrivals_by_input=tuple(arrivals_by_input),
            departures_by_output=tuple(departures_by_output),
            fct=fct,
        )


class FIFOSwitch:
    """FIFO-input-buffered switch baseline (Section 2.4).

    One FIFO per input; only head cells contend for outputs.  Output
    contention is resolved by the supplied
    :class:`repro.core.fifo.FIFOScheduler` (random or rotating
    priority).  Exhibits head-of-line blocking (Karol's 58.6% uniform
    saturation) and stationary blocking under periodic traffic
    (Figure 1).
    """

    def __init__(self, ports: int, scheduler: "HeadArbiter"):
        if ports <= 0:
            raise ValueError(f"ports must be positive, got {ports}")
        self.ports = ports
        self.scheduler = scheduler
        self.buffers = [FIFOInputBuffer() for _ in range(ports)]
        self.fabric = CrossbarFabric(ports)

    def step(self, slot: int, arrivals: Sequence[Tuple[int, Cell]]) -> List[Cell]:
        """Advance one slot; returns departed cells."""
        for input_port, cell in arrivals:
            cell.arrival_slot = slot
            self.buffers[input_port].enqueue(cell)
        heads = np.full(self.ports, -1, dtype=np.int64)
        for i, buffer in enumerate(self.buffers):
            head = buffer.head()
            if head is not None:
                heads[i] = head.output
        matching = self.scheduler.arbitrate(heads)
        selected = [(i, self.buffers[i].pop()) for i, _ in matching]
        delivered = self.fabric.transfer(selected)
        return [cells[0] for cells in delivered.values()]

    def backlog(self) -> int:
        """Cells currently buffered at the inputs."""
        return sum(len(b) for b in self.buffers)

    def run(self, traffic: TrafficSource, slots: int, warmup: int = 0) -> SwitchResult:
        """Simulate and collect statistics; mirrors CrossbarSwitch.run."""
        if traffic.ports != self.ports:
            raise ValueError(
                f"traffic is for {traffic.ports} ports, switch has {self.ports}"
            )
        self.scheduler.reset()
        reset_traffic(traffic)
        self.buffers = [FIFOInputBuffer() for _ in range(self.ports)]
        delay = DelayStats(warmup=warmup)
        counter = ThroughputCounter(warmup=warmup)
        arrivals_by_input = [0] * self.ports
        departures_by_output = [0] * self.ports
        for slot in range(slots):
            arrivals = traffic.arrivals(slot)
            counter.record_arrival(slot, len(arrivals))
            if slot >= warmup:
                for input_port, _ in arrivals:
                    arrivals_by_input[input_port] += 1
            departures = self.step(slot, arrivals)
            counter.record_departure(slot, len(departures))
            for cell in departures:
                delay.record(cell.arrival_slot, slot)
                if slot >= warmup:
                    departures_by_output[cell.output] += 1
        return SwitchResult(
            delay=delay,
            counter=counter,
            ports=self.ports,
            slots=slots,
            backlog=self.backlog(),
            dropped=0,
            arrivals_by_input=tuple(arrivals_by_input),
            departures_by_output=tuple(departures_by_output),
        )


class HeadArbiter(Protocol):
    """Resolves output contention among FIFO head cells."""

    def arbitrate(self, head_destinations: np.ndarray) -> Matching:
        """Given each input's head-cell destination (-1 = empty), match."""

    def reset(self) -> None:
        """Clear cross-slot state."""
