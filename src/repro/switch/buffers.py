"""Input and output buffer organizations.

Section 2.4 of the paper surveys buffer organizations; the AN2 switch
uses *random access input buffers*: cells wait at the input, any queued
flow's head cell is eligible for transfer, and nothing is ever dropped.
Section 3.3 describes the concrete structure we implement in
:class:`VOQBuffer`:

- each flow has its own FIFO queue of buffered cells;
- a flow is *eligible* when it has at least one queued cell;
- a list of eligible flows is kept for each (input, output) pair;
- when a grant is won, one eligible flow is chosen **round-robin**
  and its head cell crosses the fabric.

This is what later literature calls *virtual output queueing* (VOQ),
with the twist that the per-output queue is a queue of flows, not of
cells -- which is exactly what makes per-flow FIFO order free of
head-of-line blocking ("since all cells from a flow are routed to the
same output, either none of the cells of a flow are blocked or all
are", Section 3.1).

:class:`FIFOInputBuffer` is the strawman of Section 2.4 (one FIFO per
input; only the head cell is eligible) and :class:`OutputQueue` backs
the perfect-output-queueing baseline.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

from repro.switch.cell import Cell

__all__ = ["VOQBuffer", "FIFOInputBuffer", "OutputQueue"]


class VOQBuffer:
    """Random-access input buffer for one input port.

    Cells are stored in per-flow FIFO queues; per-output eligible-flow
    lists are served round-robin (Section 3.3).

    Parameters
    ----------
    ports:
        Number of output ports (the width of the request vector).

    Invariants (exercised by the property tests):

    - a flow id appears in exactly one output's eligible list, and only
      while its queue is non-empty;
    - cells of one flow depart in arrival order;
    - ``len(buffer)`` equals the sum of all flow-queue lengths.
    """

    def __init__(self, ports: int):
        if ports <= 0:
            raise ValueError(f"ports must be positive, got {ports}")
        self.ports = ports
        self._flow_queues: Dict[int, Deque[Cell]] = {}
        # Round-robin list of eligible flow ids, one per output port.
        self._eligible: List[Deque[int]] = [deque() for _ in range(ports)]
        # Output each eligible flow is currently filed under (cells of a
        # flow always share an output at a given switch).
        self._flow_output: Dict[int, int] = {}
        self._total = 0

    def __len__(self) -> int:
        return self._total

    def enqueue(self, cell: Cell) -> None:
        """Buffer an arriving cell; its flow becomes eligible if it wasn't."""
        if not 0 <= cell.output < self.ports:
            raise ValueError(f"cell output {cell.output} out of range for {self.ports} ports")
        queue = self._flow_queues.get(cell.flow_id)
        if queue is None:
            queue = deque()
            self._flow_queues[cell.flow_id] = queue
        if queue and queue[0].output != cell.output:
            raise ValueError(
                f"flow {cell.flow_id} changed output {queue[0].output} -> {cell.output}; "
                "all cells of a flow must be routed to the same output"
            )
        if not queue:
            # Flow transitions empty -> non-empty: add to eligible list.
            self._eligible[cell.output].append(cell.flow_id)
            self._flow_output[cell.flow_id] = cell.output
        queue.append(cell)
        self._total += 1

    def has_cell_for(self, output: int) -> bool:
        """True when some flow toward ``output`` has a queued cell."""
        return bool(self._eligible[output])

    def request_vector(self) -> List[bool]:
        """Outputs this input would request in a PIM request phase."""
        return [bool(q) for q in self._eligible]

    def occupancy_for(self, output: int) -> int:
        """Total queued cells destined for ``output``."""
        return sum(len(self._flow_queues[f]) for f in self._eligible[output])

    def peek(self, output: int) -> Optional[Cell]:
        """Head cell of the flow next in round-robin order for ``output``."""
        if not self._eligible[output]:
            return None
        return self._flow_queues[self._eligible[output][0]][0]

    def dequeue(self, output: int) -> Cell:
        """Remove and return the next cell for ``output``.

        The flow is chosen round-robin among eligible flows for this
        (input, output) pair; the flow's head cell departs.  Raises
        ``IndexError`` when no cell is queued for ``output``.
        """
        eligible = self._eligible[output]
        if not eligible:
            raise IndexError(f"no eligible flow for output {output}")
        flow_id = eligible.popleft()
        queue = self._flow_queues[flow_id]
        cell = queue.popleft()
        if queue:
            # Still has cells: rotate to the back (round-robin service).
            eligible.append(flow_id)
        else:
            del self._flow_queues[flow_id]
            del self._flow_output[flow_id]
        self._total -= 1
        return cell

    def dequeue_flow(self, flow_id: int) -> Cell:
        """Remove and return the head cell of a *specific* flow.

        Used by the CBR path, where the frame schedule names the flow to
        serve in a reserved slot.  Keeps the eligible lists consistent.
        Raises ``KeyError`` if the flow has no queued cell.
        """
        queue = self._flow_queues.get(flow_id)
        if not queue:
            raise KeyError(f"flow {flow_id} has no queued cell")
        output = self._flow_output[flow_id]
        cell = queue.popleft()
        if not queue:
            self._eligible[output].remove(flow_id)
            del self._flow_queues[flow_id]
            del self._flow_output[flow_id]
        self._total -= 1
        return cell

    def has_flow(self, flow_id: int) -> bool:
        """True when the flow has at least one queued cell."""
        return flow_id in self._flow_queues

    def flow_occupancy(self, flow_id: int) -> int:
        """Queued cells for one flow (0 if none)."""
        queue = self._flow_queues.get(flow_id)
        return len(queue) if queue else 0

    def eligible_flows(self, output: int) -> List[int]:
        """Flow ids currently eligible toward ``output``, in service order."""
        return list(self._eligible[output])

    def iter_cells(self) -> Iterator[Cell]:
        """Iterate over all buffered cells (diagnostics/tests only)."""
        for queue in self._flow_queues.values():
            yield from queue


class FIFOInputBuffer:
    """Single FIFO queue per input: only the head cell is eligible.

    This is the baseline of Section 2.4, which suffers head-of-line
    blocking (Figure 1, Karol's 58% limit).
    """

    def __init__(self) -> None:
        self._queue: Deque[Cell] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def enqueue(self, cell: Cell) -> None:
        """Append an arriving cell."""
        self._queue.append(cell)

    def head(self) -> Optional[Cell]:
        """The only cell eligible for transmission (None when empty)."""
        return self._queue[0] if self._queue else None

    def pop(self) -> Cell:
        """Remove and return the head cell."""
        if not self._queue:
            raise IndexError("pop from empty FIFO input buffer")
        return self._queue.popleft()

    def head_window(self, k: int) -> List[Cell]:
        """First ``k`` queued cells (for windowed-FIFO variants, §2.4)."""
        if k <= 0:
            raise ValueError("window must be positive")
        return [self._queue[i] for i in range(min(k, len(self._queue)))]

    def pop_at(self, position: int) -> Cell:
        """Remove and return the cell at a queue position.

        Windowed-FIFO hardware (Section 2.4) can extract any of the
        first w cells; positions beyond the queue raise ``IndexError``.
        """
        if not 0 <= position < len(self._queue):
            raise IndexError(f"no cell at position {position}")
        cell = self._queue[position]
        del self._queue[position]
        return cell


class OutputQueue:
    """FIFO queue at an output port; one cell departs per slot.

    Backs the perfect-output-queueing baseline (Section 2.4), where the
    fabric is assumed able to deliver any number of simultaneous
    arrivals to the same output and cells then drain at link rate.
    """

    def __init__(self) -> None:
        self._queue: Deque[Cell] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def enqueue(self, cell: Cell) -> None:
        """Accept a cell delivered by the fabric."""
        self._queue.append(cell)

    def depart(self) -> Optional[Cell]:
        """Send one cell out the link (None when idle)."""
        return self._queue.popleft() if self._queue else None
