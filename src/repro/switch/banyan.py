"""Banyan (omega / shuffle-exchange) self-routing network.

Section 2.2: a banyan delivers each cell to its output "based solely on
the information in the cell header", but suffers *internal blocking* --
two cells bound for different outputs can collide at an internal 2x2
element.  The classic remedy is to present the cells sorted by
destination and concentrated (Batcher + shuffle), which makes the
banyan non-blocking.

We implement the omega variant: ``log2(N)`` stages, each preceded by a
perfect shuffle of the N lines; each 2x2 element routes by one
destination bit, most significant first.  :func:`route` simulates a
slot and reports both delivered and internally blocked cells, so the
blocking behaviour itself (not just the happy path) is observable --
that is what the Figure-free Section 2.2 discussion and our fabric
tests exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["BanyanNetwork", "BanyanResult", "perfect_shuffle"]


def perfect_shuffle(position: int, n_bits: int) -> int:
    """Rotate the ``n_bits``-bit position label left by one bit.

    The perfect shuffle wiring between stages: line ``b_{k-1}..b_1 b_0``
    moves to ``b_{k-2}..b_0 b_{k-1}``.
    """
    mask = (1 << n_bits) - 1
    return ((position << 1) | (position >> (n_bits - 1))) & mask


@dataclass(frozen=True)
class BanyanResult:
    """Outcome of routing one slot's cells through the banyan.

    ``delivered`` maps output port to the payload that reached it;
    ``blocked`` lists payloads dropped at internal collisions, with the
    stage at which each collision occurred.
    """

    delivered: Dict[int, object]
    blocked: Tuple[Tuple[object, int], ...]

    @property
    def blocking_occurred(self) -> bool:
        """True when any cell was lost to an internal collision."""
        return bool(self.blocked)


class BanyanNetwork:
    """An N x N omega network with internal-blocking simulation.

    Parameters
    ----------
    ports:
        Network size; must be a power of two.

    Collisions resolve in favour of the cell on the numerically lower
    line (deterministic, as in hardware where one element input wins).
    """

    def __init__(self, ports: int):
        if ports <= 1 or (ports & (ports - 1)) != 0:
            raise ValueError(f"banyan size must be a power of two >= 2, got {ports}")
        self.ports = ports
        self.n_bits = ports.bit_length() - 1

    @property
    def stages(self) -> int:
        """Number of 2x2-element stages: log2(N)."""
        return self.n_bits

    @property
    def element_count(self) -> int:
        """Total 2x2 switching elements: (N/2) log2(N)."""
        return (self.ports // 2) * self.n_bits

    def route(self, cells: Sequence[Tuple[int, int, object]]) -> BanyanResult:
        """Route one slot of cells.

        ``cells`` is a sequence of ``(input_line, destination, payload)``
        triples; input lines must be distinct.  Returns a
        :class:`BanyanResult` with delivered and blocked payloads.
        """
        lines: List[Optional[Tuple[int, object]]] = [None] * self.ports
        for input_line, destination, payload in cells:
            if not 0 <= input_line < self.ports:
                raise ValueError(f"input line {input_line} out of range")
            if not 0 <= destination < self.ports:
                raise ValueError(f"destination {destination} out of range")
            if lines[input_line] is not None:
                raise ValueError(f"two cells on input line {input_line}")
            lines[input_line] = (destination, payload)

        blocked: List[Tuple[object, int]] = []
        for stage in range(self.n_bits):
            # Perfect shuffle wiring into this stage.
            shuffled: List[Optional[Tuple[int, object]]] = [None] * self.ports
            for pos, occupant in enumerate(lines):
                if occupant is not None:
                    shuffled[perfect_shuffle(pos, self.n_bits)] = occupant
            # Each element e owns lines 2e and 2e+1; it routes by the
            # destination bit for this stage (MSB first).
            bit_shift = self.n_bits - 1 - stage
            next_lines: List[Optional[Tuple[int, object]]] = [None] * self.ports
            for element in range(self.ports // 2):
                upper = shuffled[2 * element]
                lower = shuffled[2 * element + 1]
                for occupant in (upper, lower):
                    if occupant is None:
                        continue
                    destination, payload = occupant
                    out_line = 2 * element + ((destination >> bit_shift) & 1)
                    if next_lines[out_line] is None:
                        next_lines[out_line] = occupant
                    else:
                        # Internal collision: the earlier (upper) cell
                        # already holds the element output; this one is
                        # blocked at this stage.
                        blocked.append((payload, stage))
            lines = next_lines

        delivered: Dict[int, object] = {}
        for pos, occupant in enumerate(lines):
            if occupant is not None:
                destination, payload = occupant
                if destination != pos:
                    raise AssertionError(
                        f"banyan routing bug: cell for {destination} emerged at {pos}"
                    )
                delivered[pos] = payload
        return BanyanResult(delivered, tuple(blocked))
