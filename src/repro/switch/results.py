"""Result records shared by the switch models.

Both the input-buffered switch models and the output-queued baseline
return a :class:`SwitchResult`, so the Figure 3/4/5 benches can sweep
algorithms uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.sim.stats import DelayStats, FlowStats, ThroughputCounter

__all__ = ["SwitchResult"]


@dataclass
class SwitchResult:
    """Outcome of a single-switch simulation run.

    Attributes
    ----------
    delay:
        Per-cell queueing delay statistics (post-warm-up), in slots.
    counter:
        Offered/carried cell accounting (post-warm-up).
    ports:
        Switch size N.
    slots:
        Total slots simulated (including warm-up).
    connection_cells:
        Carried cells per (input, output) connection, post-warm-up --
        feeds the Figure 8 fairness analysis.
    arrivals_by_input:
        Post-warm-up arriving cells per input port (empty tuple when
        the model does not extract per-port aggregates).
    departures_by_output:
        Post-warm-up departing cells per output port.  Together with
        ``arrivals_by_input`` these are the per-port counters the
        fast-path backend reports, so seed-for-seed parity can be
        checked port by port.
    backlog:
        Cells still buffered when the run ended; with a no-loss switch
        this plus carried equals offered over the whole run.
    dropped:
        Cells dropped (always 0 for the AN2-style switch; non-zero only
        for lossy baselines such as the k-replicated output switch with
        finite output speedup admission).
    fct:
        Per-flow completion-time statistics, populated only when the
        traffic source is flow-aware (exposes ``flow_records()``, see
        :mod:`repro.traffic.flows`); ``None`` for cell-level sources.
    """

    delay: DelayStats
    counter: ThroughputCounter
    ports: int
    slots: int
    connection_cells: Dict[Tuple[int, int], int] = field(default_factory=dict)
    backlog: int = 0
    dropped: int = 0
    arrivals_by_input: Tuple[int, ...] = ()
    departures_by_output: Tuple[int, ...] = ()
    fct: Optional[FlowStats] = None

    @property
    def mean_delay(self) -> float:
        """Mean queueing delay in cell slots."""
        return self.delay.mean

    @property
    def throughput(self) -> float:
        """Carried cells per slot per port (per-link utilization)."""
        return self.counter.carried_per_slot(self.ports)

    @property
    def offered(self) -> float:
        """Offered cells per slot per port."""
        return self.counter.offered_per_slot(self.ports)

    @property
    def aggregate_throughput(self) -> float:
        """Carried cells per slot across the whole switch."""
        return self.counter.carried_per_slot(1)

    def summary(self) -> str:
        """One-line human-readable summary."""
        text = (
            f"{self.ports}x{self.ports} switch, {self.slots} slots: "
            f"offered {self.offered:.3f}, carried {self.throughput:.3f} per link, "
            f"mean delay {self.mean_delay:.2f} slots, backlog {self.backlog}"
        )
        if self.fct is not None:
            text += f"; {self.fct.summary()}"
        return text
