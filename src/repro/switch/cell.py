"""Fixed-length cells.

The network transports data in fixed-length ATM-style cells (Section
2.3): 53 bytes, of which 5 are header.  The header carries a flow
identifier; each switch looks the flow up in its routing table to find
the output port.  The paper notes a 128-byte cell with an 8-byte header
would have simplified the implementation; both formats are modelled by
:class:`CellFormat`.

For simulation purposes a :class:`Cell` carries its flow id, its output
port *at the current switch* (resolved from the routing table when it
arrives), a per-flow sequence number (used to verify the switch never
reorders a flow, Section 3.1), and timestamps for delay accounting.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

__all__ = ["ServiceClass", "CellFormat", "ATM_CELL", "WIDE_CELL", "Cell"]


class ServiceClass(enum.Enum):
    """Traffic class carried in the cell header's flow identifier.

    The paper distinguishes *constant bit rate* (CBR) traffic, which has
    reserved bandwidth and pre-scheduled slots, from *variable bit rate*
    (VBR) datagram traffic scheduled by parallel iterative matching
    (Section 4).
    """

    VBR = "vbr"
    CBR = "cbr"


@dataclass(frozen=True)
class CellFormat:
    """A fixed cell format: total size and header size, in bytes.

    >>> ATM_CELL.payload_bytes
    48
    >>> ATM_CELL.header_overhead  # doctest: +ELLIPSIS
    0.0943...
    """

    total_bytes: int
    header_bytes: int

    def __post_init__(self) -> None:
        if self.header_bytes >= self.total_bytes:
            raise ValueError(
                f"header ({self.header_bytes}B) must be smaller than the cell ({self.total_bytes}B)"
            )
        if self.header_bytes < 0 or self.total_bytes <= 0:
            raise ValueError("cell sizes must be positive")

    @property
    def payload_bytes(self) -> int:
        """Usable payload bytes per cell."""
        return self.total_bytes - self.header_bytes

    @property
    def header_overhead(self) -> float:
        """Fraction of link bandwidth consumed by headers."""
        return self.header_bytes / self.total_bytes

    def slot_time_seconds(self, link_bps: float) -> float:
        """Duration of one cell slot on a link of ``link_bps`` bits/s.

        This is the time budget the scheduler has to compute a matching
        (Section 3.2: "there is a fixed amount of time to schedule the
        switch -- the time to receive one cell at link speed").
        """
        if link_bps <= 0:
            raise ValueError(f"link speed must be positive, got {link_bps}")
        return self.total_bytes * 8 / link_bps

    def cells_for_packet(self, packet_bytes: int) -> int:
        """Number of cells needed to carry a packet (ceil division).

        Models the sending controller's segmentation of variable-length
        packets into cells (Section 2.3).
        """
        if packet_bytes < 0:
            raise ValueError("packet size must be non-negative")
        if packet_bytes == 0:
            return 1
        return -(-packet_bytes // self.payload_bytes)

    def fragmentation_overhead(self, packet_bytes: int) -> float:
        """Fraction of transmitted bytes wasted on headers + padding."""
        cells = self.cells_for_packet(packet_bytes)
        transmitted = cells * self.total_bytes
        return (transmitted - packet_bytes) / transmitted


#: Standard ATM cell: 53 bytes with a 5-byte header (what AN2 ships).
ATM_CELL = CellFormat(total_bytes=53, header_bytes=5)

#: The 128-byte / 8-byte-header format the paper says would have been simpler.
WIDE_CELL = CellFormat(total_bytes=128, header_bytes=8)

_cell_ids = itertools.count()


@dataclass
class Cell:
    """One fixed-length cell in flight.

    Attributes
    ----------
    flow_id:
        Identifier of the flow this cell belongs to (carried in the
        header; the unit of routing and of FIFO ordering).
    output:
        Output port at the *current* switch, resolved from the routing
        table on arrival.  Re-assigned at each hop in multi-switch runs.
    service:
        CBR or VBR.
    seqno:
        Per-flow sequence number assigned by the source, used to assert
        the no-reordering guarantee.
    arrival_slot:
        Slot in which the cell arrived at the current switch.
    injected_slot:
        Slot in which the source injected the cell into the network
        (for end-to-end latency in multi-switch runs).
    """

    flow_id: int
    output: int
    service: ServiceClass = ServiceClass.VBR
    seqno: int = 0
    arrival_slot: int = 0
    injected_slot: int = 0
    uid: int = field(default_factory=lambda: next(_cell_ids))

    def __repr__(self) -> str:
        return (
            f"Cell(flow={self.flow_id}, out={self.output}, {self.service.value},"
            f" seq={self.seqno}, arrived={self.arrival_slot})"
        )
