"""Fabric abstraction: crossbar and batcher-banyan data paths.

Section 2.2: "Our scheduling algorithm assumes that data can be
forwarded through the switch with no internal blocking; this can be
implemented using either a crossbar or a batcher-banyan network."  This
module makes that claim concrete: both fabrics expose the same
``transfer`` interface and both deliver every scheduled cell, so the
switch model runs identically on either.

:class:`ReplicatedBanyanFabric` models the k-replicated banyan of
Sections 2.4/3.1 that can deliver up to k cells per output per slot
(pairing with PIM's ``output_capacity=k`` generalization).
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Sequence, Tuple, runtime_checkable

from repro.switch.banyan import BanyanNetwork
from repro.switch.batcher import batcher_sort
from repro.switch.cell import Cell
from repro.switch.crossbar import Crossbar

__all__ = ["Fabric", "CrossbarFabric", "BatcherBanyanFabric", "ReplicatedBanyanFabric"]


@runtime_checkable
class Fabric(Protocol):
    """A switch data path: moves one slot's scheduled cells to outputs."""

    ports: int

    def transfer(self, cells: Sequence[Tuple[int, Cell]]) -> Dict[int, List[Cell]]:
        """Move ``(input, cell)`` pairs; return cells per output port."""


class CrossbarFabric:
    """Crossbar data path (the AN2 choice): non-blocking by construction."""

    def __init__(self, ports: int):
        self.ports = ports
        self._crossbar = Crossbar(ports)

    def transfer(self, cells: Sequence[Tuple[int, Cell]]) -> Dict[int, List[Cell]]:
        """Configure the crossbar from the cells' outputs and transfer."""
        pairs = [(i, cell.output) for i, cell in cells]
        self._crossbar.configure(pairs)
        delivered = self._crossbar.transfer(dict(cells))
        return {j: [cell] for j, cell in delivered.items()}


class BatcherBanyanFabric:
    """Batcher sorter + perfect shuffle onto a banyan network.

    Cells are sorted by destination (idle lines carry +inf keys and sink
    to the bottom), concentrating active cells at the top in destination
    order -- the precondition under which the banyan is internally
    non-blocking.  A scheduled transfer (distinct outputs, from the
    matching) therefore never loses a cell; the fabric raises if it ever
    observes internal blocking, since that would be a scheduler bug.
    """

    def __init__(self, ports: int):
        self._banyan = BanyanNetwork(ports)
        self.ports = ports

    def transfer(self, cells: Sequence[Tuple[int, Cell]]) -> Dict[int, List[Cell]]:
        """Sort by destination, then self-route through the banyan."""
        seen_outputs = set()
        for _, cell in cells:
            if cell.output in seen_outputs:
                raise ValueError(f"two scheduled cells for output {cell.output}")
            seen_outputs.add(cell.output)
        keys = [float("inf")] * self.ports
        payloads: Dict[int, Cell] = {}
        for i, cell in cells:
            if keys[i] != float("inf"):
                raise ValueError(f"two scheduled cells at input {i}")
            keys[i] = float(cell.output)
            payloads[i] = cell
        _, perm = batcher_sort(keys)
        routed = []
        for line, source in enumerate(perm):
            if source in payloads:
                cell = payloads[int(source)]
                routed.append((line, cell.output, cell))
        result = self._banyan.route(routed)
        if result.blocking_occurred:
            raise AssertionError(
                "internal blocking on a conflict-free schedule -- fabric bug"
            )
        return {j: [cell] for j, cell in result.delivered.items()}


class ReplicatedBanyanFabric:
    """k parallel banyan copies: up to k cells per output per slot.

    Section 2.4's throughput-expansion technique.  Cells are partitioned
    across copies so that each copy carries at most one cell per output;
    within a copy, the batcher-banyan discipline applies.  Requires
    output buffering downstream (the switch model provides it when
    constructed with ``speedup=k``).
    """

    def __init__(self, ports: int, copies: int):
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies}")
        self.ports = ports
        self.copies = copies
        self._planes = [BatcherBanyanFabric(ports) for _ in range(copies)]

    def transfer(self, cells: Sequence[Tuple[int, Cell]]) -> Dict[int, List[Cell]]:
        """Spread cells over the banyan copies and merge deliveries."""
        per_plane: List[List[Tuple[int, Cell]]] = [[] for _ in range(self.copies)]
        output_use: Dict[int, int] = {}
        input_use: Dict[int, int] = {}
        for i, cell in cells:
            plane = output_use.get(cell.output, 0)
            if plane >= self.copies:
                raise ValueError(
                    f"more than {self.copies} cells scheduled for output {cell.output}"
                )
            if input_use.get(i, 0) >= 1:
                raise ValueError(f"two scheduled cells at input {i}")
            # A plane carries at most one cell per input as well; place
            # the cell on the first plane free at both its input & output.
            while plane < self.copies and any(pi == i for pi, _ in per_plane[plane]):
                plane += 1
            if plane >= self.copies:
                raise ValueError(f"cannot place cell from input {i} on any plane")
            per_plane[plane].append((i, cell))
            output_use[cell.output] = plane + 1
            input_use[i] = 1
        merged: Dict[int, List[Cell]] = {}
        for plane, plane_cells in zip(self._planes, per_plane):
            if not plane_cells:
                continue
            for j, delivered in plane.transfer(plane_cells).items():
                merged.setdefault(j, []).extend(delivered)
        return merged
