"""Multicast flows -- the feature the paper supports but defers.

Section 2: "Our network also supports multicast flows, but we will not
discuss that here."  This module supplies the natural AN2-style
implementation so the library covers the advertised feature:

- a crossbar can *replicate*: one input line can drive any set of
  output lines in the same slot, so a multicast cell costs one input
  slot regardless of how many outputs it reaches;
- scheduling generalizes PIM with **fanout splitting**: each slot the
  head multicast cell of an input requests every output remaining in
  its fanout set; outputs grant independently at random (exactly the
  unicast grant phase); the input accepts *all* grants, since they all
  serve the same cell.  Outputs served are removed from the residual
  fanout; the cell departs once the set is empty.  A cell partially
  served keeps its input's head position, preserving flow order.

The multicast bench compares fanout splitting against the strawman of
copying a cell into k unicast VOQs (which costs k input slots).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.sim.stats import DelayStats, ThroughputCounter

__all__ = ["MulticastCell", "MulticastPIMScheduler", "MulticastSwitch"]

_mc_ids = itertools.count()


@dataclass
class MulticastCell:
    """A cell addressed to a set of outputs.

    ``residual`` starts equal to ``fanout`` and shrinks as copies are
    delivered; the cell departs when it empties.
    """

    flow_id: int
    fanout: FrozenSet[int]
    seqno: int = 0
    arrival_slot: int = 0
    residual: Set[int] = field(default_factory=set)
    uid: int = field(default_factory=lambda: next(_mc_ids))

    def __post_init__(self) -> None:
        if not self.fanout:
            raise ValueError("multicast cell needs at least one output")
        if not self.residual:
            self.residual = set(self.fanout)


class MulticastPIMScheduler:
    """Fanout-splitting PIM over head multicast cells.

    Per iteration: every input whose head cell still has unserved,
    unmatched outputs requests them all; each unmatched output grants
    one requesting input uniformly at random; every grant is accepted
    (all grants to an input serve its single head cell).  Iterating
    fills in outputs exactly as unicast PIM fills in pairs.
    """

    def __init__(self, iterations: int = 4, seed: Optional[int] = None):
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.iterations = iterations
        if seed is not None:
            self._rng = np.random.default_rng(seed)
        else:
            # Deterministic fallback (repro.sim.rng default-seed policy).
            from repro.sim.rng import default_generator

            self._rng = default_generator("multicast_pim")

    def schedule(self, heads: Sequence[Optional[Set[int]]], ports: int) -> List[Set[int]]:
        """Choose the output set each input transmits to this slot.

        ``heads[i]`` is input i's head cell's residual fanout (None
        when the input is empty).  Returns a per-input set of granted
        outputs; sets are disjoint across inputs.
        """
        granted: List[Set[int]] = [set() for _ in heads]
        output_taken = [False] * ports
        for _ in range(self.iterations):
            requests: Dict[int, List[int]] = {}
            for i, fanout in enumerate(heads):
                if fanout is None:
                    continue
                for j in fanout:
                    if not output_taken[j] and j not in granted[i]:
                        requests.setdefault(j, []).append(i)
            if not requests:
                break
            for j, requesters in requests.items():
                winner = int(self._rng.choice(requesters))
                granted[winner].add(j)
                output_taken[j] = True
        return granted

    def reset(self) -> None:
        """No cross-slot state."""


class MulticastSwitch:
    """Input-buffered crossbar switch carrying multicast cells.

    One FIFO of multicast cells per input (the classic fanout-splitting
    discipline: the head cell holds its position until fully served).
    """

    def __init__(self, ports: int, scheduler: Optional[MulticastPIMScheduler] = None):
        if ports <= 0:
            raise ValueError(f"ports must be positive, got {ports}")
        self.ports = ports
        self.scheduler = scheduler if scheduler is not None else MulticastPIMScheduler(seed=0)
        self.queues: List[Deque[MulticastCell]] = [deque() for _ in range(ports)]
        self.copies_delivered = 0

    def step(self, slot: int, arrivals: Sequence[Tuple[int, MulticastCell]]) -> List[MulticastCell]:
        """Advance one slot; returns cells that *completed* this slot."""
        for input_port, cell in arrivals:
            if not 0 <= input_port < self.ports:
                raise ValueError(f"arrival at invalid input {input_port}")
            for j in cell.fanout:
                if not 0 <= j < self.ports:
                    raise ValueError(f"fanout output {j} out of range")
            cell.arrival_slot = slot
            self.queues[input_port].append(cell)

        heads = [
            set(queue[0].residual) if queue else None for queue in self.queues
        ]
        granted = self.scheduler.schedule(heads, self.ports)
        completed: List[MulticastCell] = []
        seen_outputs: Set[int] = set()
        for i, outputs in enumerate(granted):
            if not outputs:
                continue
            if seen_outputs & outputs:
                raise AssertionError("two inputs granted the same output")
            seen_outputs |= outputs
            cell = self.queues[i][0]
            cell.residual -= outputs
            self.copies_delivered += len(outputs)
            if not cell.residual:
                completed.append(self.queues[i].popleft())
        return completed

    def backlog(self) -> int:
        """Multicast cells still buffered (partially served included)."""
        return sum(len(q) for q in self.queues)

    def run(self, traffic, slots: int, warmup: int = 0):
        """Simulate with a multicast traffic source.

        ``traffic`` needs ``ports`` and ``arrivals(slot)`` returning
        (input, MulticastCell) pairs.  Delay is measured to the cell's
        *completion* (last copy delivered).
        """
        if traffic.ports != self.ports:
            raise ValueError("traffic/switch port mismatch")
        delay = DelayStats(warmup=warmup)
        counter = ThroughputCounter(warmup=warmup)
        for slot in range(slots):
            arrivals = traffic.arrivals(slot)
            counter.record_arrival(slot, len(arrivals))
            done = self.step(slot, arrivals)
            counter.record_departure(slot, len(done))
            for cell in done:
                delay.record(cell.arrival_slot, slot)
        return delay, counter
