"""Batcher bitonic sorting network.

Section 2.2: banyan networks are internally non-blocking "if cells are
sorted according to output destination and then shuffled before being
placed into the network", so a common self-routing switch design is a
Batcher sorting network [Batcher 68] in front of a banyan.  The AN2
uses a crossbar instead, but the paper's argument that its scheduler
works with either fabric is reproduced by
:class:`repro.switch.fabric.BatcherBanyanFabric`, which needs this
sorter.

The network is the classic bitonic merge sorter for N = 2^k lines:
``log2(N) * (log2(N)+1) / 2`` stages of N/2 compare-exchange elements.
:func:`batcher_comparators` emits the comparator list (hardware view);
:func:`batcher_sort` applies it to a key vector (simulation view).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["batcher_comparators", "batcher_sort", "batcher_stage_count", "comparator_count"]


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def batcher_comparators(n: int) -> List[List[Tuple[int, int, bool]]]:
    """Comparator stages of a bitonic sorter for ``n`` = 2^k lines.

    Returns a list of stages; each stage is a list of
    ``(line_a, line_b, ascending)`` comparators that act on disjoint
    line pairs and may therefore fire in parallel (one hardware stage).
    ``ascending`` True routes the smaller key to ``line_a``.
    """
    if not _is_power_of_two(n):
        raise ValueError(f"batcher network size must be a power of two, got {n}")
    stages: List[List[Tuple[int, int, bool]]] = []
    k = 2
    while k <= n:  # size of the bitonic sequences being merged
        j = k // 2
        while j >= 1:  # comparator distance within the merge
            stage = []
            for i in range(n):
                partner = i ^ j
                if partner > i:
                    ascending = (i & k) == 0
                    stage.append((i, partner, ascending))
            stages.append(stage)
            j //= 2
        k *= 2
    return stages


def batcher_sort(keys: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Sort ``keys`` through the bitonic network.

    Returns ``(sorted_keys, permutation)`` where ``permutation[p]`` is
    the original line whose key ended at position p -- the permutation
    the physical network applies to the cells riding the keys.

    Idle lines are conventionally carried as ``float('inf')`` keys so
    they sink to the bottom, concentrating active cells at the top --
    the "sorted and shuffled" precondition for non-blocking banyan
    routing.
    """
    values = np.asarray(keys, dtype=float).copy()
    n = values.shape[0]
    perm = np.arange(n)
    for stage in batcher_comparators(n):
        for a, b, ascending in stage:
            swap = values[a] > values[b] if ascending else values[a] < values[b]
            if swap:
                values[a], values[b] = values[b], values[a]
                perm[a], perm[b] = perm[b], perm[a]
    return values, perm


def batcher_stage_count(n: int) -> int:
    """Number of compare-exchange stages: log2(n) * (log2(n)+1) / 2."""
    if not _is_power_of_two(n):
        raise ValueError(f"batcher network size must be a power of two, got {n}")
    k = n.bit_length() - 1
    return k * (k + 1) // 2


def comparator_count(n: int) -> int:
    """Total comparators in the network: (n/2) per stage."""
    return batcher_stage_count(n) * (n // 2)
