"""The 4:1 workstation concentrator (Section 2.1).

"We expect that it will be some time before workstations are able to
use a full gigabit-per-second link; for AN2, we are designing a
special concentrator card to connect four workstations, each using a
slower speed link, to a single AN2 switch port.  A single 16 by 16 AN2
switch can thus connect up to 64 workstations."

The concentrator multiplexes k tributary links (each running at 1/k of
the trunk rate, modelled as one tributary cell per k trunk slots) onto
one switch port, and demultiplexes the reverse direction.  Upstream
contention among tributaries that have cells ready is resolved
round-robin, so each workstation gets at least its 1/k share and can
opportunistically use idle siblings' slots.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.switch.cell import Cell

__all__ = ["Concentrator"]


class Concentrator:
    """Multiplexes ``tributaries`` slow links onto one switch port.

    Parameters
    ----------
    tributaries:
        Number of workstation links sharing the port (AN2: 4).
    rate_limited:
        When True each tributary may *offer* at most one cell per
        ``tributaries`` trunk slots (the physical slow link); when
        False tributaries are only limited by trunk contention
        (useful for stress tests).
    """

    def __init__(self, tributaries: int, rate_limited: bool = True):
        if tributaries < 1:
            raise ValueError(f"tributaries must be >= 1, got {tributaries}")
        self.tributaries = tributaries
        self.rate_limited = rate_limited
        self._upstream: List[Deque[Cell]] = [deque() for _ in range(tributaries)]
        self._downstream: List[Deque[Cell]] = [deque() for _ in range(tributaries)]
        self._next_offer_slot = [0] * tributaries
        self._cursor = 0

    def offer(self, tributary: int, cell: Cell, slot: int) -> None:
        """A workstation hands a cell to its tributary link.

        With rate limiting on, offers faster than the tributary link
        rate queue at the workstation side of the link.
        """
        if not 0 <= tributary < self.tributaries:
            raise ValueError(f"tributary {tributary} out of range")
        self._upstream[tributary].append(cell)

    def multiplex(self, slot: int) -> Optional[Cell]:
        """The cell the concentrator puts on the trunk this slot.

        Round-robin among tributaries that are eligible: non-empty,
        and (if rate limited) whose link has finished clocking in the
        previous cell.
        """
        for offset in range(self.tributaries):
            tributary = (self._cursor + offset) % self.tributaries
            queue = self._upstream[tributary]
            if not queue:
                continue
            if self.rate_limited and slot < self._next_offer_slot[tributary]:
                continue
            self._cursor = (tributary + 1) % self.tributaries
            self._next_offer_slot[tributary] = slot + self.tributaries
            return queue.popleft()
        return None

    def demultiplex(self, cell: Cell, tributary: int) -> None:
        """Deliver a trunk cell toward a workstation's slow link."""
        if not 0 <= tributary < self.tributaries:
            raise ValueError(f"tributary {tributary} out of range")
        self._downstream[tributary].append(cell)

    def drain(self, tributary: int, slot: int) -> Optional[Cell]:
        """The cell crossing the tributary's downstream link this slot.

        The slow link delivers at 1/k trunk rate: one cell every
        ``tributaries`` slots per tributary.
        """
        if slot % self.tributaries != tributary % self.tributaries:
            return None
        queue = self._downstream[tributary]
        return queue.popleft() if queue else None

    def upstream_backlog(self, tributary: int) -> int:
        """Cells waiting at a workstation's side of its link."""
        return len(self._upstream[tributary])

    def downstream_backlog(self, tributary: int) -> int:
        """Cells waiting to cross a tributary's downstream link."""
        return len(self._downstream[tributary])
