"""Switch substrate: cells, flows, buffers, fabrics, and the switch model.

The AN2 switch (Section 2 of the paper) is an input-buffered crossbar
switch: fixed-length ATM-style cells arrive on N input links, wait in
random-access per-flow FIFO queues at the inputs, cross a non-blocking
fabric when the scheduler pairs their input with their output, and
depart on N output links.

Modules:

- :mod:`repro.switch.cell` -- fixed-length cells and service classes,
- :mod:`repro.switch.flow` -- flow descriptors (the unit of routing),
- :mod:`repro.switch.buffers` -- per-flow FIFO queues, eligible-flow
  lists, FIFO input queues, output queues,
- :mod:`repro.switch.crossbar` -- the non-blocking crossbar fabric,
- :mod:`repro.switch.batcher` / :mod:`repro.switch.banyan` /
  :mod:`repro.switch.fabric` -- Batcher sorting network, banyan
  self-routing network, and the batcher-banyan composition,
- :mod:`repro.switch.switch` -- the slot-clocked switch model.
"""

from repro.switch.cell import Cell, ServiceClass
from repro.switch.flow import Flow
from repro.switch.buffers import (
    FIFOInputBuffer,
    OutputQueue,
    VOQBuffer,
)
from repro.switch.concentrator import Concentrator
from repro.switch.crossbar import Crossbar
from repro.switch.multicast import MulticastCell, MulticastPIMScheduler, MulticastSwitch
from repro.switch.packets import Packet, Reassembler, Segmenter
from repro.switch.replicated import ReplicatedOutputSwitch
from repro.switch.switch import CrossbarSwitch, FIFOSwitch, SwitchResult

__all__ = [
    "Cell",
    "ServiceClass",
    "Flow",
    "VOQBuffer",
    "FIFOInputBuffer",
    "OutputQueue",
    "Concentrator",
    "Crossbar",
    "MulticastCell",
    "MulticastPIMScheduler",
    "MulticastSwitch",
    "Packet",
    "Segmenter",
    "Reassembler",
    "ReplicatedOutputSwitch",
    "CrossbarSwitch",
    "FIFOSwitch",
    "SwitchResult",
]
