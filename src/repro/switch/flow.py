"""Flow descriptors.

Routing in the AN2 network is based on *flows*: a flow is a stream of
cells between a pair of hosts, identified by the flow id in each cell
header (Section 2).  All cells of a flow take the same path, and each
switch keeps a per-flow FIFO queue so cells within a flow are never
reordered even though the scheduler may reorder cells *across* flows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.switch.cell import ServiceClass

__all__ = ["Flow"]


@dataclass(frozen=True)
class Flow:
    """A unidirectional stream of cells between two hosts.

    At a single switch only the (input port, output port) pair matters;
    in the network simulator a flow also records its source/destination
    hosts and its path.

    Attributes
    ----------
    flow_id:
        Globally unique identifier carried in cell headers.
    src:
        Source host (or input-port) identifier.
    dst:
        Destination host (or output-port) identifier.
    service:
        CBR flows have a bandwidth reservation; VBR flows do not.
    cells_per_frame:
        For CBR flows, the reservation in cells per frame (Section 4).
        Zero for VBR flows.
    """

    flow_id: int
    src: int
    dst: int
    service: ServiceClass = ServiceClass.VBR
    cells_per_frame: int = 0

    def __post_init__(self) -> None:
        if self.cells_per_frame < 0:
            raise ValueError("cells_per_frame must be non-negative")
        if self.service is ServiceClass.VBR and self.cells_per_frame:
            raise ValueError("VBR flows cannot carry a reservation")
        if self.service is ServiceClass.CBR and self.cells_per_frame == 0:
            raise ValueError("CBR flows need a positive cells_per_frame reservation")

    @property
    def is_cbr(self) -> bool:
        """True when this flow holds a bandwidth reservation."""
        return self.service is ServiceClass.CBR
