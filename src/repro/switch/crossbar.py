"""The crossbar fabric.

The AN2 prototype forwards cells over an N x N crossbar "because it is
simpler and has lower latency" than a batcher-banyan (Section 2.2).  A
crossbar is internally non-blocking: any set of cells may cross
simultaneously provided no two share an input or an output -- exactly
the matching constraint the scheduler enforces.

The class models configuration (setting the crosspoints from a
matching) and transfer, and counts crosspoints for the O(N^2) hardware
cost discussion fed into :mod:`repro.hardware.cost`.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.switch.cell import Cell

__all__ = ["Crossbar"]


class Crossbar:
    """An N x N non-blocking crossbar.

    Usage per slot: :meth:`configure` with the slot's matching, then
    :meth:`transfer` with the cells selected at each matched input.

    >>> xbar = Crossbar(4)
    >>> xbar.configure([(0, 2), (1, 0)])
    >>> xbar.crosspoints
    16
    """

    def __init__(self, ports: int):
        if ports <= 0:
            raise ValueError(f"ports must be positive, got {ports}")
        self.ports = ports
        self._config: Dict[int, int] = {}
        self.slots_configured = 0

    @property
    def crosspoints(self) -> int:
        """Number of crosspoints -- the O(N^2) hardware term."""
        return self.ports * self.ports

    def configure(self, pairs: Sequence[Tuple[int, int]]) -> None:
        """Set the crosspoints for one slot.

        Raises ``ValueError`` on a conflicting configuration (two pairs
        sharing an input or output) or out-of-range ports -- a scheduler
        bug, not a traffic condition.
        """
        config: Dict[int, int] = {}
        seen_outputs = set()
        for i, j in pairs:
            if not (0 <= i < self.ports and 0 <= j < self.ports):
                raise ValueError(f"pair ({i}, {j}) out of range for {self.ports} ports")
            if i in config:
                raise ValueError(f"input {i} configured twice")
            if j in seen_outputs:
                raise ValueError(f"output {j} configured twice")
            config[i] = j
            seen_outputs.add(j)
        self._config = config
        self.slots_configured += 1

    def transfer(self, cells: Dict[int, Cell]) -> Dict[int, Cell]:
        """Move cells through the configured crosspoints.

        ``cells`` maps input port to the cell to send.  Every input with
        a cell must be configured, and each cell's ``output`` must agree
        with the configuration (the scheduler chose the cell).  Returns
        a map from output port to delivered cell.
        """
        delivered: Dict[int, Cell] = {}
        for i, cell in cells.items():
            if i not in self._config:
                raise ValueError(f"input {i} offered a cell but is not configured")
            j = self._config[i]
            if cell.output != j:
                raise ValueError(
                    f"cell at input {i} is destined for output {cell.output}, "
                    f"but the crossbar is configured to output {j}"
                )
            delivered[j] = cell
        return delivered
