"""Packet segmentation and reassembly (Section 2.3).

"Applications may still deal in variable-length packets.  It is the
responsibility of the network controller at the sending host to divide
packets into cells, each containing the flow identifier for routing;
the receiving controller re-assembles the cells into packets."

The section also argues cells *improve* packet latency: short packets
interleave with long ones instead of waiting behind them, and long
packets get cut-through-like pipelining across hops.  The
segmentation/reassembly pair here, plus the packet-latency ablation
bench, make those claims measurable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.switch.cell import ATM_CELL, Cell, CellFormat, ServiceClass

__all__ = ["Packet", "Segmenter", "Reassembler"]

_packet_ids = itertools.count()


@dataclass
class Packet:
    """A variable-length application packet."""

    flow_id: int
    size_bytes: int
    created_slot: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")


class Segmenter:
    """Sending-controller SAR: packets in, cells out.

    Cells of one packet are tagged ``(packet_id, index, last)`` in
    their payload descriptor so the receiver can reassemble; all cells
    of a flow carry the flow id and therefore follow one path in
    order, which is what makes reassembly state a simple per-flow
    cursor rather than a resequencing buffer.
    """

    def __init__(self, cell_format: CellFormat = ATM_CELL):
        self.cell_format = cell_format
        self._seqno: Dict[int, int] = {}

    def segment(self, packet: Packet, output: int, slot: int) -> List[Cell]:
        """Split a packet into cells for a given switch output."""
        count = self.cell_format.cells_for_packet(packet.size_bytes)
        cells = []
        for index in range(count):
            seq = self._seqno.get(packet.flow_id, 0)
            self._seqno[packet.flow_id] = seq + 1
            cell = Cell(
                flow_id=packet.flow_id,
                output=output,
                service=ServiceClass.VBR,
                seqno=seq,
                injected_slot=slot,
            )
            # Reassembly descriptor rides in an attribute (the 5-byte
            # header's payload-type + AAL trailer in real ATM).
            cell.sar = (packet.packet_id, index, index == count - 1, packet)
            cells.append(cell)
        return cells


class Reassembler:
    """Receiving-controller SAR: cells in, packets out.

    Relies on the switch's per-flow FIFO guarantee: within a flow,
    cells arrive in segmentation order, so a packet completes exactly
    when its ``last`` cell arrives.  Interleaving *across* flows is
    fine -- each flow has its own assembly buffer.
    """

    def __init__(self) -> None:
        self._assembling: Dict[int, List[Cell]] = {}
        self.completed: List[Tuple[Packet, int]] = []  # (packet, completion_slot)

    def accept(self, cell: Cell, slot: int) -> Optional[Packet]:
        """Feed one arriving cell; returns the packet it completed, if any."""
        descriptor = getattr(cell, "sar", None)
        if descriptor is None:
            raise ValueError("cell was not produced by a Segmenter")
        packet_id, index, last, packet = descriptor
        buffer = self._assembling.setdefault(cell.flow_id, [])
        if buffer and buffer[0].sar[0] != packet_id:
            raise AssertionError(
                f"flow {cell.flow_id}: interleaved packets within one flow "
                "(switch order guarantee violated)"
            )
        if index != len(buffer):
            raise AssertionError(
                f"flow {cell.flow_id}: cell {index} arrived out of order "
                f"(expected {len(buffer)})"
            )
        buffer.append(cell)
        if not last:
            return None
        del self._assembling[cell.flow_id]
        self.completed.append((packet, slot))
        return packet

    def in_flight(self) -> int:
        """Packets currently partially assembled."""
        return len(self._assembling)
