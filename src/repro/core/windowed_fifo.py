"""Windowed FIFO scheduling -- the Hui/Arthurs + Karol iterative scheme.

Section 2.4 describes the pre-PIM state of the art for input-buffered
switches: "At first, only the header for the first queued cell at each
input port is sent through the batcher network; an acknowledgement is
returned ... Karol et al. suggest that iteration can be used to
increase switch throughput.  In this approach, an input that loses the
first round of the competition sends the header for the second cell in
its queue on the second round, and so on.  After some number of
iterations k ... this reduces the impact of head-of-line blocking but
does not eliminate it, since only the first k cells in each queue are
eligible for transmission."

:class:`WindowedFIFOScheduler` implements exactly that contention
protocol over FIFO input buffers; the ablation bench sweeps the window
size w to show throughput improving with w yet staying below VOQ+PIM
(the "does not eliminate it" claim).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import replay_generator, resolve_generator
from repro.sim.stats import DelayStats, ThroughputCounter
from repro.switch.buffers import FIFOInputBuffer
from repro.switch.cell import Cell
from repro.switch.fabric import CrossbarFabric
from repro.switch.results import SwitchResult

__all__ = ["WindowedFIFOScheduler", "WindowedFIFOSwitch"]


class WindowedFIFOScheduler:
    """Iterative contention over the first w cells of each FIFO queue.

    Round r (r = 0..w-1): every unmatched input whose r-th queued cell
    exists and whose cell's output is unmatched bids for that output;
    each contended output picks one bidder uniformly at random.  Note
    the crucial difference from PIM: an input bids for the *single*
    output of its r-th cell, not for every queued destination, and an
    input that wins in round r sends its *r-th* cell, so a win deeper
    in the window skips over blocked cells (limited reordering across
    flows, as in Karol's scheme).

    Parameters
    ----------
    window:
        w, the number of queue positions eligible per slot (w = 1 is
        plain FIFO).
    seed:
        Seed for the tie-break draws.
    """

    name = "windowed_fifo"

    def __init__(self, window: int = 2, seed: Optional[int] = None):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        # Deterministic seed=None fallback (repro.sim.rng default-seed
        # policy); the token lets reset() rewind the stream.
        self._rng, self._rng_token = resolve_generator(seed, None, "windowed_fifo")

    def arbitrate(self, windows: Sequence[Sequence[int]]) -> List[Tuple[int, int, int]]:
        """Match inputs to outputs over the window.

        ``windows[i]`` lists the destinations of input i's first w
        queued cells (possibly shorter).  Returns a list of
        ``(input, queue_position, output)`` triples forming a legal
        matching on inputs and outputs.
        """
        n = len(windows)
        input_matched = set()
        output_matched = set()
        winners: List[Tuple[int, int, int]] = []
        for position in range(self.window):
            bids: dict = {}
            for i in range(n):
                if i in input_matched or position >= len(windows[i]):
                    continue
                j = windows[i][position]
                if j in output_matched:
                    continue
                bids.setdefault(j, []).append(i)
            for j, bidders in bids.items():
                winner = int(self._rng.choice(bidders))
                winners.append((winner, position, j))
                input_matched.add(winner)
                output_matched.add(j)
        return winners

    def reset(self) -> None:
        """Rewind the tie-break RNG to its as-constructed state.

        Regression note (reset-contract sweep): this used to be a no-op
        "no cross-slot state" stub, but the tie-break stream kept
        advancing across ``reset()``, so a second ``run`` on the same
        scheduler diverged from the first.
        """
        self._rng = replay_generator(self._rng, self._rng_token)


class WindowedFIFOSwitch:
    """FIFO-input switch scheduled by the windowed contention protocol.

    The winning cell may sit behind blocked cells in its queue; it is
    removed from its position (random access limited to the first w
    positions -- the hardware the scheme assumes).
    """

    def __init__(self, ports: int, scheduler: WindowedFIFOScheduler):
        if ports <= 0:
            raise ValueError(f"ports must be positive, got {ports}")
        self.ports = ports
        self.scheduler = scheduler
        self.buffers = [FIFOInputBuffer() for _ in range(ports)]
        self.fabric = CrossbarFabric(ports)

    def step(self, slot: int, arrivals: Sequence[Tuple[int, Cell]]) -> List[Cell]:
        """Advance one slot; returns departed cells."""
        for input_port, cell in arrivals:
            cell.arrival_slot = slot
            self.buffers[input_port].enqueue(cell)
        windows = [
            [cell.output for cell in buffer.head_window(self.scheduler.window)]
            if len(buffer)
            else []
            for buffer in self.buffers
        ]
        winners = self.scheduler.arbitrate(windows)
        selected: List[Tuple[int, Cell]] = []
        for i, position, j in winners:
            cell = self.buffers[i].pop_at(position)
            assert cell.output == j
            selected.append((i, cell))
        delivered = self.fabric.transfer(selected)
        return [cells[0] for cells in delivered.values()]

    def backlog(self) -> int:
        """Cells currently buffered."""
        return sum(len(b) for b in self.buffers)

    def run(self, traffic, slots: int, warmup: int = 0) -> SwitchResult:
        """Simulate and collect statistics."""
        if traffic.ports != self.ports:
            raise ValueError(
                f"traffic is for {traffic.ports} ports, switch has {self.ports}"
            )
        self.scheduler.reset()
        delay = DelayStats(warmup=warmup)
        counter = ThroughputCounter(warmup=warmup)
        for slot in range(slots):
            arrivals = traffic.arrivals(slot)
            counter.record_arrival(slot, len(arrivals))
            departures = self.step(slot, arrivals)
            counter.record_departure(slot, len(departures))
            for cell in departures:
                delay.record(cell.arrival_slot, slot)
        return SwitchResult(
            delay=delay,
            counter=counter,
            ports=self.ports,
            slots=slots,
            backlog=self.backlog(),
            dropped=0,
        )
