"""Round-Robin Matching (RRM) -- the deterministic strawman.

The obvious way to remove PIM's randomness is to replace both random
choices with round-robin pointers that advance every slot: each output
grants the first requester at/after its pointer, each input accepts
the first grant at/after its pointer, and *all pointers advance one
past their choice unconditionally*.  This is RRM, the known-flawed
precursor to iSLIP: under uniform saturated traffic the grant pointers
synchronize -- every output points at the same input, exactly the
pathology Appendix A's randomness argument guards against -- and the
throughput collapses to roughly PIM-1's 1 - 1/e rather than 100%.

iSLIP (:mod:`repro.core.islip`) differs only in updating pointers when
a grant is *accepted, in the first iteration*; the arbiter-policy
ablation puts the three side by side, making the paper's "randomness
de-synchronizes decisions made by a large number of agents" (Section
1) quantitative.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.islip import validate_pointer_array
from repro.core.matching import Matching, as_request_matrix

__all__ = ["RRMScheduler", "rrm_match"]


def rrm_match(
    requests: np.ndarray,
    grant_pointers: np.ndarray,
    accept_pointers: np.ndarray,
    iterations: int = 1,
) -> Matching:
    """One slot of RRM; pointers advance unconditionally each slot.

    Parameters mirror :func:`repro.core.islip.islip_match`; both
    pointer arrays are mutated in place and validated the same way
    (int64, shape ``(N,)``, values in ``[0, N)``).
    """
    matrix = as_request_matrix(requests)
    n = matrix.shape[0]
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    validate_pointer_array(grant_pointers, n, "grant_pointers")
    validate_pointer_array(accept_pointers, n, "accept_pointers")
    input_matched = np.zeros(n, dtype=bool)
    output_matched = np.zeros(n, dtype=bool)
    pairs: List[Tuple[int, int]] = []
    grant_choice: List[Optional[int]] = [None] * n

    for iteration in range(iterations):
        active = matrix & ~input_matched[:, None] & ~output_matched[None, :]
        if not active.any():
            break
        grants_to: List[Optional[int]] = [None] * n
        for j in range(n):
            if output_matched[j]:
                continue
            requesters = np.nonzero(active[:, j])[0]
            if requesters.size == 0:
                continue
            offsets = (requesters - grant_pointers[j]) % n
            grants_to[j] = int(requesters[offsets.argmin()])
            if iteration == 0:
                grant_choice[j] = grants_to[j]
        for i in range(n):
            if input_matched[i]:
                continue
            granting = np.array([j for j in range(n) if grants_to[j] == i], dtype=np.int64)
            if granting.size == 0:
                continue
            offsets = (granting - accept_pointers[i]) % n
            j = int(granting[offsets.argmin()])
            pairs.append((i, j))
            input_matched[i] = True
            output_matched[j] = True

    # The RRM rule: every pointer advances past its (first-iteration)
    # choice whether or not the grant was accepted.  This is what
    # keeps the grant pointers marching in lockstep under symmetric
    # load -- the synchronization bug iSLIP fixed.
    for j in range(n):
        if grant_choice[j] is not None:
            grant_pointers[j] = (grant_choice[j] + 1) % n
    for i, j in pairs:
        accept_pointers[i] = (j + 1) % n
    return Matching.from_pairs(pairs)


class RRMScheduler:
    """Stateful RRM scheduler (the synchronization-prone strawman)."""

    name = "rrm"

    def __init__(self, iterations: int = 1):
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.iterations = iterations
        self._grant_pointers: Optional[np.ndarray] = None
        self._accept_pointers: Optional[np.ndarray] = None

    def schedule(self, requests: np.ndarray) -> Matching:
        """Return this slot's matching and advance all pointers."""
        matrix = as_request_matrix(requests)
        n = matrix.shape[0]
        if self._grant_pointers is None:
            self._grant_pointers = np.zeros(n, dtype=np.int64)
            self._accept_pointers = np.zeros(n, dtype=np.int64)
        elif self._grant_pointers.shape[0] != n:
            raise ValueError(
                f"request matrix is {n}x{n} but pointers were sized for "
                f"{self._grant_pointers.shape[0]} ports; call reset() "
                f"before changing the switch size mid-run"
            )
        return rrm_match(matrix, self._grant_pointers, self._accept_pointers, self.iterations)

    def reset(self) -> None:
        """Return all pointers to zero."""
        self._grant_pointers = None
        self._accept_pointers = None

    def __repr__(self) -> str:
        return f"RRMScheduler(iterations={self.iterations})"
