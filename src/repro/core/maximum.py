"""Maximum bipartite matching -- the "more sophisticated" alternative.

Section 3.4 weighs maximum matching against PIM's maximal matching:
maximum matching squeezes out the most pairs per slot, but (i) known
algorithms are too slow for one ATM cell time at gigabit rates, and
(ii) always preferring the larger matching can **starve** a connection
indefinitely (the Figure 2 example: input 1 to output 2 is never served
because serving it would shrink the matching).

:func:`hopcroft_karp` is the classic O(E sqrt(V)) algorithm;
:class:`MaximumMatchingScheduler` wraps it as a per-slot scheduler so
the ablation bench can measure both its (slight) throughput edge and
its starvation pathology.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

import numpy as np

from repro.core.matching import Matching, as_request_matrix

__all__ = ["hopcroft_karp", "MaximumMatchingScheduler"]

_INF = float("inf")


def hopcroft_karp(requests: np.ndarray) -> Matching:
    """Maximum bipartite matching of a request matrix via Hopcroft-Karp.

    Returns one maximum matching (ties broken deterministically by
    index order -- this determinism is precisely what produces the
    starvation behaviour Section 3.4 warns about).

    >>> import numpy as np
    >>> len(hopcroft_karp(np.eye(3, dtype=bool)))
    3
    """
    matrix = as_request_matrix(requests)
    n = matrix.shape[0]
    adjacency: List[np.ndarray] = [np.nonzero(matrix[i])[0] for i in range(n)]
    match_input: List[Optional[int]] = [None] * n   # input  -> output
    match_output: List[Optional[int]] = [None] * n  # output -> input
    distances: List[float] = [0.0] * n

    def bfs() -> bool:
        queue = deque()
        for i in range(n):
            if match_input[i] is None:
                distances[i] = 0.0
                queue.append(i)
            else:
                distances[i] = _INF
        found_free = False
        while queue:
            i = queue.popleft()
            for j in adjacency[i]:
                owner = match_output[j]
                if owner is None:
                    found_free = True
                elif distances[owner] == _INF:
                    distances[owner] = distances[i] + 1
                    queue.append(owner)
        return found_free

    def dfs(i: int) -> bool:
        for j in adjacency[i]:
            owner = match_output[j]
            if owner is None or (distances[owner] == distances[i] + 1 and dfs(owner)):
                match_input[i] = int(j)
                match_output[j] = i
                return True
        distances[i] = _INF
        return False

    while bfs():
        for i in range(n):
            if match_input[i] is None:
                dfs(i)

    pairs = [(i, match_input[i]) for i in range(n) if match_input[i] is not None]
    return Matching.from_pairs(pairs)


class MaximumMatchingScheduler:
    """Per-slot maximum matching (deterministic Hopcroft-Karp).

    Used for the Section 3.4 ablation: on the Figure 2 request pattern
    this scheduler never serves the (input 1, output 2) connection
    because every maximum matching excludes it -- starvation that PIM's
    randomness avoids.
    """

    name = "maximum"

    def __init__(self) -> None:
        self.slots_scheduled = 0

    def schedule(self, requests: np.ndarray) -> Matching:
        """Return a maximum matching of the request matrix."""
        self.slots_scheduled += 1
        return hopcroft_karp(requests)

    def reset(self) -> None:
        """No cross-slot state beyond the slot counter."""
        self.slots_scheduled = 0

    def __repr__(self) -> str:
        return "MaximumMatchingScheduler()"
