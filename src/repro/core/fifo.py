"""FIFO input-queue arbitration -- the head-of-line-blocking baseline.

With FIFO input buffers only the head cell of each input contends
(Section 2.4).  Scheduling degenerates from bipartite matching to
output arbitration: each output picks one among the inputs whose head
cell wants it.  Two policies are provided:

- ``"random"`` -- each contended output picks a head uniformly at
  random (the fair steady-state model behind Karol's 2 - sqrt(2) ~ 58.6%
  saturation throughput),
- ``"rotating"`` -- a global priority pointer rotates among inputs;
  this is the "scheduling priority rotates among inputs so that the
  first cell from each input is scheduled in turn" policy that produces
  Figure 1's worst-case stationary blocking under periodic traffic.
"""

from __future__ import annotations

from typing import List, Literal, Optional, Tuple

import numpy as np

from repro.core.batch import replay_generator, resolve_generator
from repro.core.matching import Matching

__all__ = ["FIFOScheduler"]

Policy = Literal["random", "rotating"]


class FIFOScheduler:
    """Head-of-line output arbiter for :class:`repro.switch.switch.FIFOSwitch`.

    Parameters
    ----------
    policy:
        ``"random"`` or ``"rotating"`` (see module docstring).
    seed:
        Seed for the random policy's choices.
    """

    name = "fifo"

    def __init__(self, policy: Policy = "random", seed: Optional[int] = None):
        if policy not in ("random", "rotating"):
            raise ValueError(f"unknown FIFO policy: {policy!r}")
        self.policy = policy
        # Deterministic seed=None fallback (repro.sim.rng default-seed
        # policy); the token lets reset() rewind the stream.
        self._rng, self._rng_token = resolve_generator(seed, None, "fifo")
        self._priority = 0

    def arbitrate(self, head_destinations: np.ndarray) -> Matching:
        """Match each contended output to one head cell.

        ``head_destinations[i]`` is input i's head-cell output, or -1
        when input i is empty.
        """
        heads = np.asarray(head_destinations)
        n = heads.shape[0]
        pairs: List[Tuple[int, int]] = []
        for j in range(n):
            contenders = np.nonzero(heads == j)[0]
            if contenders.size == 0:
                continue
            if self.policy == "random":
                winner = int(self._rng.choice(contenders))
            else:
                # Rotating priority: the contender closest at/after the
                # global pointer wins.
                offsets = (contenders - self._priority) % n
                winner = int(contenders[offsets.argmin()])
            pairs.append((winner, j))
        if self.policy == "rotating":
            self._priority = (self._priority + 1) % n
        return Matching.from_pairs(pairs)

    def reset(self) -> None:
        """Reset the rotating-priority pointer and rewind the RNG.

        Regression note (reset-contract sweep): this used to reset only
        ``_priority`` while the random policy's tie-break stream kept
        advancing across ``reset()``, so a second ``run`` on the same
        scheduler diverged from the first.
        """
        self._priority = 0
        self._rng = replay_generator(self._rng, self._rng_token)

    def __repr__(self) -> str:
        return f"FIFOScheduler(policy={self.policy!r})"
