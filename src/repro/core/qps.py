"""QPS-r: queue-proportional sampling with round-robin accept.

Gong, Xu, Liu and Maguluri's QPS-r (arxiv 1905.05392, named in
PAPERS.md as a direct descendant of this paper's scheduling problem)
replaces PIM's uniform request broadcast with *one* queue-proportional
sample per input per round:

1. **Propose.**  Every still-unmatched input with queued cells toward
   a still-available output samples exactly one such output, with
   probability proportional to the VOQ occupancy (longer queues
   propose more often -- the "queue-proportional sampling" that gives
   the algorithm its throughput guarantees with r = 1 round).
2. **Accept.**  Every proposed-to output accepts the first proposing
   input at/after its round-robin pointer and advances the pointer one
   past the accepted input (the starvation-freedom device this paper
   prescribes for accept choices in Section 3.4).

r rounds run per slot (``rounds``); unmatched inputs re-sample among
the outputs still free.  Unlike PIM/iSLIP a round costs each input one
sample instead of a broadcast, and unlike LQF no global sort is
needed; the price is that the matching is not maximal in general (an
input's single sample can land on an output that rejects it while
another free output goes idle), so
:func:`repro.check.invariants._maximality_guaranteed` does not claim
maximality for it.

Both implementations -- the object :class:`QPSScheduler` and the
batched :class:`BatchQPSScheduler` -- drive the *same* ``(B, N, N)``
kernel (:func:`_qps_rounds`), the object one at B = 1.  The sampling
uniforms are drawn as one ``(B, N)`` block per round for **all**
inputs, proposers or not, so the random-stream consumption is a pure
function of (N, rounds); with a shared seed the two are bit-identical,
which is what the slot-exact differential parity checks rely on.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.batch import BatchScheduler, replay_generator, resolve_generator
from repro.core.matching import Matching, as_request_matrix

__all__ = ["BatchQPSScheduler", "QPSScheduler", "qps_match"]


def _qps_rounds(
    requests: np.ndarray,
    occupancy: np.ndarray,
    rng,
    accept_pointers: np.ndarray,
    rounds: int,
    output_capacity: int,
) -> Tuple[np.ndarray, int]:
    """The shared QPS-r kernel over a (B, N, N) batch.

    ``accept_pointers`` is (B, N) int64 and mutated in place (the
    round-robin accept state).  Returns ``(match, proposal_rounds)``
    where ``match`` is the (B, N) match array and ``proposal_rounds``
    counts rounds in which at least one input proposed.

    One ``(B, N)`` uniform block is drawn per round regardless of who
    can propose -- see the module docstring's stream-parity convention.
    """
    b, n, _ = requests.shape
    match = np.full((b, n), -1, dtype=np.int64)
    output_slots = np.full((b, n), output_capacity, dtype=np.int64)
    arange_n = np.arange(n)
    proposal_rounds = 0
    for _ in range(rounds):
        u = rng.random((b, n))
        avail = (
            requests
            & (occupancy > 0)
            & (match < 0)[:, :, None]
            & (output_slots > 0)[:, None, :]
        )
        weights = np.where(avail, occupancy, 0)
        cum = np.cumsum(weights, axis=2)
        totals = cum[:, :, -1]
        proposers = totals > 0
        if not proposers.any():
            continue
        proposal_rounds += 1
        # Inverse-CDF sample: the first column whose cumulative weight
        # exceeds u * total.  That column always has positive weight
        # (a zero-weight column shares its cumulative value with its
        # predecessor, so it can never be the first to exceed).
        targets = u * totals
        choice = (cum > targets[:, :, None]).argmax(axis=2)  # (B, N)
        proposals = np.zeros((b, n, n), dtype=bool)
        bb, ii = np.nonzero(proposers)
        proposals[bb, ii, choice[bb, ii]] = True
        # Accept: first proposer at/after the output's pointer (offset
        # argmin with the sentinel n on non-proposing entries).
        offsets = (arange_n[None, :, None] - accept_pointers[:, None, :]) % n
        offsets = np.where(proposals, offsets, n)
        winner = offsets.argmin(axis=1)                 # (B, N) per output
        has_proposal = proposals.any(axis=1)            # (B, N)
        bb, jj = np.nonzero(has_proposal)
        ii = winner[bb, jj]
        match[bb, ii] = jj
        output_slots[bb, jj] -= 1
        accept_pointers[bb, jj] = (ii + 1) % n
    return match, proposal_rounds


def qps_match(
    occupancy: np.ndarray,
    rng,
    rounds: int = 1,
    accept_pointers: Optional[np.ndarray] = None,
) -> Matching:
    """One slot of QPS-r on a single occupancy matrix.

    ``occupancy[i, j]`` is the number of queued cells for (i, j);
    sampling weight is the occupancy itself.  ``accept_pointers``
    (shape ``(N,)`` int64) is mutated in place when given, so a
    stateful caller carries the round-robin accept state across slots;
    fresh zeros are used otherwise.
    """
    matrix = np.asarray(occupancy)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"occupancy must be square, got shape {matrix.shape}")
    if (matrix < 0).any():
        raise ValueError("occupancy must be non-negative")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    n = matrix.shape[0]
    if accept_pointers is None:
        pointers = np.zeros((1, n), dtype=np.int64)
    else:
        if accept_pointers.shape != (n,) or accept_pointers.dtype != np.int64:
            raise ValueError(
                f"accept_pointers must be int64 of shape ({n},), got "
                f"{accept_pointers.dtype} {accept_pointers.shape}"
            )
        pointers = accept_pointers[None, :]  # view: in-place mutation flows back
    occ = matrix.astype(np.int64)
    match, _ = _qps_rounds(
        (occ > 0)[None, :, :], occ[None, :, :], rng, pointers, rounds, 1
    )
    pairs: List[Tuple[int, int]] = [
        (i, int(j)) for i, j in enumerate(match[0]) if j >= 0
    ]
    return Matching.from_pairs(pairs)


class QPSScheduler:
    """Stateful QPS-r scheduler for :class:`CrossbarSwitch`.

    ``needs_occupancy`` is set so the switch passes queue depths (the
    sampling weights).  The accept pointers are sized by the first
    request matrix seen; a mid-run size change raises ``ValueError``
    like iSLIP/RRM/wavefront (call :meth:`reset` when intended).

    Parameters
    ----------
    rounds:
        Propose/accept rounds r per slot (the paper's r; r = 1 already
        carries QPS-r's throughput guarantees).  ``None`` runs N
        rounds per slot.
    seed / rng:
        Private sampling stream (``rng`` wins when both given);
        ``seed=None`` falls back to the deterministic per-component
        stream of the :mod:`repro.sim.rng` default-seed policy.
    """

    name = "qps"
    needs_occupancy = True

    def __init__(
        self, rounds: Optional[int] = 1, seed: Optional[int] = None, rng=None
    ):
        if rounds is not None and rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        self.rounds = rounds
        self._rng, self._rng_token = resolve_generator(seed, rng, "qps")
        self._pointers: Optional[np.ndarray] = None
        self._probe = None

    def attach_probe(self, probe) -> None:
        """Attach a :class:`repro.obs.probe.Probe` (None detaches)."""
        self._probe = probe

    def schedule(
        self, requests: np.ndarray, occupancy: Optional[np.ndarray] = None
    ) -> Matching:
        """Return this slot's matching from the occupancy matrix."""
        matrix = as_request_matrix(requests)
        n = matrix.shape[0]
        if occupancy is None:
            occ = matrix.astype(np.int64)
        else:
            occ = np.asarray(occupancy)
            if occ.shape != matrix.shape:
                raise ValueError(
                    f"occupancy shape {occ.shape} does not match requests "
                    f"{matrix.shape}"
                )
            if (occ < 0).any():
                raise ValueError("occupancy must be non-negative")
            occ = np.where(matrix, occ.astype(np.int64), 0)
        if self._pointers is None:
            self._pointers = np.zeros((1, n), dtype=np.int64)
        elif self._pointers.shape[1] != n:
            raise ValueError(
                f"request matrix is {n}x{n} but pointers were sized for "
                f"{self._pointers.shape[1]} ports; a mid-run size change "
                f"would silently reset QPS-r's accept pointers -- call "
                f"reset() first if the change is intended"
            )
        rounds = self.rounds if self.rounds is not None else n
        match, executed = _qps_rounds(
            matrix[None, :, :], occ[None, :, :], self._rng, self._pointers,
            rounds, 1,
        )
        if self._probe is not None:
            self._probe.slot_iterations(executed)
        pairs = [(i, int(j)) for i, j in enumerate(match[0]) if j >= 0]
        return Matching.from_pairs(pairs)

    def reset(self) -> None:
        """Restore pointers and rewind the sampling stream."""
        self._pointers = None
        self._rng = replay_generator(self._rng, self._rng_token)

    def __repr__(self) -> str:
        r = "N" if self.rounds is None else self.rounds
        return f"QPSScheduler(rounds={r})"


class BatchQPSScheduler(BatchScheduler):
    """QPS-r vectorized over B independent switch replicas.

    Implements the :class:`repro.core.batch.BatchScheduler` protocol
    with per-(replica, output) accept pointers; drives the same
    :func:`_qps_rounds` kernel as :class:`QPSScheduler`, so B = 1 with
    a shared seed is bit-identical to the object scheduler (see the
    module docstring's stream-parity convention).
    """

    name = "qps_batch"
    needs_occupancy = True

    def __init__(
        self,
        replicas: int,
        ports: int,
        rounds: Optional[int] = 1,
        seed: Optional[int] = None,
        rng=None,
        output_capacity: int = 1,
    ):
        super().__init__(replicas, ports, output_capacity=output_capacity)
        if rounds is not None and rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        self.rounds = rounds
        self._rng, self._rng_token = resolve_generator(seed, rng, "qps")
        self._pointers = np.zeros((replicas, ports), dtype=np.int64)

    def schedule(
        self, requests: np.ndarray, occupancy: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Compute one slot's matchings for all replicas."""
        batch = self._validate_batch(requests)
        occ = self._occupancy_counts(batch, occupancy)
        rounds = self.rounds if self.rounds is not None else self.ports
        match, executed = _qps_rounds(
            batch, occ, self._rng, self._pointers, rounds, self.output_capacity
        )
        if self._probe is not None:
            self._probe.slot_iterations(executed)
        return match

    def reset(self) -> None:
        """Restore pointers and rewind the sampling stream."""
        self._pointers = np.zeros((self.replicas, self.ports), dtype=np.int64)
        self._rng = replay_generator(self._rng, self._rng_token)

    def __repr__(self) -> str:
        r = "N" if self.rounds is None else self.rounds
        return (
            f"BatchQPSScheduler(replicas={self.replicas}, "
            f"ports={self.ports}, rounds={r})"
        )
