"""Perfect output queueing -- the optimal-performance baseline.

Section 2.4: with enough internal bandwidth to deliver all N inputs'
cells to a single output in one slot, no input buffering is needed and
"cells are only delayed due to contention for limited output link
bandwidth, never due to contention internal to the switch".  It is
infeasible hardware at gigabit speeds, but it bounds what any scheduler
can achieve -- the upper curve of Figures 3 and 4.

:class:`OutputQueuedSwitch` implements it directly: every arriving cell
goes straight into its output's FIFO queue; each output sends one cell
per slot.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.sim.stats import DelayStats, ThroughputCounter
from repro.switch.buffers import OutputQueue
from repro.switch.cell import Cell
from repro.switch.results import SwitchResult
from repro.switch.switch import reset_traffic

__all__ = ["OutputQueuedSwitch"]


class OutputQueuedSwitch:
    """The perfect-output-queueing switch model.

    Runs the same ``step``/``run`` protocol as
    :class:`repro.switch.switch.CrossbarSwitch`, so benches can sweep
    the three Figure-3 algorithms with identical driver code.
    """

    def __init__(self, ports: int):
        if ports <= 0:
            raise ValueError(f"ports must be positive, got {ports}")
        self.ports = ports
        self.queues = [OutputQueue() for _ in range(ports)]

    def step(self, slot: int, arrivals: Sequence[Tuple[int, Cell]]) -> List[Cell]:
        """Deliver all arrivals to their output queues, depart one each."""
        for _, cell in arrivals:
            if not 0 <= cell.output < self.ports:
                raise ValueError(f"cell output {cell.output} out of range")
            cell.arrival_slot = slot
            self.queues[cell.output].enqueue(cell)
        departures = []
        for queue in self.queues:
            cell = queue.depart()
            if cell is not None:
                departures.append(cell)
        return departures

    def backlog(self) -> int:
        """Cells currently waiting in output queues."""
        return sum(len(q) for q in self.queues)

    def run(self, traffic, slots: int, warmup: int = 0) -> SwitchResult:
        """Simulate ``slots`` slots of ``traffic`` and collect statistics."""
        if traffic.ports != self.ports:
            raise ValueError(
                f"traffic is for {traffic.ports} ports, switch has {self.ports}"
            )
        reset_traffic(traffic)
        # Rerun contract: every run starts from empty output queues.
        self.queues = [OutputQueue() for _ in range(self.ports)]
        delay = DelayStats(warmup=warmup)
        counter = ThroughputCounter(warmup=warmup)
        for slot in range(slots):
            arrivals = traffic.arrivals(slot)
            counter.record_arrival(slot, len(arrivals))
            departures = self.step(slot, arrivals)
            counter.record_departure(slot, len(departures))
            for cell in departures:
                delay.record(cell.arrival_slot, slot)
        return SwitchResult(
            delay=delay,
            counter=counter,
            ports=self.ports,
            slots=slots,
            backlog=self.backlog(),
            dropped=0,
        )
