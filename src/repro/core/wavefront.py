"""Wavefront arbitration -- a deterministic hardware-matching baseline.

A wavefront arbiter computes a maximal matching by sweeping the request
matrix's anti-diagonals: all cells on one diagonal touch distinct rows
and columns, so they can be decided simultaneously in hardware; a
request is matched iff its row and column are still free when its
diagonal is processed.  Rotating the starting diagonal each slot keeps
the scheme fair in the long run.

This is the second arbiter-policy ablation alongside
:mod:`repro.core.islip`: unlike PIM it uses no randomness and a single
pass, at the cost of O(N) sequential diagonal steps.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.batch import BatchScheduler
from repro.core.matching import Matching, as_request_matrix

__all__ = ["BatchWavefrontScheduler", "WavefrontScheduler", "wavefront_match"]


def wavefront_match(requests: np.ndarray, start_diagonal: int = 0) -> Matching:
    """Maximal matching by diagonal sweep.

    Diagonal d holds pairs (i, j) with (i + j) mod N == d; diagonals are
    processed in order starting from ``start_diagonal``.  The result is
    always maximal: every request pair lies on some diagonal, and when
    its diagonal is processed it is matched unless its row or column
    was already taken.

    Numeric request matrices must be non-negative (matching
    :func:`repro.core.lqf.lqf_match`'s validation): a negative entry
    would bool-cast to a *true* request, silently inventing traffic.
    """
    raw = np.asarray(requests)
    if raw.dtype != bool and np.issubdtype(raw.dtype, np.number) and (raw < 0).any():
        raise ValueError("requests must be non-negative")
    matrix = as_request_matrix(requests)
    n = matrix.shape[0]
    row_free = np.ones(n, dtype=bool)
    col_free = np.ones(n, dtype=bool)
    pairs: List[Tuple[int, int]] = []
    for step in range(n):
        d = (start_diagonal + step) % n
        for i in range(n):
            j = (d - i) % n
            if matrix[i, j] and row_free[i] and col_free[j]:
                pairs.append((i, j))
                row_free[i] = False
                col_free[j] = False
    return Matching.from_pairs(pairs)


class WavefrontScheduler:
    """Stateful wavefront scheduler; the start diagonal rotates per slot.

    The rotating diagonal is sized by the first request matrix seen.  A
    *different*-sized matrix later in the run raises ``ValueError``
    (the same guard iSLIP and RRM carry): the old behaviour silently
    wrapped ``_start`` modulo the new N, which skews the fairness
    rotation invisibly.  Call :meth:`reset` first when a size change is
    genuinely intended.
    """

    name = "wavefront"

    def __init__(self) -> None:
        self._start = 0
        self._ports: Optional[int] = None

    def schedule(self, requests: np.ndarray) -> Matching:
        """Return this slot's matching and rotate the priority diagonal."""
        matrix = as_request_matrix(requests)
        n = matrix.shape[0]
        if self._ports is None:
            self._ports = n
        elif self._ports != n:
            raise ValueError(
                f"request matrix is {n}x{n} but the rotating diagonal was "
                f"sized for {self._ports} ports; a mid-run size change "
                f"would silently skew the fairness rotation -- call "
                f"reset() first if the change is intended"
            )
        matching = wavefront_match(matrix, self._start)
        self._start = (self._start + 1) % max(n, 1)
        return matching

    def reset(self) -> None:
        """Reset the rotating diagonal (and forget the port count)."""
        self._start = 0
        self._ports = None

    def __repr__(self) -> str:
        return "WavefrontScheduler()"


class BatchWavefrontScheduler(BatchScheduler):
    """Wavefront arbitration vectorized over B independent replicas.

    Implements the :class:`repro.core.batch.BatchScheduler` protocol.
    All entries of one anti-diagonal touch distinct rows and columns,
    so each of the N diagonal steps is a single vectorized
    take-if-row-and-column-free update across the whole batch; the
    rotating start diagonal is slot-driven (one rotation per
    ``schedule`` call), hence a single scalar shared by every replica
    -- exactly the object scheduler's state, so parity at any B is
    structural (the kernel is deterministic).
    """

    name = "wavefront_batch"

    def __init__(self, replicas: int, ports: int, output_capacity: int = 1):
        super().__init__(replicas, ports, output_capacity=output_capacity)
        self._start = 0

    def schedule(
        self, requests: np.ndarray, occupancy: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Compute one slot's matchings and rotate the start diagonal.

        ``occupancy`` is ignored (wavefront is occupancy-blind);
        accepted for protocol signature uniformity.
        """
        batch = self._validate_batch(requests)
        b, n, _ = batch.shape
        match = np.full((b, n), -1, dtype=np.int64)
        row_free = np.ones((b, n), dtype=bool)
        col_slots = np.full((b, n), self.output_capacity, dtype=np.int64)
        arange_n = np.arange(n)
        for step in range(n):
            d = (self._start + step) % n
            js = (d - arange_n) % n  # column of row i on diagonal d
            take = batch[:, arange_n, js] & row_free & (col_slots[:, js] > 0)
            match = np.where(take, js[None, :], match)
            row_free &= ~take
            # js is a permutation (distinct columns per diagonal), so
            # the fancy-indexed read-modify-write has no duplicates.
            col_slots[:, js] -= take
        self._start = (self._start + 1) % n
        return match

    def reset(self) -> None:
        """Reset the rotating diagonal."""
        self._start = 0

    def __repr__(self) -> str:
        return (
            f"BatchWavefrontScheduler(replicas={self.replicas}, "
            f"ports={self.ports})"
        )
