"""Wavefront arbitration -- a deterministic hardware-matching baseline.

A wavefront arbiter computes a maximal matching by sweeping the request
matrix's anti-diagonals: all cells on one diagonal touch distinct rows
and columns, so they can be decided simultaneously in hardware; a
request is matched iff its row and column are still free when its
diagonal is processed.  Rotating the starting diagonal each slot keeps
the scheme fair in the long run.

This is the second arbiter-policy ablation alongside
:mod:`repro.core.islip`: unlike PIM it uses no randomness and a single
pass, at the cost of O(N) sequential diagonal steps.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.matching import Matching, as_request_matrix

__all__ = ["WavefrontScheduler", "wavefront_match"]


def wavefront_match(requests: np.ndarray, start_diagonal: int = 0) -> Matching:
    """Maximal matching by diagonal sweep.

    Diagonal d holds pairs (i, j) with (i + j) mod N == d; diagonals are
    processed in order starting from ``start_diagonal``.  The result is
    always maximal: every request pair lies on some diagonal, and when
    its diagonal is processed it is matched unless its row or column
    was already taken.
    """
    matrix = as_request_matrix(requests)
    n = matrix.shape[0]
    row_free = np.ones(n, dtype=bool)
    col_free = np.ones(n, dtype=bool)
    pairs: List[Tuple[int, int]] = []
    for step in range(n):
        d = (start_diagonal + step) % n
        for i in range(n):
            j = (d - i) % n
            if matrix[i, j] and row_free[i] and col_free[j]:
                pairs.append((i, j))
                row_free[i] = False
                col_free[j] = False
    return Matching.from_pairs(pairs)


class WavefrontScheduler:
    """Stateful wavefront scheduler; the start diagonal rotates per slot."""

    name = "wavefront"

    def __init__(self) -> None:
        self._start = 0

    def schedule(self, requests: np.ndarray) -> Matching:
        """Return this slot's matching and rotate the priority diagonal."""
        matrix = as_request_matrix(requests)
        matching = wavefront_match(matrix, self._start)
        self._start = (self._start + 1) % max(matrix.shape[0], 1)
        return matching

    def reset(self) -> None:
        """Reset the rotating diagonal."""
        self._start = 0

    def __repr__(self) -> str:
        return "WavefrontScheduler()"
