"""Statistical Matching (Section 5, Appendix C).

Statistical matching generalizes PIM by *weighting the dice*: the
allocatable bandwidth of each link is divided into ``X`` discrete
units, ``X[i, j]`` of which are allocated to traffic from input i to
output j.  Each slot, independently:

1. **Grant.**  Output j grants input i with probability ``X[i, j]/X``
   (with the residual probability it grants its *imaginary* input,
   i.e. nobody) -- a table lookup in hardware.
2. **Virtual-grant reinterpretation.**  A granted input i re-draws the
   grant from output j as ``m`` *virtual grants*, distributed so that
   unconditionally ``m ~ Binomial(X[i, j], 1/X)`` -- as if each of the
   X[i, j] allocated units had been granted independently.  An
   under-reserved input also draws ``Binomial(X_i0, 1/X)`` virtual
   grants from its imaginary output.
3. **Accept.**  The input accepts one virtual grant uniformly (an
   imaginary pick means it stays unmatched).

The result (Appendix C): input i connects to output j with probability
``X[i, j]/X * (1 - ((X-1)/X)^X)`` -- at least ``(1 - 1/e) ~ 63%`` of
its allocation -- in one round, and at least
``(1 - 1/e)(1 + 1/e^2) ~ 72%`` with a second independent round whose
matches are kept where both endpoints were left unmatched.  Slots not
used by statistical matching can be filled by ordinary PIM.

Unlike the Slepian-Duguid frame schedule (Section 4), changing a rate
here touches only the two ports involved -- the property that makes
statistical matching suitable for rapidly-changing allocations and for
fairness enforcement (Figure 8).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.matching import Matching, as_request_matrix
from repro.core.pim import pim_match

__all__ = [
    "StatisticalMatcher",
    "virtual_grant_pmf",
    "binomial_decoy_pmf",
    "cumulative_table",
    "grant_cdf_table",
]


#: Relative tolerance of the tail-sum sanity check in
#: :func:`virtual_grant_pmf`.  With log-space term evaluation each
#: term carries only a few ulp of error, so even the X = 10^4 tail
#: (thousands of terms) stays well inside 1e-12; a tail exceeding 1 by
#: more than this indicates a genuine formula bug rather than float
#: round-off.
_PMF_TAIL_TOLERANCE = 1e-12


def virtual_grant_pmf(x_ij: int, x_total: int) -> np.ndarray:
    """Conditional virtual-grant distribution for a granted input.

    Returns the vector ``p[m]`` for m = 0..x_ij with, per Appendix C::

        p[m] = C(x_ij, m) (1/X)^m ((X-1)/X)^(x_ij-m) * X / x_ij   (m >= 1)
        p[0] = 1 - sum(p[1:])

    so that grant-probability x_ij/X times this conditional equals the
    unconditional Binomial(x_ij, 1/X) for every m >= 1.

    Terms are evaluated in log space: the direct product overflows
    (``C(x_ij, m)`` exceeds float range around x_ij ~ 1030) and
    underflows (``(1/X)^m`` hits 0 near m ~ 308 for X = 10^4) long
    before the paper-scale allocations of X = 10^4 units, and the old
    ``p[0] = max(0.0, 1 - tail)`` clamp silently hid any tail-sum
    error those extremes produced.  The log-gamma form keeps every
    term finite, and the tail-sum check is correspondingly tightened
    to :data:`_PMF_TAIL_TOLERANCE`.
    """
    if x_ij < 1:
        raise ValueError(f"x_ij must be >= 1, got {x_ij}")
    if x_total < x_ij:
        raise ValueError(f"x_total ({x_total}) must be >= x_ij ({x_ij})")
    p = np.zeros(x_ij + 1)
    log_q = math.log1p(-1.0 / x_total) if x_total > 1 else -math.inf
    log_unit = math.log(x_total)  # log(1/X) = -log_unit
    log_scale = math.log(x_total) - math.log(x_ij)  # the X / x_ij factor
    lgamma = math.lgamma
    for m in range(1, x_ij + 1):
        log_comb = (
            lgamma(x_ij + 1) - lgamma(m + 1) - lgamma(x_ij - m + 1)
        )
        # 0 * log(0) would be nan for the x_total == 1, m == x_ij
        # corner; the mathematically-right value of q^0 is 1.
        log_tail_factor = (x_ij - m) * log_q if m < x_ij else 0.0
        log_term = log_comb - m * log_unit + log_tail_factor + log_scale
        p[m] = math.exp(log_term)
    tail = p[1:].sum()
    if tail > 1.0 + _PMF_TAIL_TOLERANCE:
        raise AssertionError(f"virtual-grant pmf exceeds 1: {tail}")
    p[0] = max(0.0, 1.0 - tail)
    return p


def binomial_decoy_pmf(slack: int, x_total: int) -> np.ndarray:
    """Binomial(slack, 1/X) pmf for the imaginary-output decoy draw.

    An under-reserved input holds ``slack = X - sum_j X[i, j]`` units
    on its imaginary output; each is granted independently with
    probability 1/X, so the decoy count is plain Binomial(slack, 1/X)
    (Appendix C).  Evaluated in log space like
    :func:`virtual_grant_pmf` so paper-scale X = 10^4 stays finite.
    """
    if slack < 0:
        raise ValueError(f"slack must be >= 0, got {slack}")
    if x_total < 1:
        raise ValueError(f"x_total must be >= 1, got {x_total}")
    p = np.zeros(slack + 1)
    if slack == 0:
        p[0] = 1.0
        return p
    log_q = math.log1p(-1.0 / x_total) if x_total > 1 else -math.inf
    log_unit = math.log(x_total)  # log(1/X) = -log_unit
    lgamma = math.lgamma
    for m in range(slack + 1):
        log_comb = lgamma(slack + 1) - lgamma(m + 1) - lgamma(slack - m + 1)
        # 0 * log(0) would be nan for the x_total == 1, m == slack
        # corner; the mathematically-right value of q^0 is 1.
        log_tail_factor = (slack - m) * log_q if m < slack else 0.0
        p[m] = math.exp(log_comb - m * log_unit + log_tail_factor)
    total = p.sum()
    if abs(total - 1.0) > _PMF_TAIL_TOLERANCE:
        raise AssertionError(f"decoy pmf does not sum to 1: {total}")
    return p


def cumulative_table(pmf: np.ndarray) -> np.ndarray:
    """Inverse-transform table for a pmf: the normalized cdf.

    ``np.searchsorted(cdf, u, side="right")`` with ``u ~ U[0, 1)``
    then draws from the pmf with one uniform: the final entry is
    exactly 1.0 (the cdf is divided by its last partial sum), so the
    index is always in range, and zero-mass entries -- whose cdf value
    ties the previous entry -- are never selected.  Both backends draw
    through tables built by this function, which is what makes their
    streams comparable draw for draw.
    """
    cdf = np.cumsum(np.asarray(pmf, dtype=float))
    if cdf[-1] <= 0.0:
        raise ValueError("pmf has no mass")
    return cdf / cdf[-1]


def grant_cdf_table(allocations: np.ndarray, units: int) -> np.ndarray:
    """Per-output grant cdf rows over inputs 0..N-1 plus the imaginary
    input at index N (the compiled form of the Section 5 'table
    lookup'): row j inverts ``P(output j grants input i) = X[i,j]/X``.
    """
    matrix = np.asarray(allocations, dtype=np.int64)
    n = matrix.shape[0]
    tables = np.zeros((n, n + 1))
    for j in range(n):
        col = matrix[:, j].astype(float) / units
        tables[j, :n] = col
        tables[j, n] = 1.0 - col.sum()
        tables[j] = cumulative_table(tables[j])
    return tables


class StatisticalMatcher:
    """Statistical matching over an integer allocation matrix.

    Parameters
    ----------
    allocations:
        N x N non-negative integer matrix; ``allocations[i, j]`` is the
        number of bandwidth units reserved from input i to output j.
    units:
        X, the number of units each link's allocatable bandwidth is
        divided into.  Every row and column of ``allocations`` must sum
        to at most ``units``.
    rounds:
        Independent grant/accept rounds per slot (the paper shows 2
        captures nearly all the benefit).
    seed:
        Seed for this matcher's private random streams.  ``None``
        falls back to the deterministic :mod:`repro.sim.rng` policy so
        identical configs are replayable.  The statistical
        grant/accept draws and the PIM fill phase consume *separate*
        streams derived from this seed: the statistical draws of a
        ``fill=True`` matcher are therefore identical, draw for draw,
        to those of a ``fill=False`` matcher with the same seed -- the
        coupling behind the differential harness's metamorphic check
        that filling never carries less.
    fill:
        When True, slots and ports left idle by statistical matching
        are filled with ordinary PIM over the remaining requests
        (Section 5.2: "Any slot not used by statistical matching can be
        filled with other traffic by parallel iterative matching").
    fill_iterations:
        PIM iteration budget for the fill phase.

    The matcher can be used standalone (:meth:`match`, no queue state
    needed -- useful for the Appendix C throughput bench) or as a
    switch scheduler (:meth:`schedule`, which drops statistical matches
    that have no queued cell and then PIM-fills).
    """

    name = "statistical"

    def __init__(
        self,
        allocations: np.ndarray,
        units: int,
        rounds: int = 2,
        seed: Optional[int] = None,
        fill: bool = False,
        fill_iterations: int = 4,
    ):
        if units < 1:
            raise ValueError(f"units must be >= 1, got {units}")
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        matrix = np.asarray(allocations, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"allocations must be square, got shape {matrix.shape}")
        if (matrix < 0).any():
            raise ValueError("allocations must be non-negative")
        self._check_feasible(matrix, units)
        self.units = units
        self.rounds = rounds
        self.fill = fill
        self.fill_iterations = fill_iterations
        if seed is None:
            # Deterministic fallback (repro.sim.rng default-seed
            # policy); imported lazily to dodge the sim <-> core cycle.
            from repro.sim.rng import default_seed

            seed = default_seed("statistical")
        # The fill phase draws from its own derived stream so that the
        # statistical draws are a pure function of (seed, slot index),
        # independent of whether filling is enabled.
        from repro.sim.rng import derive_seed

        self._seed = seed
        self._fill_seed = derive_seed(seed, "statistical/fill")
        self._rng = np.random.default_rng(self._seed)
        self._fill_rng = np.random.default_rng(self._fill_seed)
        self._alloc = matrix
        self._pmf_cache: Dict[int, np.ndarray] = {}
        self._virtual_cdf_cache: Dict[int, np.ndarray] = {}
        self._decoy_cdf_cache: Dict[int, np.ndarray] = {}
        self._probe = None
        self._rebuild_tables()

    @staticmethod
    def _check_feasible(matrix: np.ndarray, units: int) -> None:
        rows = matrix.sum(axis=1)
        cols = matrix.sum(axis=0)
        if (rows > units).any():
            bad = int(np.argmax(rows > units))
            raise ValueError(
                f"input {bad} over-allocated: {int(rows[bad])} units > X = {units}"
            )
        if (cols > units).any():
            bad = int(np.argmax(cols > units))
            raise ValueError(
                f"output {bad} over-allocated: {int(cols[bad])} units > X = {units}"
            )

    def _rebuild_tables(self) -> None:
        """Precompute the hardware 'table lookup' distributions.

        ``_grant_cdf`` row j is the inverse-transform table for output
        j's grant draw; ``_slack`` caches each input's imaginary-output
        units.  The fast-path backend compiles its tables through the
        same module functions, so the two backends invert bitwise
        identical arrays.
        """
        n = self._alloc.shape[0]
        self._grant_cdf = grant_cdf_table(self._alloc, self.units)
        self._slack = self.units - self._alloc.sum(axis=1)

    @property
    def ports(self) -> int:
        """Switch size N."""
        return self._alloc.shape[0]

    @property
    def allocations(self) -> np.ndarray:
        """Copy of the allocation matrix."""
        return self._alloc.copy()

    def set_allocation(self, input_port: int, output_port: int, allocation_units: int) -> None:
        """Change one connection's rate.

        This is the operation statistical matching makes cheap: "only
        the input and output ports used by a flow need be informed of a
        change in its rate" (Section 5.2).
        """
        if allocation_units < 0:
            raise ValueError("allocation must be non-negative")
        trial = self._alloc.copy()
        trial[input_port, output_port] = allocation_units
        self._check_feasible(trial, self.units)
        self._alloc = trial
        self._rebuild_tables()

    def _pmf(self, x_ij: int) -> np.ndarray:
        if x_ij not in self._pmf_cache:
            self._pmf_cache[x_ij] = virtual_grant_pmf(x_ij, self.units)
        return self._pmf_cache[x_ij]

    def _virtual_cdf(self, x_ij: int) -> np.ndarray:
        """Inverse-transform table for the virtual-grant draw."""
        if x_ij not in self._virtual_cdf_cache:
            self._virtual_cdf_cache[x_ij] = cumulative_table(self._pmf(x_ij))
        return self._virtual_cdf_cache[x_ij]

    def _decoy_cdf(self, slack: int) -> np.ndarray:
        """Inverse-transform table for the imaginary-output decoy draw."""
        if slack not in self._decoy_cdf_cache:
            self._decoy_cdf_cache[slack] = cumulative_table(
                binomial_decoy_pmf(slack, self.units)
            )
        return self._decoy_cdf_cache[slack]

    def _one_round(self) -> Tuple[List[Tuple[int, int]], int, int, int]:
        """One grant / virtual-grant / accept round.

        Returns ``(pairs, granted, virtual_total, decoys)`` where
        ``pairs`` are the accepted (input, output) matches and the
        counts feed the per-round ``stat_round`` trace event.

        Every random decision is a plain uniform inverted through a
        precompiled cumulative table, drawn in four fixed-order vector
        passes (grants by ascending output, virtual-grant counts by
        ascending granted output, decoys by ascending under-reserved
        input, accept picks by ascending active input).  The batched
        fast path (:mod:`repro.sim.fastpath_statistical`) consumes its
        generator in exactly this order with (B, ...) draws, so at
        B = 1 with a shared seed the two backends agree draw for draw
        -- the contract the differential harness checks.
        """
        n = self.ports
        rng = self._rng
        # Pass 1: each output grants one input (or, at index N, its
        # imaginary input -- nobody).
        u_grant = rng.random(n)
        granted_input = [
            int(np.searchsorted(self._grant_cdf[j], u_grant[j], side="right"))
            for j in range(n)
        ]
        # Pass 2: granted inputs re-draw each grant as m virtual grants.
        real_outputs = [j for j in range(n) if granted_input[j] < n]
        u_virtual = rng.random(len(real_outputs))
        virtual: List[Dict[int, int]] = [dict() for _ in range(n)]
        virtual_total = 0
        for k, j in enumerate(real_outputs):
            i = granted_input[j]
            x_ij = int(self._alloc[i, j])
            m = int(np.searchsorted(self._virtual_cdf(x_ij), u_virtual[k], side="right"))
            if m > 0:
                virtual[i][j] = m
                virtual_total += m
        # Pass 3: under-reserved inputs draw Binomial(slack, 1/X)
        # virtual grants from their imaginary output (decoys).
        slack_inputs = [i for i in range(n) if self._slack[i] > 0]
        u_decoy = rng.random(len(slack_inputs))
        imaginary = [0] * n
        for k, i in enumerate(slack_inputs):
            imaginary[i] = int(
                np.searchsorted(
                    self._decoy_cdf(int(self._slack[i])), u_decoy[k], side="right"
                )
            )
        # Pass 4: each input accepts one virtual grant uniformly; a
        # pick falling in the imaginary decoys leaves it unmatched.
        totals = [sum(virtual[i].values()) + imaginary[i] for i in range(n)]
        active_inputs = [i for i in range(n) if totals[i] > 0]
        u_pick = rng.random(len(active_inputs))
        pairs: List[Tuple[int, int]] = []
        for k, i in enumerate(active_inputs):
            pick = int(u_pick[k] * totals[i])
            for j, m in virtual[i].items():  # insertion order: ascending j
                if pick < m:
                    pairs.append((i, j))
                    break
                pick -= m
            # Falling through means the imaginary output won: unmatched.
        return pairs, len(real_outputs), virtual_total, sum(imaginary)

    def match(self) -> Matching:
        """Compute one slot's statistical matching (no queue state).

        Round 2 (and later) matches are kept only when both endpoints
        were left unmatched by earlier rounds; per Appendix C, a
        round-2 conflict with an *imaginary* match does not discard the
        round-2 pair (imaginary matches leave the port physically idle).
        """
        matched_inputs: Dict[int, int] = {}
        matched_outputs: Dict[int, int] = {}
        probe = self._probe
        for round_index in range(self.rounds):
            pairs, granted, virtual_total, decoys = self._one_round()
            kept = 0
            for i, j in pairs:
                if i in matched_inputs or j in matched_outputs:
                    continue
                matched_inputs[i] = j
                matched_outputs[j] = i
                kept += 1
            if probe is not None and probe.enabled:
                probe.stat_round(
                    round_index,
                    granted=granted,
                    virtual=virtual_total,
                    decoys=decoys,
                    accepted=len(pairs),
                    kept=kept,
                    matched=len(matched_inputs),
                    replicas=1,
                )
        return Matching.from_pairs(matched_inputs.items())

    def schedule(self, requests: np.ndarray) -> Matching:
        """Switch-scheduler entry point.

        Statistical matches lacking a queued cell are released (the
        reserved slot is idle), and -- when ``fill`` is on -- idle
        ports are handed to PIM over the remaining requests.
        """
        matrix = as_request_matrix(requests)
        if matrix.shape[0] != self.ports:
            raise ValueError(
                f"request matrix is {matrix.shape[0]}x{matrix.shape[0]}, "
                f"allocations are {self.ports}x{self.ports}"
            )
        pairs = [(i, j) for i, j in self.match() if matrix[i, j]]
        if not self.fill:
            return Matching.from_pairs(pairs)
        taken_inputs = {i for i, _ in pairs}
        taken_outputs = {j for _, j in pairs}
        residual = matrix.copy()
        for i in taken_inputs:
            residual[i, :] = False
        for j in taken_outputs:
            residual[:, j] = False
        fill_result = pim_match(residual, self._fill_rng, iterations=self.fill_iterations)
        return Matching.from_pairs(pairs + list(fill_result.matching.pairs))

    def attach_probe(self, probe) -> None:
        """Attach a :class:`repro.obs.probe.Probe` for per-round
        telemetry.

        While enabled, :meth:`match` emits one ``stat_round`` event per
        grant/accept round (granted outputs, virtual-grant and decoy
        totals, accepted and kept pairs) -- the series the differential
        harness diffs against the fast-path backend.  Pass ``None`` to
        detach.
        """
        self._probe = probe

    def reset(self) -> None:
        """Restore both random streams to their as-constructed state.

        The matcher's only cross-slot state is its two generators (the
        statistical grant/accept stream and the derived PIM fill
        stream); re-deriving them from the stored seeds makes a rerun
        of the same matcher replay the first run draw for draw, the
        same contract ``PIMScheduler.reset()`` honors.
        """
        self._rng = np.random.default_rng(self._seed)
        self._fill_rng = np.random.default_rng(self._fill_seed)

    def __repr__(self) -> str:
        return (
            f"StatisticalMatcher(ports={self.ports}, units={self.units}, "
            f"rounds={self.rounds}, fill={self.fill})"
        )
