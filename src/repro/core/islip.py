"""iSLIP: the round-robin-pointer descendant of PIM.

The paper notes (Section 3.3) that PIM's behaviour "is relatively
insensitive to the technique used to approximate randomness".
McKeown's iSLIP (1995, directly inspired by this paper) replaces the
random grant/accept choices with rotating round-robin pointers that
advance *only when a grant is accepted in the first iteration*; the
pointers desynchronize under load and deliver near-100% throughput on
uniform traffic with one iteration's less work.

Included here as the natural extension/ablation target: the
``benchmarks/test_ablation_arbiter_policies.py`` bench compares PIM,
iSLIP, and wavefront arbitration on the paper's workloads.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.matching import Matching, as_request_matrix

__all__ = ["ISLIPScheduler", "islip_match", "validate_pointer_array"]


def validate_pointer_array(pointers: np.ndarray, n: int, name: str) -> np.ndarray:
    """Validate a round-robin pointer array that will be mutated in place.

    The pointer-carrying matchers (iSLIP, RRM) advance caller-provided
    arrays in place so a stateful scheduler carries desynchronization
    state across slots.  Writing ``(i + 1) % n`` into an array of the
    wrong dtype silently truncates or rounds (float arrays accept the
    store but corrupt later modular arithmetic on mixed types), so
    anything that is not an int64 array of shape ``(n,)`` with values
    in ``[0, n)`` is rejected outright -- a silent copy-convert would
    break the in-place mutation contract instead.

    Returns the validated array unchanged.
    """
    array = np.asarray(pointers)
    if array is not pointers:
        raise ValueError(
            f"{name} must be a numpy array (it is mutated in place), "
            f"got {type(pointers).__name__}"
        )
    if array.dtype != np.int64:
        raise ValueError(
            f"{name} must have dtype int64 (in-place pointer updates), "
            f"got {array.dtype}"
        )
    if array.shape != (n,):
        raise ValueError(f"{name} must have shape ({n},), got {array.shape}")
    if n and ((array < 0) | (array >= n)).any():
        raise ValueError(f"{name} values must be in [0, {n}), got {array.tolist()}")
    return array


def islip_match(
    requests: np.ndarray,
    grant_pointers: np.ndarray,
    accept_pointers: np.ndarray,
    iterations: int = 1,
) -> Matching:
    """One slot of iSLIP.

    Parameters
    ----------
    requests:
        N x N boolean request matrix.
    grant_pointers, accept_pointers:
        Per-output and per-input round-robin pointers; **mutated in
        place** according to the iSLIP update rule (advance one past the
        chosen port, only on an accepted grant, only in iteration 1).
        Must be int64 arrays of shape ``(N,)`` with values in
        ``[0, N)``; anything else is rejected with ``ValueError``
        rather than silently mutated (see
        :func:`validate_pointer_array`).
    iterations:
        Request/grant/accept rounds per slot.
    """
    matrix = as_request_matrix(requests)
    n = matrix.shape[0]
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    validate_pointer_array(grant_pointers, n, "grant_pointers")
    validate_pointer_array(accept_pointers, n, "accept_pointers")
    input_matched = np.zeros(n, dtype=bool)
    output_matched = np.zeros(n, dtype=bool)
    pairs: List[Tuple[int, int]] = []

    for iteration in range(iterations):
        active = matrix & ~input_matched[:, None] & ~output_matched[None, :]
        if not active.any():
            break
        # Grant: each unmatched output picks the first requesting input
        # at/after its pointer.
        grants_to: List[Optional[int]] = [None] * n
        for j in range(n):
            if output_matched[j]:
                continue
            requesters = np.nonzero(active[:, j])[0]
            if requesters.size == 0:
                continue
            offsets = (requesters - grant_pointers[j]) % n
            grants_to[j] = int(requesters[offsets.argmin()])
        # Accept: each input picks the first granting output at/after
        # its pointer.
        for i in range(n):
            if input_matched[i]:
                continue
            granting = np.array([j for j in range(n) if grants_to[j] == i], dtype=np.int64)
            if granting.size == 0:
                continue
            offsets = (granting - accept_pointers[i]) % n
            j = int(granting[offsets.argmin()])
            pairs.append((i, j))
            input_matched[i] = True
            output_matched[j] = True
            if iteration == 0:
                # The iSLIP pointer rule: advance only on first-iteration
                # accepts; this is what desynchronizes the arbiters.
                grant_pointers[j] = (i + 1) % n
                accept_pointers[i] = (j + 1) % n
    return Matching.from_pairs(pairs)


class ISLIPScheduler:
    """Stateful iSLIP scheduler (pointers persist across slots).

    The pointer arrays are sized by the first request matrix seen.  A
    *different*-sized matrix later in the run raises ``ValueError``:
    silently reallocating zeroed pointers mid-run (the old behaviour)
    corrupts the desynchronization state that iSLIP's throughput rests
    on, and does so invisibly.  Call :meth:`reset` first when a size
    change is genuinely intended.
    """

    name = "islip"

    def __init__(self, iterations: int = 1, ports: Optional[int] = None):
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.iterations = iterations
        self._grant_pointers: Optional[np.ndarray] = None
        self._accept_pointers: Optional[np.ndarray] = None
        if ports is not None:
            self._allocate(ports)

    def _allocate(self, n: int) -> None:
        self._grant_pointers = np.zeros(n, dtype=np.int64)
        self._accept_pointers = np.zeros(n, dtype=np.int64)

    def schedule(self, requests: np.ndarray) -> Matching:
        """Return this slot's matching and advance the pointers."""
        matrix = as_request_matrix(requests)
        n = matrix.shape[0]
        if self._grant_pointers is None:
            self._allocate(n)
        elif self._grant_pointers.shape[0] != n:
            raise ValueError(
                f"request matrix is {n}x{n} but pointers were sized for "
                f"{self._grant_pointers.shape[0]} ports; a mid-run size "
                f"change would silently reset iSLIP's pointer state -- "
                f"call reset() first if the change is intended"
            )
        return islip_match(matrix, self._grant_pointers, self._accept_pointers, self.iterations)

    def reset(self) -> None:
        """Return all pointers to zero."""
        self._grant_pointers = None
        self._accept_pointers = None

    def __repr__(self) -> str:
        return f"ISLIPScheduler(iterations={self.iterations})"
