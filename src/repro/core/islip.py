"""iSLIP: the round-robin-pointer descendant of PIM.

The paper notes (Section 3.3) that PIM's behaviour "is relatively
insensitive to the technique used to approximate randomness".
McKeown's iSLIP (1995, directly inspired by this paper) replaces the
random grant/accept choices with rotating round-robin pointers that
advance *only when a grant is accepted in the first iteration*; the
pointers desynchronize under load and deliver near-100% throughput on
uniform traffic with one iteration's less work.

Included here as the natural extension/ablation target: the
``benchmarks/test_ablation_arbiter_policies.py`` bench compares PIM,
iSLIP, and wavefront arbitration on the paper's workloads.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.batch import BatchScheduler
from repro.core.matching import Matching, as_request_matrix

__all__ = [
    "BatchISLIPScheduler",
    "ISLIPScheduler",
    "islip_match",
    "validate_pointer_array",
]


def validate_pointer_array(pointers: np.ndarray, n: int, name: str) -> np.ndarray:
    """Validate a round-robin pointer array that will be mutated in place.

    The pointer-carrying matchers (iSLIP, RRM) advance caller-provided
    arrays in place so a stateful scheduler carries desynchronization
    state across slots.  Writing ``(i + 1) % n`` into an array of the
    wrong dtype silently truncates or rounds (float arrays accept the
    store but corrupt later modular arithmetic on mixed types), so
    anything that is not an int64 array of shape ``(n,)`` with values
    in ``[0, n)`` is rejected outright -- a silent copy-convert would
    break the in-place mutation contract instead.

    Returns the validated array unchanged.
    """
    array = np.asarray(pointers)
    if array is not pointers:
        raise ValueError(
            f"{name} must be a numpy array (it is mutated in place), "
            f"got {type(pointers).__name__}"
        )
    if array.dtype != np.int64:
        raise ValueError(
            f"{name} must have dtype int64 (in-place pointer updates), "
            f"got {array.dtype}"
        )
    if array.shape != (n,):
        raise ValueError(f"{name} must have shape ({n},), got {array.shape}")
    if n and ((array < 0) | (array >= n)).any():
        raise ValueError(f"{name} values must be in [0, {n}), got {array.tolist()}")
    return array


def islip_match(
    requests: np.ndarray,
    grant_pointers: np.ndarray,
    accept_pointers: np.ndarray,
    iterations: int = 1,
) -> Matching:
    """One slot of iSLIP.

    Parameters
    ----------
    requests:
        N x N boolean request matrix.
    grant_pointers, accept_pointers:
        Per-output and per-input round-robin pointers; **mutated in
        place** according to the iSLIP update rule (advance one past the
        chosen port, only on an accepted grant, only in iteration 1).
        Must be int64 arrays of shape ``(N,)`` with values in
        ``[0, N)``; anything else is rejected with ``ValueError``
        rather than silently mutated (see
        :func:`validate_pointer_array`).
    iterations:
        Request/grant/accept rounds per slot.
    """
    matrix = as_request_matrix(requests)
    n = matrix.shape[0]
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    validate_pointer_array(grant_pointers, n, "grant_pointers")
    validate_pointer_array(accept_pointers, n, "accept_pointers")
    input_matched = np.zeros(n, dtype=bool)
    output_matched = np.zeros(n, dtype=bool)
    pairs: List[Tuple[int, int]] = []

    for iteration in range(iterations):
        active = matrix & ~input_matched[:, None] & ~output_matched[None, :]
        if not active.any():
            break
        # Grant: each unmatched output picks the first requesting input
        # at/after its pointer.
        grants_to: List[Optional[int]] = [None] * n
        for j in range(n):
            if output_matched[j]:
                continue
            requesters = np.nonzero(active[:, j])[0]
            if requesters.size == 0:
                continue
            offsets = (requesters - grant_pointers[j]) % n
            grants_to[j] = int(requesters[offsets.argmin()])
        # Accept: each input picks the first granting output at/after
        # its pointer.
        for i in range(n):
            if input_matched[i]:
                continue
            granting = np.array([j for j in range(n) if grants_to[j] == i], dtype=np.int64)
            if granting.size == 0:
                continue
            offsets = (granting - accept_pointers[i]) % n
            j = int(granting[offsets.argmin()])
            pairs.append((i, j))
            input_matched[i] = True
            output_matched[j] = True
            if iteration == 0:
                # The iSLIP pointer rule: advance only on first-iteration
                # accepts; this is what desynchronizes the arbiters.
                grant_pointers[j] = (i + 1) % n
                accept_pointers[i] = (j + 1) % n
    return Matching.from_pairs(pairs)


class ISLIPScheduler:
    """Stateful iSLIP scheduler (pointers persist across slots).

    The pointer arrays are sized by the first request matrix seen.  A
    *different*-sized matrix later in the run raises ``ValueError``:
    silently reallocating zeroed pointers mid-run (the old behaviour)
    corrupts the desynchronization state that iSLIP's throughput rests
    on, and does so invisibly.  Call :meth:`reset` first when a size
    change is genuinely intended.
    """

    name = "islip"

    def __init__(self, iterations: int = 1, ports: Optional[int] = None):
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.iterations = iterations
        self._grant_pointers: Optional[np.ndarray] = None
        self._accept_pointers: Optional[np.ndarray] = None
        if ports is not None:
            self._allocate(ports)

    def _allocate(self, n: int) -> None:
        self._grant_pointers = np.zeros(n, dtype=np.int64)
        self._accept_pointers = np.zeros(n, dtype=np.int64)

    def schedule(self, requests: np.ndarray) -> Matching:
        """Return this slot's matching and advance the pointers."""
        matrix = as_request_matrix(requests)
        n = matrix.shape[0]
        if self._grant_pointers is None:
            self._allocate(n)
        elif self._grant_pointers.shape[0] != n:
            raise ValueError(
                f"request matrix is {n}x{n} but pointers were sized for "
                f"{self._grant_pointers.shape[0]} ports; a mid-run size "
                f"change would silently reset iSLIP's pointer state -- "
                f"call reset() first if the change is intended"
            )
        return islip_match(matrix, self._grant_pointers, self._accept_pointers, self.iterations)

    def reset(self) -> None:
        """Return all pointers to zero."""
        self._grant_pointers = None
        self._accept_pointers = None

    def __repr__(self) -> str:
        return f"ISLIPScheduler(iterations={self.iterations})"


class BatchISLIPScheduler(BatchScheduler):
    """iSLIP vectorized over B independent switch replicas.

    Implements the :class:`repro.core.batch.BatchScheduler` protocol
    with per-(replica, port) grant and accept pointer arrays.  The
    kernel is fully deterministic, so at B = 1 it is pointer-for-
    pointer and match-for-match identical to
    :func:`islip_match` driven by :class:`ISLIPScheduler`:

    - **grant**: each output with capacity left picks the requesting
      input with the smallest offset ``(i - grant_ptr) % N`` -- an
      argmin over the offset cube with the sentinel N marking inactive
      entries, exactly the object kernel's first-at/after-pointer scan;
    - **accept**: each granted input symmetrically picks the smallest
      ``(j - accept_ptr) % N`` among its grants;
    - **pointer rule**: pointers advance one past the accepted port,
      only for pairs accepted in the *first* iteration (the
      desynchronization rule), matching the object update order because
      grants never collide within an iteration.

    Parameters
    ----------
    replicas, ports:
        Batch shape B and switch size N.
    iterations:
        Request/grant/accept rounds per slot; ``None`` runs each slot
        to convergence (at most N rounds -- every round with an
        unresolved request accepts at least one pair).
    output_capacity:
        Matches each output may take per slot (k-grant generalization;
        the object kernel corresponds to k = 1).
    """

    name = "islip_batch"

    def __init__(
        self,
        replicas: int,
        ports: int,
        iterations: Optional[int] = 1,
        output_capacity: int = 1,
    ):
        super().__init__(replicas, ports, output_capacity=output_capacity)
        if iterations is not None and iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.iterations = iterations
        self._grant_pointers = np.zeros((replicas, ports), dtype=np.int64)
        self._accept_pointers = np.zeros((replicas, ports), dtype=np.int64)

    def schedule(
        self, requests: np.ndarray, occupancy: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Compute one slot's matchings for all replicas.

        ``occupancy`` is ignored (iSLIP is occupancy-blind); accepted
        for protocol signature uniformity.  Returns the ``(B, N)``
        match array of the :class:`~repro.core.batch.BatchScheduler`
        contract.
        """
        batch = self._validate_batch(requests)
        b, n, _ = batch.shape
        match = np.full((b, n), -1, dtype=np.int64)
        output_slots = np.full((b, n), self.output_capacity, dtype=np.int64)
        arange_n = np.arange(n)
        executed = 0
        while self.iterations is None or executed < self.iterations:
            active = (
                batch & (match < 0)[:, :, None] & (output_slots > 0)[:, None, :]
            )
            if not active.any():
                break
            executed += 1
            # Grant: offsets[b, i, j] = (i - grant_ptr[b, j]) % n, with
            # the sentinel n on inactive entries so argmin always lands
            # on a genuine request when one exists.
            g_off = (arange_n[None, :, None] - self._grant_pointers[:, None, :]) % n
            g_off = np.where(active, g_off, n)
            grant_input = g_off.argmin(axis=1)          # (B, N) per output
            has_request = active.any(axis=1)            # (B, N)
            grants = np.zeros_like(active)
            bb, jj = np.nonzero(has_request)
            grants[bb, grant_input[bb, jj], jj] = True
            # Accept: symmetric argmin over (j - accept_ptr[b, i]) % n.
            a_off = (arange_n[None, None, :] - self._accept_pointers[:, :, None]) % n
            a_off = np.where(grants, a_off, n)
            accept_output = a_off.argmin(axis=2)        # (B, N) per input
            has_grant = grants.any(axis=2)              # (B, N)
            bb, ii = np.nonzero(has_grant)
            jj = accept_output[bb, ii]
            match[bb, ii] = jj
            # Each output grants at most once per iteration, so (bb, jj)
            # never repeats within a round: plain fancy indexing is safe.
            output_slots[bb, jj] -= 1
            if executed == 1:
                self._grant_pointers[bb, jj] = (ii + 1) % n
                self._accept_pointers[bb, ii] = (jj + 1) % n
        if self._probe is not None:
            self._probe.slot_iterations(executed)
        return match

    def reset(self) -> None:
        """Return all pointers to zero (no RNG: iSLIP is deterministic)."""
        self._grant_pointers = np.zeros((self.replicas, self.ports), dtype=np.int64)
        self._accept_pointers = np.zeros((self.replicas, self.ports), dtype=np.int64)

    def __repr__(self) -> str:
        its = "inf" if self.iterations is None else self.iterations
        return (
            f"BatchISLIPScheduler(replicas={self.replicas}, "
            f"ports={self.ports}, iterations={its})"
        )
