"""Parallel Iterative Matching (PIM) -- the paper's core algorithm.

Section 3.1: each cell slot, starting from an empty matching, the
switch iterates three phases until an iteration budget is spent (the
AN2 prototype uses **four** iterations) or the matching is maximal:

1. **Request.**  Each unmatched input requests *every* output for which
   it has a buffered cell.
2. **Grant.**  Each unmatched output that receives requests grants one,
   chosen **uniformly at random** -- the independent per-output
   randomness is what yields the O(log N) expected convergence
   (Appendix A).
3. **Accept.**  Each input that receives grants accepts one.  The paper
   requires the accept choice to be "round-robin or other fair" for
   starvation freedom (Section 3.4); both random and round-robin
   accept policies are provided.

Matches made in earlier iterations are retained; later iterations only
fill in the gaps, so the per-slot result is always a legal matching and
is maximal when run to completion.

The module provides:

- :func:`pim_match` -- one slot's matching for a single request matrix,
  with a per-iteration trace (used for Table 1 / Figure 2),
- :class:`BatchPIMScheduler` -- stateful PIM vectorized over B
  independent replicas at once; the matching kernel of the fast-path
  simulator (:mod:`repro.sim.fastpath`),
- :func:`pim_match_batch` -- stateless one-shot wrapper around
  :class:`BatchPIMScheduler` (used to regenerate Table 1 at the
  paper's sample sizes),
- :class:`PIMScheduler` -- the stateful scheduler object plugged into
  :class:`repro.switch.switch.CrossbarSwitch`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional, Tuple

import numpy as np

from repro.core.batch import (
    BatchScheduler,
    as_request_batch,
    replay_generator,
    resolve_generator,
)
from repro.core.matching import Matching, as_request_matrix

__all__ = [
    "PIMResult",
    "PIMIterationTrace",
    "pim_match",
    "pim_match_batch",
    "PIMScheduler",
    "BatchPIMScheduler",
]

AcceptPolicy = Literal["random", "round_robin"]

#: Iteration count of the AN2 prototype (Section 3.2).
AN2_ITERATIONS = 4

#: Smallest switch size at which the compact grant/accept key draw
#: pays for itself.  Below this, numpy per-call overhead of extracting
#: the active submatrix exceeds the cost of just drawing N*N uniforms
#: (measured crossover ~N=64; clear win from N=128 up).
_COMPACT_MIN_PORTS = 64


@dataclass(frozen=True)
class PIMIterationTrace:
    """What happened in one request/grant/accept iteration.

    Attributes are N x N boolean matrices (requests, grants) and a list
    of accepted (input, output) pairs; useful for rendering Figure 2's
    anatomy and for the Appendix A resolution-rate checks.
    """

    requests: np.ndarray
    grants: np.ndarray
    accepted: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class PIMResult:
    """Result of running PIM on one request matrix.

    Attributes
    ----------
    matching:
        The final matching.
    cumulative_sizes:
        ``cumulative_sizes[k]`` is the matching size after iteration
        k+1.  An empty request matrix executes no iteration at all but
        still reports ``cumulative_sizes == (0,)`` so the tuple is
        never empty; ``iterations`` is the authoritative count of
        request/grant/accept rounds actually run (0 in that case).
    completed:
        True when the final matching is maximal (the algorithm stopped
        because no unresolved request remained rather than because the
        iteration budget ran out).
    trace:
        Per-iteration traces when requested, else empty.
    iterations_run:
        Request/grant/accept rounds actually executed.  ``None`` (legacy
        constructions) falls back to ``len(cumulative_sizes)``.
    """

    matching: Matching
    cumulative_sizes: Tuple[int, ...]
    completed: bool
    trace: Tuple[PIMIterationTrace, ...] = ()
    iterations_run: Optional[int] = None

    @property
    def iterations(self) -> int:
        """Number of request/grant/accept iterations actually executed.

        Unlike ``len(cumulative_sizes)`` this is 0 for an empty request
        matrix, where no iteration runs but ``cumulative_sizes`` still
        holds the sentinel ``(0,)``.
        """
        if self.iterations_run is not None:
            return self.iterations_run
        return len(self.cumulative_sizes)


def _grant_phase(
    active: np.ndarray, rng: np.random.Generator, compact: bool = True
) -> np.ndarray:
    """Each output with pending requests grants one uniformly at random.

    ``active`` is the N x N matrix of unresolved requests.  Returns an
    N x N boolean grant matrix with at most one True per column.
    Choosing the argmax of i.i.d. uniform keys over the requesting
    inputs is a uniform choice among them.

    With ``compact`` (the default) random keys are drawn only over the
    submatrix of rows/columns that still carry a request; in later PIM
    iterations ``active`` is nearly empty, so this avoids generating
    N*N uniforms to resolve a handful of cells.  The compact path only
    engages from ``_COMPACT_MIN_PORTS`` up -- on small matrices the
    submatrix bookkeeping costs more than the uniforms it saves.
    ``compact=False`` forces the legacy full-matrix draw (same
    distribution, different random-stream consumption); the perf
    harness reports the delta.
    """
    grants = np.zeros_like(active)
    if compact and active.shape[0] >= _COMPACT_MIN_PORTS:
        rows = np.nonzero(active.any(axis=1))[0]
        cols = np.nonzero(active.any(axis=0))[0]
        if cols.size == 0:
            return grants
        sub = active[np.ix_(rows, cols)]
        # Adding the bool mask lifts requesting keys into [1, 2) above
        # non-requesting [0, 1): same argmax winner as masking with
        # -1.0, without the np.where temporary.  Every retained column
        # has at least one requester, so the argmax row is always a
        # genuine request.
        keys = rng.random(sub.shape)
        keys += sub
        grants[rows[keys.argmax(axis=0)], cols] = True
        return grants
    keys = np.where(active, rng.random(active.shape), -1.0)
    chosen = keys.argmax(axis=0)
    granted = keys.max(axis=0) >= 0.0
    cols = np.nonzero(granted)[0]
    grants[chosen[cols], cols] = True
    return grants


def _accept_random(
    grants: np.ndarray, rng: np.random.Generator, compact: bool = True
) -> List[Tuple[int, int]]:
    """Each input with grants accepts one uniformly at random.

    ``compact`` draws keys only over rows/columns that carry a grant,
    from ``_COMPACT_MIN_PORTS`` up (see :func:`_grant_phase`).
    """
    if compact and grants.shape[0] >= _COMPACT_MIN_PORTS:
        rows = np.nonzero(grants.any(axis=1))[0]
        cols = np.nonzero(grants.any(axis=0))[0]
        if rows.size == 0:
            return []
        sub = grants[np.ix_(rows, cols)]
        keys = rng.random(sub.shape)
        keys += sub
        chosen = keys.argmax(axis=1)
        return [(int(i), int(cols[c])) for i, c in zip(rows, chosen)]
    keys = np.where(grants, rng.random(grants.shape), -1.0)
    chosen = keys.argmax(axis=1)
    has_grant = keys.max(axis=1) >= 0.0
    return [(i, int(chosen[i])) for i in np.nonzero(has_grant)[0]]


def _accept_round_robin(grants: np.ndarray, pointers: np.ndarray) -> List[Tuple[int, int]]:
    """Each input accepts the first granted output at/after its pointer.

    The pointer advances one past the accepted output, giving the
    "round-robin or other fair fashion" accept of Section 3.4.
    ``pointers`` is mutated in place.
    """
    n = grants.shape[0]
    accepted = []
    for i in range(n):
        row = np.nonzero(grants[i])[0]
        if row.size == 0:
            continue
        offsets = (row - pointers[i]) % n
        j = int(row[offsets.argmin()])
        accepted.append((i, j))
        pointers[i] = (j + 1) % n
    return accepted


def pim_match(
    requests: np.ndarray,
    rng: np.random.Generator,
    iterations: Optional[int] = AN2_ITERATIONS,
    accept: AcceptPolicy = "random",
    accept_pointers: Optional[np.ndarray] = None,
    output_capacity: int = 1,
    keep_trace: bool = False,
    compact_draws: bool = True,
) -> PIMResult:
    """Run parallel iterative matching on one request matrix.

    Parameters
    ----------
    requests:
        N x N boolean matrix; ``requests[i, j]`` means input i has at
        least one queued cell for output j.
    rng:
        Random generator for the grant (and random-accept) choices.
    iterations:
        Iteration budget; ``None`` runs to completion (until maximal).
        The AN2 prototype uses 4 (Section 3.2).
    accept:
        ``"random"`` or ``"round_robin"`` input accept policy.
    accept_pointers:
        Round-robin pointers (length N int array), mutated in place so a
        stateful scheduler carries fairness across slots.  Ignored for
        the random policy; allocated fresh when needed and absent.
    output_capacity:
        The k-grant generalization of Section 3.1 for fabrics that can
        deliver k cells per output per slot: each output may grant (and
        be matched) up to k times.  Inputs still accept at most one
        grant per slot.  With k > 1 the result is a legal *b-matching*
        on the output side and is returned as plain pairs rather than a
        :class:`Matching`-validated object only when k == 1.
    keep_trace:
        Record per-iteration request/grant/accept matrices.
    compact_draws:
        Draw grant/accept random keys only over the rows/columns still
        in play (default).  ``False`` restores the legacy full-N*N
        draws per iteration -- identical distribution, but a different
        (and for sparse iterations much larger) random-stream
        consumption; kept for perf comparison in the bench harness.

    Returns a :class:`PIMResult`.  With ``output_capacity == 1`` the
    matching is always legal, and maximal whenever ``completed``.  An
    empty request matrix runs zero iterations (``iterations == 0``)
    and reports the sentinel ``cumulative_sizes == (0,)``.
    """
    matrix = as_request_matrix(requests)
    n = matrix.shape[0]
    if output_capacity < 1:
        raise ValueError(f"output_capacity must be >= 1, got {output_capacity}")
    if iterations is not None and iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if accept == "round_robin" and accept_pointers is None:
        accept_pointers = np.zeros(n, dtype=np.int64)

    input_matched = np.zeros(n, dtype=bool)
    output_slots = np.full(n, output_capacity, dtype=np.int64)
    pairs: List[Tuple[int, int]] = []
    sizes: List[int] = []
    traces: List[PIMIterationTrace] = []
    completed = False

    executed = 0
    while iterations is None or executed < iterations:
        active = matrix & ~input_matched[:, None] & (output_slots > 0)[None, :]
        if not active.any():
            completed = True
            break
        executed += 1
        grants = _grant_phase(active, rng, compact=compact_draws)
        if accept == "random":
            accepted = _accept_random(grants, rng, compact=compact_draws)
        elif accept == "round_robin":
            assert accept_pointers is not None
            accepted = _accept_round_robin(grants, accept_pointers)
        else:
            raise ValueError(f"unknown accept policy: {accept!r}")
        for i, j in accepted:
            pairs.append((i, j))
            input_matched[i] = True
            output_slots[j] -= 1
        sizes.append(len(pairs))
        if keep_trace:
            traces.append(PIMIterationTrace(active, grants, tuple(accepted)))

    if not sizes:
        # No iteration ran (empty request matrix): keep the (0,)
        # sentinel so cumulative_sizes is never empty, with the
        # explicit iterations_run == 0 convention.
        sizes.append(0)
    if not completed:
        # Budget exhausted; check whether we happen to be maximal anyway.
        active = matrix & ~input_matched[:, None] & (output_slots > 0)[None, :]
        completed = not active.any()

    # k > 1 legitimately matches an output up to k times (a b-matching
    # on the output side), which the default validator forbids.
    matching = Matching.from_pairs(pairs, validate_outputs=output_capacity == 1)
    return PIMResult(matching, tuple(sizes), completed, tuple(traces), executed)


# Backwards-compatible alias; the canonical validator lives with the
# BatchScheduler protocol in repro.core.batch.
_as_request_batch = as_request_batch


class BatchPIMScheduler(BatchScheduler):
    """Stateful PIM vectorized over B independent switch replicas.

    Runs the request/grant/accept rounds of Section 3.1 simultaneously
    on a ``(B, N, N)`` stack of request matrices -- one matrix per
    replica -- with every phase expressed as whole-array numpy work, so
    the per-slot cost is amortized across the batch.  This is the
    matching kernel of the fast-path simulator
    (:mod:`repro.sim.fastpath`) and the generalization of the one-shot
    :func:`pim_match_batch` helper; it carries the same cross-slot
    state as :class:`PIMScheduler`:

    - an **iteration budget** per slot (AN2 uses 4; ``None`` runs each
      slot to maximality, which needs at most N rounds since every
      round with unresolved requests matches at least one pair),
    - **round-robin accept pointers** per (replica, input) carried
      across slots for the Section 3.4 fairness guarantee,
    - an **output capacity** k, the k-grant generalization for
      replicated fabrics (outputs may be matched up to k times; inputs
      still accept at most one grant per slot).

    Iteration-count convention (as :func:`pim_match`): iterations are
    counted only when at least one unresolved request exists, so an
    all-empty request batch executes zero rounds; diagnostics then
    report the ``(B, 1)`` zero-size sentinel in
    ``last_cumulative_sizes`` with ``last_completed`` all True.

    Parameters
    ----------
    replicas, ports:
        Batch shape B and switch size N.
    iterations:
        Per-slot iteration budget; ``None`` = run to maximality.
    accept:
        ``"random"`` or ``"round_robin"`` input accept policy.
    seed / rng:
        Private random stream (``rng`` wins when both are given; it
        only needs a numpy-compatible ``random(shape)``).
    output_capacity:
        Grants (and matches) each output may take per slot.
    track_sizes:
        Record ``last_cumulative_sizes`` / ``last_completed``
        diagnostics (Table 1 needs them; the fast-path inner loop
        turns them off to save per-slot reductions).

    Examples
    --------
    >>> import numpy as np
    >>> sched = BatchPIMScheduler(replicas=3, ports=4, seed=0)
    >>> match = sched.schedule(np.ones((3, 4, 4), dtype=bool))
    >>> match.shape == (3, 4) and (match >= 0).all()  # perfect matches
    True
    """

    name = "pim_batch"

    def __init__(
        self,
        replicas: int,
        ports: int,
        iterations: Optional[int] = AN2_ITERATIONS,
        accept: AcceptPolicy = "random",
        seed: Optional[int] = None,
        output_capacity: int = 1,
        rng=None,
        track_sizes: bool = True,
    ):
        super().__init__(replicas, ports, output_capacity=output_capacity)
        if iterations is not None and iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        if accept not in ("random", "round_robin"):
            raise ValueError(f"unknown accept policy: {accept!r}")
        self.iterations = iterations
        self.accept = accept
        # Deterministic seed=None fallback (repro.sim.rng default-seed
        # policy): identical configs must be replayable.
        self._rng, self._rng_token = resolve_generator(seed, rng, "pim_batch")
        self._pointers = np.zeros((replicas, ports), dtype=np.int64)
        self.track_sizes = track_sizes
        #: (B, K) cumulative matching sizes of the last schedule() call
        #: (None when ``track_sizes`` is off).
        self.last_cumulative_sizes: Optional[np.ndarray] = None
        #: (B,) bool: which replicas reached a maximal match last slot.
        self.last_completed: Optional[np.ndarray] = None
        self._probe = None

    def attach_probe(self, probe) -> None:
        """Attach a :class:`repro.obs.probe.Probe` for per-iteration
        telemetry.

        On slots the probe samples, each request/grant/accept round
        emits one ``PimIteration`` event with counts pooled over all B
        replicas (``replicas=B``); the per-slot iteration count feeds
        the ``pim.iterations`` histogram.  Pass ``None`` to detach.
        The iteration-count convention matches :func:`pim_match`: an
        all-empty request batch runs zero rounds and emits no
        ``PimIteration`` events.
        """
        self._probe = probe

    def schedule(
        self, requests: np.ndarray, occupancy: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Compute one slot's matchings for all replicas.

        Parameters
        ----------
        requests:
            (B, N, N) boolean request batch.
        occupancy:
            Ignored (PIM is occupancy-blind); accepted for
            :class:`repro.core.batch.BatchScheduler` signature
            uniformity.

        Returns
        -------
        (B, N) int array ``match`` with ``match[b, i]`` the output
        matched to input i of replica b, or -1 when unmatched.  Every
        matched pair is backed by a request; no input exceeds one
        match and no output exceeds ``output_capacity``.
        """
        batch = self._validate_batch(requests)
        b, n, _ = batch.shape
        match = np.full((b, n), -1, dtype=np.int64)
        output_slots = np.full((b, n), self.output_capacity, dtype=np.int64)
        cumulative: List[np.ndarray] = []
        executed = 0
        arange_n = np.arange(n)

        while self.iterations is None or executed < self.iterations:
            active = (
                batch & (match < 0)[:, :, None] & (output_slots > 0)[:, None, :]
            )
            if not active.any():
                break
            executed += 1
            # Grant: each output with capacity left picks one
            # requesting input uniformly at random.  Adding the boolean
            # mask lifts active keys into [1, 2) while inactive ones
            # stay in [0, 1), so argmax always lands on an unresolved
            # request -- equivalent to masking with -1 but one cheap
            # elementwise pass instead of an np.where allocation.
            keys = self._rng.random(active.shape)
            keys += active
            grant_input = keys.argmax(axis=1)          # (B, N) per output
            has_request = active.any(axis=1)           # (B, N)
            grants = np.zeros_like(active)
            bb, jj = np.nonzero(has_request)
            grants[bb, grant_input[bb, jj], jj] = True
            # Accept: each input picks one granting output.
            if self.accept == "random":
                keys2 = self._rng.random(grants.shape)
                keys2 += grants
                accept_output = keys2.argmax(axis=2)   # (B, N) per input
            else:
                # Round-robin: first granted output at/after the pointer.
                offsets = (arange_n[None, None, :] - self._pointers[:, :, None]) % n
                offsets = np.where(grants, offsets, n)  # n = "no grant" sentinel
                accept_output = offsets.argmin(axis=2)
            has_grant = grants.any(axis=2)             # (B, N)
            bb, ii = np.nonzero(has_grant)
            jj = accept_output[bb, ii]
            match[bb, ii] = jj
            # Each output grants at most one input per iteration, so
            # (bb, jj) never repeats within a round: plain fancy
            # indexing is safe (and much faster than ufunc.at).
            output_slots[bb, jj] -= 1
            if self.accept == "round_robin":
                self._pointers[bb, ii] = (jj + 1) % n
            if self.track_sizes:
                cumulative.append((match >= 0).sum(axis=1))
            if self._probe is not None and self._probe.sampling:
                self._probe.pim_iteration(
                    executed,
                    requests=int(active.sum()),
                    grants=int(grants.sum()),
                    accepts=int(bb.size),
                    matched=int((match >= 0).sum()),
                    replicas=b,
                )

        if self._probe is not None:
            self._probe.slot_iterations(executed)
        if self.track_sizes:
            if cumulative:
                self.last_cumulative_sizes = np.stack(cumulative, axis=1)
            else:
                self.last_cumulative_sizes = np.zeros((b, 1), dtype=np.int64)
            active = batch & (match < 0)[:, :, None] & (output_slots > 0)[:, None, :]
            self.last_completed = ~active.any(axis=(1, 2))
        return match

    def reset(self) -> None:
        """Restore all cross-slot state (pointers, RNG, diagnostics).

        The RNG stream rewinds to its as-constructed state (when it can
        be snapshotted -- see
        :func:`repro.core.batch.resolve_generator`), so a rerun of the
        same scheduler replays the first run draw for draw.
        """
        self._pointers = np.zeros((self.replicas, self.ports), dtype=np.int64)
        self._rng = replay_generator(self._rng, self._rng_token)
        self.last_cumulative_sizes = None
        self.last_completed = None

    def __repr__(self) -> str:
        its = "inf" if self.iterations is None else self.iterations
        return (
            f"BatchPIMScheduler(replicas={self.replicas}, ports={self.ports}, "
            f"iterations={its}, accept={self.accept!r})"
        )


def pim_match_batch(
    requests: np.ndarray,
    rng: np.random.Generator,
    max_iterations: int = 32,
) -> np.ndarray:
    """Vectorized one-shot PIM over a batch of request matrices.

    Runs random-grant/random-accept PIM simultaneously on ``B`` request
    matrices until every one is maximal or ``max_iterations`` is hit.
    Stateless convenience wrapper over :class:`BatchPIMScheduler`.

    Parameters
    ----------
    requests:
        (B, N, N) boolean array of request matrices.
    rng:
        Random generator.
    max_iterations:
        Safety cap; maximality is virtually always reached far sooner
        (Appendix A: expected O(log N) iterations).

    Returns
    -------
    (B, K) int array of cumulative matching sizes, where K is the
    number of iterations executed; column k holds each pattern's
    matching size after iteration k+1.  The last column is the
    run-to-completion ("100%") size used as Table 1's denominator.
    """
    batch = _as_request_batch(requests)
    b, n, _ = batch.shape
    scheduler = BatchPIMScheduler(
        replicas=b, ports=n, iterations=max_iterations, accept="random", rng=rng
    )
    scheduler.schedule(batch)
    return scheduler.last_cumulative_sizes


class PIMScheduler:
    """Stateful PIM scheduler for the slot-clocked switch model.

    Iteration-count convention: ``last_result.iterations`` counts
    request/grant/accept rounds actually executed, so a slot whose
    request matrix is empty reports ``iterations == 0`` (no round ran)
    even though ``cumulative_sizes`` keeps its ``(0,)`` sentinel --
    see :func:`pim_match`.  Per-slot delay/warm-up accounting is the
    switch's job (:class:`repro.sim.stats.DelayStats`), not the
    scheduler's: the scheduler is memoryless apart from round-robin
    pointers and its RNG stream.

    Parameters
    ----------
    iterations:
        Per-slot iteration budget (AN2 uses 4); ``None`` runs each slot
        to a maximal match ("PIM-infinity" in Figure 5).
    accept:
        Input accept policy; round-robin pointers persist across slots.
    seed:
        Seed for this scheduler's private random stream.
    output_capacity:
        k-grant generalization for replicated fabrics.

    Examples
    --------
    >>> import numpy as np
    >>> sched = PIMScheduler(iterations=4, seed=7)
    >>> requests = np.ones((4, 4), dtype=bool)
    >>> len(sched.schedule(requests)) == 4  # full matrix -> perfect match
    True
    """

    name = "pim"

    def __init__(
        self,
        iterations: Optional[int] = AN2_ITERATIONS,
        accept: AcceptPolicy = "random",
        seed: Optional[int] = None,
        output_capacity: int = 1,
        rng=None,
    ):
        self.iterations = iterations
        self.accept = accept
        self.output_capacity = output_capacity
        # ``rng`` lets callers substitute a hardware-grade randomness
        # source (e.g. repro.hardware.random_select.lfsr_pim_rng) for
        # the Section 3.3 randomness-approximation ablation; it only
        # needs a numpy-compatible ``random(shape)``.  seed=None falls
        # back to the repro.sim.rng default-seed policy.
        self._rng, self._rng_token = resolve_generator(seed, rng, "pim")
        self._pointers: Optional[np.ndarray] = None
        self.last_result: Optional[PIMResult] = None
        self._probe = None

    def attach_probe(self, probe) -> None:
        """Attach a :class:`repro.obs.probe.Probe` for per-iteration
        telemetry.

        On slots the probe samples, scheduling runs with
        ``keep_trace=True`` and emits one ``PimIteration`` event per
        request/grant/accept round (the Figure 2 anatomy); every slot
        additionally feeds the ``pim.iterations`` histogram.  The
        iteration-count convention is :func:`pim_match`'s: an empty
        request matrix runs zero iterations, so it contributes 0 to
        the histogram and emits no ``PimIteration`` events.  Pass
        ``None`` to detach.
        """
        self._probe = probe

    def schedule(self, requests: np.ndarray) -> Matching:
        """Compute the matching for one slot from the request matrix."""
        matrix = as_request_matrix(requests)
        n = matrix.shape[0]
        if self.accept == "round_robin":
            if self._pointers is None or self._pointers.shape[0] != n:
                self._pointers = np.zeros(n, dtype=np.int64)
        probe = self._probe
        keep_trace = probe is not None and probe.enabled and probe.sampling
        result = pim_match(
            matrix,
            self._rng,
            iterations=self.iterations,
            accept=self.accept,
            accept_pointers=self._pointers,
            output_capacity=self.output_capacity,
            keep_trace=keep_trace,
        )
        self.last_result = result
        if probe is not None:
            probe.slot_iterations(result.iterations)
            if keep_trace:
                for index, phase in enumerate(result.trace):
                    probe.pim_iteration(
                        index + 1,
                        requests=int(phase.requests.sum()),
                        grants=int(phase.grants.sum()),
                        accepts=len(phase.accepted),
                        matched=int(result.cumulative_sizes[index]),
                    )
        return result.matching

    def reset(self) -> None:
        """Restore all cross-slot state (pointers and the RNG stream).

        Regression note: ``reset()`` used to clear only the round-robin
        pointers while the grant/accept stream kept advancing, so a
        rerun of the same scheduler diverged from the first run --
        violating the reset/rerun contract
        :class:`repro.core.statistical.StatisticalMatcher` documents.
        The stream now rewinds to its as-constructed state (injected
        non-numpy sources, which cannot be snapshotted, are left
        untouched; the caller owns replay for those).
        """
        self._pointers = None
        self._rng = replay_generator(self._rng, self._rng_token)
        self.last_result = None

    def __repr__(self) -> str:
        its = "inf" if self.iterations is None else self.iterations
        return f"PIMScheduler(iterations={its}, accept={self.accept!r})"
