"""Parallel Iterative Matching (PIM) -- the paper's core algorithm.

Section 3.1: each cell slot, starting from an empty matching, the
switch iterates three phases until an iteration budget is spent (the
AN2 prototype uses **four** iterations) or the matching is maximal:

1. **Request.**  Each unmatched input requests *every* output for which
   it has a buffered cell.
2. **Grant.**  Each unmatched output that receives requests grants one,
   chosen **uniformly at random** -- the independent per-output
   randomness is what yields the O(log N) expected convergence
   (Appendix A).
3. **Accept.**  Each input that receives grants accepts one.  The paper
   requires the accept choice to be "round-robin or other fair" for
   starvation freedom (Section 3.4); both random and round-robin
   accept policies are provided.

Matches made in earlier iterations are retained; later iterations only
fill in the gaps, so the per-slot result is always a legal matching and
is maximal when run to completion.

The module provides:

- :func:`pim_match` -- one slot's matching for a single request matrix,
  with a per-iteration trace (used for Table 1 / Figure 2),
- :func:`pim_match_batch` -- vectorized over a batch of request
  matrices (used to regenerate Table 1 at the paper's sample sizes),
- :class:`PIMScheduler` -- the stateful scheduler object plugged into
  :class:`repro.switch.switch.CrossbarSwitch`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional, Tuple

import numpy as np

from repro.core.matching import Matching, as_request_matrix

__all__ = ["PIMResult", "PIMIterationTrace", "pim_match", "pim_match_batch", "PIMScheduler"]

AcceptPolicy = Literal["random", "round_robin"]

#: Iteration count of the AN2 prototype (Section 3.2).
AN2_ITERATIONS = 4


@dataclass(frozen=True)
class PIMIterationTrace:
    """What happened in one request/grant/accept iteration.

    Attributes are N x N boolean matrices (requests, grants) and a list
    of accepted (input, output) pairs; useful for rendering Figure 2's
    anatomy and for the Appendix A resolution-rate checks.
    """

    requests: np.ndarray
    grants: np.ndarray
    accepted: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class PIMResult:
    """Result of running PIM on one request matrix.

    Attributes
    ----------
    matching:
        The final matching.
    cumulative_sizes:
        ``cumulative_sizes[k]`` is the matching size after iteration
        k+1.  Its length is the number of iterations actually executed.
    completed:
        True when the final matching is maximal (the algorithm stopped
        because no unresolved request remained rather than because the
        iteration budget ran out).
    trace:
        Per-iteration traces when requested, else empty.
    """

    matching: Matching
    cumulative_sizes: Tuple[int, ...]
    completed: bool
    trace: Tuple[PIMIterationTrace, ...] = ()

    @property
    def iterations(self) -> int:
        """Number of iterations executed."""
        return len(self.cumulative_sizes)


def _grant_phase(active: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Each output with pending requests grants one uniformly at random.

    ``active`` is the N x N matrix of unresolved requests.  Returns an
    N x N boolean grant matrix with at most one True per column.
    Choosing the argmax of i.i.d. uniform keys over the requesting
    inputs is a uniform choice among them.
    """
    n = active.shape[0]
    keys = np.where(active, rng.random(active.shape), -1.0)
    chosen = keys.argmax(axis=0)
    granted = keys.max(axis=0) >= 0.0
    grants = np.zeros_like(active)
    cols = np.nonzero(granted)[0]
    grants[chosen[cols], cols] = True
    return grants


def _accept_random(grants: np.ndarray, rng: np.random.Generator) -> List[Tuple[int, int]]:
    """Each input with grants accepts one uniformly at random."""
    keys = np.where(grants, rng.random(grants.shape), -1.0)
    chosen = keys.argmax(axis=1)
    has_grant = keys.max(axis=1) >= 0.0
    return [(i, int(chosen[i])) for i in np.nonzero(has_grant)[0]]


def _accept_round_robin(grants: np.ndarray, pointers: np.ndarray) -> List[Tuple[int, int]]:
    """Each input accepts the first granted output at/after its pointer.

    The pointer advances one past the accepted output, giving the
    "round-robin or other fair fashion" accept of Section 3.4.
    ``pointers`` is mutated in place.
    """
    n = grants.shape[0]
    accepted = []
    for i in range(n):
        row = np.nonzero(grants[i])[0]
        if row.size == 0:
            continue
        offsets = (row - pointers[i]) % n
        j = int(row[offsets.argmin()])
        accepted.append((i, j))
        pointers[i] = (j + 1) % n
    return accepted


def pim_match(
    requests: np.ndarray,
    rng: np.random.Generator,
    iterations: Optional[int] = AN2_ITERATIONS,
    accept: AcceptPolicy = "random",
    accept_pointers: Optional[np.ndarray] = None,
    output_capacity: int = 1,
    keep_trace: bool = False,
) -> PIMResult:
    """Run parallel iterative matching on one request matrix.

    Parameters
    ----------
    requests:
        N x N boolean matrix; ``requests[i, j]`` means input i has at
        least one queued cell for output j.
    rng:
        Random generator for the grant (and random-accept) choices.
    iterations:
        Iteration budget; ``None`` runs to completion (until maximal).
        The AN2 prototype uses 4 (Section 3.2).
    accept:
        ``"random"`` or ``"round_robin"`` input accept policy.
    accept_pointers:
        Round-robin pointers (length N int array), mutated in place so a
        stateful scheduler carries fairness across slots.  Ignored for
        the random policy; allocated fresh when needed and absent.
    output_capacity:
        The k-grant generalization of Section 3.1 for fabrics that can
        deliver k cells per output per slot: each output may grant (and
        be matched) up to k times.  Inputs still accept at most one
        grant per slot.  With k > 1 the result is a legal *b-matching*
        on the output side and is returned as plain pairs rather than a
        :class:`Matching`-validated object only when k == 1.
    keep_trace:
        Record per-iteration request/grant/accept matrices.

    Returns a :class:`PIMResult`.  With ``output_capacity == 1`` the
    matching is always legal, and maximal whenever ``completed``.
    """
    matrix = as_request_matrix(requests)
    n = matrix.shape[0]
    if output_capacity < 1:
        raise ValueError(f"output_capacity must be >= 1, got {output_capacity}")
    if iterations is not None and iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if accept == "round_robin" and accept_pointers is None:
        accept_pointers = np.zeros(n, dtype=np.int64)

    input_matched = np.zeros(n, dtype=bool)
    output_slots = np.full(n, output_capacity, dtype=np.int64)
    pairs: List[Tuple[int, int]] = []
    sizes: List[int] = []
    traces: List[PIMIterationTrace] = []
    completed = False

    iteration = 0
    while iterations is None or iteration < iterations:
        iteration += 1
        active = matrix & ~input_matched[:, None] & (output_slots > 0)[None, :]
        if not active.any():
            completed = True
            # Account the no-op iteration only if nothing ran yet, so
            # cumulative_sizes is never empty for a valid call.
            if not sizes:
                sizes.append(0)
            break
        grants = _grant_phase(active, rng)
        if accept == "random":
            accepted = _accept_random(grants, rng)
        elif accept == "round_robin":
            assert accept_pointers is not None
            accepted = _accept_round_robin(grants, accept_pointers)
        else:
            raise ValueError(f"unknown accept policy: {accept!r}")
        for i, j in accepted:
            pairs.append((i, j))
            input_matched[i] = True
            output_slots[j] -= 1
        sizes.append(len(pairs))
        if keep_trace:
            traces.append(PIMIterationTrace(active, grants, tuple(accepted)))

    if not completed:
        # Budget exhausted; check whether we happen to be maximal anyway.
        active = matrix & ~input_matched[:, None] & (output_slots > 0)[None, :]
        completed = not active.any()

    if output_capacity == 1:
        matching = Matching.from_pairs(pairs)
    else:
        # k > 1 legitimately matches an output up to k times, which the
        # Matching validator forbids; store the pairs unvalidated.
        matching = Matching.__new__(Matching)
        object.__setattr__(matching, "pairs", tuple(sorted(pairs)))
    return PIMResult(matching, tuple(sizes), completed, tuple(traces))


def pim_match_batch(
    requests: np.ndarray,
    rng: np.random.Generator,
    max_iterations: int = 32,
) -> np.ndarray:
    """Vectorized PIM over a batch of request matrices.

    Runs random-grant/random-accept PIM simultaneously on ``B`` request
    matrices until every one is maximal or ``max_iterations`` is hit.

    Parameters
    ----------
    requests:
        (B, N, N) boolean array of request matrices.
    rng:
        Random generator.
    max_iterations:
        Safety cap; maximality is virtually always reached far sooner
        (Appendix A: expected O(log N) iterations).

    Returns
    -------
    (B, K) int array of cumulative matching sizes, where K is the
    number of iterations executed; column k holds each pattern's
    matching size after iteration k+1.  The last column is the
    run-to-completion ("100%") size used as Table 1's denominator.
    """
    batch = np.asarray(requests).astype(bool)
    if batch.ndim != 3 or batch.shape[1] != batch.shape[2]:
        raise ValueError(f"expected (B, N, N) requests, got shape {batch.shape}")
    b, n, _ = batch.shape
    input_matched = np.zeros((b, n), dtype=bool)
    output_matched = np.zeros((b, n), dtype=bool)
    cumulative: List[np.ndarray] = []

    for _ in range(max_iterations):
        active = batch & ~input_matched[:, :, None] & ~output_matched[:, None, :]
        if not active.any():
            break
        # Grant: each output picks a requesting input uniformly.
        keys = np.where(active, rng.random(active.shape), -1.0)
        grant_input = keys.argmax(axis=1)          # (B, N) input granted per output
        has_request = keys.max(axis=1) >= 0.0      # (B, N)
        grants = np.zeros_like(active)
        bb, jj = np.nonzero(has_request)
        grants[bb, grant_input[bb, jj], jj] = True
        # Accept: each input picks a granting output uniformly.
        keys2 = np.where(grants, rng.random(grants.shape), -1.0)
        accept_output = keys2.argmax(axis=2)       # (B, N)
        has_grant = keys2.max(axis=2) >= 0.0       # (B, N)
        bb, ii = np.nonzero(has_grant)
        input_matched[bb, ii] = True
        output_matched[bb, accept_output[bb, ii]] = True
        cumulative.append(input_matched.sum(axis=1))

    if not cumulative:
        return np.zeros((b, 1), dtype=np.int64)
    return np.stack(cumulative, axis=1)


class PIMScheduler:
    """Stateful PIM scheduler for the slot-clocked switch model.

    Parameters
    ----------
    iterations:
        Per-slot iteration budget (AN2 uses 4); ``None`` runs each slot
        to a maximal match ("PIM-infinity" in Figure 5).
    accept:
        Input accept policy; round-robin pointers persist across slots.
    seed:
        Seed for this scheduler's private random stream.
    output_capacity:
        k-grant generalization for replicated fabrics.

    Examples
    --------
    >>> import numpy as np
    >>> sched = PIMScheduler(iterations=4, seed=7)
    >>> requests = np.ones((4, 4), dtype=bool)
    >>> len(sched.schedule(requests)) == 4  # full matrix -> perfect match
    True
    """

    name = "pim"

    def __init__(
        self,
        iterations: Optional[int] = AN2_ITERATIONS,
        accept: AcceptPolicy = "random",
        seed: Optional[int] = None,
        output_capacity: int = 1,
        rng=None,
    ):
        self.iterations = iterations
        self.accept = accept
        self.output_capacity = output_capacity
        # ``rng`` lets callers substitute a hardware-grade randomness
        # source (e.g. repro.hardware.random_select.lfsr_pim_rng) for
        # the Section 3.3 randomness-approximation ablation; it only
        # needs a numpy-compatible ``random(shape)``.
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._pointers: Optional[np.ndarray] = None
        self.last_result: Optional[PIMResult] = None

    def schedule(self, requests: np.ndarray) -> Matching:
        """Compute the matching for one slot from the request matrix."""
        matrix = as_request_matrix(requests)
        n = matrix.shape[0]
        if self.accept == "round_robin":
            if self._pointers is None or self._pointers.shape[0] != n:
                self._pointers = np.zeros(n, dtype=np.int64)
        result = pim_match(
            matrix,
            self._rng,
            iterations=self.iterations,
            accept=self.accept,
            accept_pointers=self._pointers,
            output_capacity=self.output_capacity,
        )
        self.last_result = result
        return result.matching

    def reset(self) -> None:
        """Clear cross-slot state (round-robin pointers)."""
        self._pointers = None
        self.last_result = None

    def __repr__(self) -> str:
        its = "inf" if self.iterations is None else self.iterations
        return f"PIMScheduler(iterations={its}, accept={self.accept!r})"
