"""Longest-queue-first matching -- an occupancy-aware baseline.

The paper's schedulers see only *which* VOQs are occupied; a natural
"more sophisticated algorithm" (Section 3.4's phrase) also uses *how*
occupied they are.  Longest-queue-first greedily serves the fullest
VOQ among those whose input and output are still free -- McKeown's
iLQF in its centralized greedy form.  It is a maximal matching, tends
to equalize queue lengths (good for delay tails), but, like maximum
matching, can starve a short queue that always faces a longer rival;
the test suite demonstrates both properties.

Included as an extension baseline: it quantifies how much the AN2
forgoes by keeping the scheduler occupancy-blind (almost nothing on
the paper's workloads), which supports the paper's choice of the
simpler request wire per VOQ.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.batch import BatchScheduler, replay_generator, resolve_generator
from repro.core.matching import Matching, as_request_matrix

__all__ = ["BatchLQFScheduler", "LQFScheduler", "lqf_match"]


def lqf_match(occupancy: np.ndarray, rng: np.random.Generator) -> Matching:
    """Greedy longest-queue-first maximal matching.

    ``occupancy[i, j]`` is the number of queued cells for (i, j); ties
    are broken uniformly at random.  The result is maximal over the
    positive-occupancy pairs.
    """
    matrix = np.asarray(occupancy)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"occupancy must be square, got shape {matrix.shape}")
    if (matrix < 0).any():
        raise ValueError("occupancy must be non-negative")
    n = matrix.shape[0]
    # Random keys break ties uniformly while keeping one sort.
    keys = matrix.astype(np.float64) + rng.random(matrix.shape)
    order = np.argsort(keys, axis=None)[::-1]
    row_free = np.ones(n, dtype=bool)
    col_free = np.ones(n, dtype=bool)
    pairs: List[Tuple[int, int]] = []
    for flat in order:
        i, j = divmod(int(flat), n)
        if matrix[i, j] <= 0:
            break  # remaining entries are empty queues
        if row_free[i] and col_free[j]:
            pairs.append((i, j))
            row_free[i] = False
            col_free[j] = False
    return Matching.from_pairs(pairs)


class LQFScheduler:
    """Occupancy-aware scheduler for :class:`CrossbarSwitch`.

    Sets ``needs_occupancy`` so the switch passes the cell counts per
    VOQ instead of just the boolean request matrix.
    """

    name = "lqf"
    needs_occupancy = True

    def __init__(self, seed: Optional[int] = None, rng=None):
        # Deterministic seed=None fallback (repro.sim.rng default-seed
        # policy); the token lets reset() rewind the stream.
        self._rng, self._rng_token = resolve_generator(seed, rng, "lqf")

    def schedule(self, requests: np.ndarray, occupancy: Optional[np.ndarray] = None) -> Matching:
        """Return this slot's matching from the occupancy matrix."""
        if occupancy is None:
            # Degrade gracefully to boolean occupancy (plain maximal).
            occupancy = as_request_matrix(requests).astype(np.int64)
        return lqf_match(occupancy, self._rng)

    def reset(self) -> None:
        """Rewind the tie-break RNG to its as-constructed state.

        Regression note: this used to be a no-op on the grounds of "no
        cross-slot state", but the tie-break stream *is* cross-slot
        state -- it kept advancing across ``reset()``, so a rerun of
        the same scheduler (``CrossbarSwitch.run`` resets at the top)
        diverged from the first run, violating the reset/rerun
        contract of PRs 4-5.
        """
        self._rng = replay_generator(self._rng, self._rng_token)

    def __repr__(self) -> str:
        return "LQFScheduler()"


class BatchLQFScheduler(BatchScheduler):
    """Longest-queue-first vectorized over B independent replicas.

    Implements the :class:`repro.core.batch.BatchScheduler` protocol.
    Instead of the object kernel's flat sort + sequential greedy scan,
    the batch kernel repeatedly selects every **locally dominant**
    entry -- an active entry whose key is the maximum of both its row
    and its column among the still-active entries -- and retires the
    involved rows/columns.  For distinct keys (an almost-sure event:
    keys are ``occupancy + Uniform[0, 1)``) this computes exactly the
    same matching as descending-key sequential greedy, because the
    globally largest remaining key is always locally dominant and
    greedy decisions commute when they share no row or column.  At
    most N rounds run (each round matches at least one entry per
    replica that still has active entries).

    **B = 1 draw parity**: the tie-break uniforms are drawn as one
    ``(B, N, N)`` block per slot over the *full* matrix -- the same
    element count as :func:`lqf_match`'s ``rng.random(matrix.shape)``
    -- so with a shared seed the batch kernel at B = 1 consumes the
    stream identically and returns the identical matching.

    ``needs_occupancy``: the fast paths pass queue-depth counts along
    with the request mask; entries outside the mask get zero weight
    (and are never matched), which is what keeps the CBR gap-fill and
    blocked-output maskings correct.
    """

    name = "lqf_batch"
    needs_occupancy = True

    def __init__(
        self,
        replicas: int,
        ports: int,
        seed: Optional[int] = None,
        rng=None,
        output_capacity: int = 1,
    ):
        super().__init__(replicas, ports, output_capacity=output_capacity)
        self._rng, self._rng_token = resolve_generator(seed, rng, "lqf")

    def schedule(
        self, requests: np.ndarray, occupancy: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Compute one slot's matchings for all replicas."""
        batch = self._validate_batch(requests)
        b, n, _ = batch.shape
        occ = self._occupancy_counts(batch, occupancy)
        keys = occ.astype(np.float64) + self._rng.random(batch.shape)
        match = np.full((b, n), -1, dtype=np.int64)
        col_slots = np.full((b, n), self.output_capacity, dtype=np.int64)
        # Active keys carry occupancy >= 1 so they are always >= 1;
        # -1.0 is a safe "retired" sentinel.
        masked = np.where(batch & (occ > 0), keys, -1.0)
        for _ in range(n):
            row_best = masked.max(axis=2)               # (B, N)
            col_best = masked.max(axis=1)               # (B, N)
            sel = (
                (masked >= 0.0)
                & (masked == row_best[:, :, None])
                & (masked == col_best[:, None, :])
            )
            if not sel.any():
                break
            bb, ii, jj = np.nonzero(sel)
            match[bb, ii] = jj
            col_slots[bb, jj] -= 1
            masked[bb, ii, :] = -1.0                    # inputs match once
            exhausted = col_slots[bb, jj] == 0
            masked[bb[exhausted], :, jj[exhausted]] = -1.0
        return match

    def reset(self) -> None:
        """Rewind the tie-break RNG to its as-constructed state."""
        self._rng = replay_generator(self._rng, self._rng_token)

    def __repr__(self) -> str:
        return (
            f"BatchLQFScheduler(replicas={self.replicas}, ports={self.ports})"
        )
