"""Longest-queue-first matching -- an occupancy-aware baseline.

The paper's schedulers see only *which* VOQs are occupied; a natural
"more sophisticated algorithm" (Section 3.4's phrase) also uses *how*
occupied they are.  Longest-queue-first greedily serves the fullest
VOQ among those whose input and output are still free -- McKeown's
iLQF in its centralized greedy form.  It is a maximal matching, tends
to equalize queue lengths (good for delay tails), but, like maximum
matching, can starve a short queue that always faces a longer rival;
the test suite demonstrates both properties.

Included as an extension baseline: it quantifies how much the AN2
forgoes by keeping the scheduler occupancy-blind (almost nothing on
the paper's workloads), which supports the paper's choice of the
simpler request wire per VOQ.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.matching import Matching, as_request_matrix

__all__ = ["LQFScheduler", "lqf_match"]


def lqf_match(occupancy: np.ndarray, rng: np.random.Generator) -> Matching:
    """Greedy longest-queue-first maximal matching.

    ``occupancy[i, j]`` is the number of queued cells for (i, j); ties
    are broken uniformly at random.  The result is maximal over the
    positive-occupancy pairs.
    """
    matrix = np.asarray(occupancy)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"occupancy must be square, got shape {matrix.shape}")
    if (matrix < 0).any():
        raise ValueError("occupancy must be non-negative")
    n = matrix.shape[0]
    # Random keys break ties uniformly while keeping one sort.
    keys = matrix.astype(np.float64) + rng.random(matrix.shape)
    order = np.argsort(keys, axis=None)[::-1]
    row_free = np.ones(n, dtype=bool)
    col_free = np.ones(n, dtype=bool)
    pairs: List[Tuple[int, int]] = []
    for flat in order:
        i, j = divmod(int(flat), n)
        if matrix[i, j] <= 0:
            break  # remaining entries are empty queues
        if row_free[i] and col_free[j]:
            pairs.append((i, j))
            row_free[i] = False
            col_free[j] = False
    return Matching.from_pairs(pairs)


class LQFScheduler:
    """Occupancy-aware scheduler for :class:`CrossbarSwitch`.

    Sets ``needs_occupancy`` so the switch passes the cell counts per
    VOQ instead of just the boolean request matrix.
    """

    name = "lqf"
    needs_occupancy = True

    def __init__(self, seed: Optional[int] = None):
        if seed is not None:
            self._rng = np.random.default_rng(seed)
        else:
            # Deterministic fallback (repro.sim.rng default-seed
            # policy); imported lazily to dodge the sim <-> core cycle.
            from repro.sim.rng import default_generator

            self._rng = default_generator("lqf")

    def schedule(self, requests: np.ndarray, occupancy: Optional[np.ndarray] = None) -> Matching:
        """Return this slot's matching from the occupancy matrix."""
        if occupancy is None:
            # Degrade gracefully to boolean occupancy (plain maximal).
            occupancy = as_request_matrix(requests).astype(np.int64)
        return lqf_match(occupancy, self._rng)

    def reset(self) -> None:
        """No cross-slot state."""
