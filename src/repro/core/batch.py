"""The ``BatchScheduler`` protocol: batched ``(B, N, N)`` matching kernels.

The fast-path simulators (:mod:`repro.sim.fastpath`,
:mod:`repro.sim.fastpath_cbr`, :mod:`repro.sim.fastpath_network`)
advance B independent switch replicas per step and hand the scheduler
one ``(B, N, N)`` boolean request batch.  Historically the only such
kernel was :class:`repro.core.pim.BatchPIMScheduler`; this module
extracts the contract it implemented so the scheduler zoo (iSLIP, LQF,
wavefront, QPS-r) can plug into every fast path interchangeably:

- ``schedule(requests, occupancy=None)`` maps a ``(B, N, N)`` request
  batch to a ``(B, N)`` int64 match array (``match[b, i]`` is the
  output matched to input i of replica b, -1 when unmatched).  Every
  matched pair is backed by a request, no input exceeds one match, no
  output exceeds ``output_capacity``.
- **Masked requests**: callers may pass any subset of the "occupied
  VOQ" matrix -- the CBR gap-filler masks out inputs/outputs already
  reserved this slot and the network fast path masks outputs whose
  downstream buffer is full.  Kernels must never match outside the
  request mask.
- **Occupancy-aware kernels** (``needs_occupancy = True``, e.g. LQF
  and QPS-r) additionally receive the ``(B, N, N)`` queue-depth counts;
  entries outside the request mask are ignored (callers may pass the
  raw counts -- the base class masks them).
- ``reset()`` restores *all* cross-slot state (pointers, RNG streams)
  to the as-constructed state so a rerun replays the first run draw
  for draw -- the reset/rerun contract the object schedulers honor.
- ``attach_probe(probe)`` accepts a :class:`repro.obs.probe.Probe`;
  kernels with per-slot iteration structure feed the
  ``pim.iterations`` histogram via ``probe.slot_iterations``.

**B = 1 parity convention.**  Each batched kernel is draw-for-draw and
pointer-for-pointer identical to its object scheduler at ``B == 1``
with a shared seed: numpy ``Generator`` streams consume by element
count, so a ``(1, N, N)`` uniform draw yields the same numbers as the
object kernel's ``(N, N)`` draw.  The differential harness
(:func:`repro.check.differential.backend_parity`) exploits this to
demand *slot-exact* trace equality between the object backend and the
fast path for every non-PIM kernel.

:func:`build_batch_scheduler` / :func:`build_object_scheduler` are the
name registry the fast paths, the CLI and the differential harness
share, so "the same scheduler on both backends" is spelled identically
everywhere.
"""

from __future__ import annotations

import copy
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "BATCH_SCHEDULERS",
    "BatchScheduler",
    "as_request_batch",
    "build_batch_scheduler",
    "build_object_scheduler",
    "replay_generator",
    "resolve_generator",
]

#: Registry names accepted by :func:`build_batch_scheduler` (and, with
#: the same spelling, by :func:`build_object_scheduler`, the fast-path
#: ``scheduler=`` parameters and the CLI ``--scheduler`` flags).
BATCH_SCHEDULERS = ("pim", "islip", "lqf", "wavefront", "qps")


def as_request_batch(requests: np.ndarray) -> np.ndarray:
    """Validate and normalize a (B, N, N) boolean request batch."""
    batch = np.asarray(requests).astype(bool)
    if batch.ndim != 3 or batch.shape[1] != batch.shape[2]:
        raise ValueError(f"expected (B, N, N) requests, got shape {batch.shape}")
    return batch


def resolve_generator(
    seed: Optional[int], rng, component: str
) -> Tuple[object, Tuple[str, object]]:
    """Resolve the ``(seed, rng)`` constructor convention to a generator.

    Returns ``(generator, replay_token)``.  ``rng`` wins when both are
    given; ``seed=None`` falls back to the deterministic per-component
    stream of the :mod:`repro.sim.rng` default-seed policy.  The token
    is what :func:`replay_generator` needs to restore the stream in
    ``reset()``: the seed when we own the generator, or a deep copy of
    the injected generator's ``bit_generator.state`` (``None`` for
    non-numpy sources such as the LFSR hardware RNG, whose state we
    cannot snapshot -- ``reset()`` then leaves the stream where it is,
    and the caller owns replay).
    """
    if rng is not None:
        bit = getattr(rng, "bit_generator", None)
        state = copy.deepcopy(bit.state) if bit is not None else None
        return rng, ("state", state)
    if seed is None:
        # Imported lazily: repro.sim's package init pulls in the
        # fast-path simulators, which import this module back.
        from repro.sim.rng import default_seed

        seed = default_seed(component)
    return np.random.default_rng(seed), ("seed", int(seed))


def replay_generator(rng, token: Tuple[str, object]):
    """Restore a generator to its :func:`resolve_generator` state.

    Returns the generator to use from here on (a fresh one for
    seed-owned streams, the original -- rewound when possible -- for
    injected ones).
    """
    kind, value = token
    if kind == "seed":
        return np.random.default_rng(value)
    if value is not None:
        rng.bit_generator.state = copy.deepcopy(value)
    return rng


class BatchScheduler:
    """Base class for batched matching kernels (see module docstring).

    Subclasses implement :meth:`schedule` and :meth:`reset`; the base
    provides construction-time validation and the request/occupancy
    normalization helpers so every kernel enforces the same contract.

    Parameters
    ----------
    replicas, ports:
        Batch shape B and switch size N.
    output_capacity:
        Matches each output may take per slot (the k-grant
        generalization for replicated fabrics; inputs always accept at
        most one match per slot).
    """

    name = "batch"
    #: True for kernels whose choice depends on queue depths (LQF,
    #: QPS-r); the fast paths then pass the occupancy counts alongside
    #: the boolean request mask.
    needs_occupancy = False

    def __init__(self, replicas: int, ports: int, output_capacity: int = 1):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if ports < 1:
            raise ValueError(f"ports must be >= 1, got {ports}")
        if output_capacity < 1:
            raise ValueError(f"output_capacity must be >= 1, got {output_capacity}")
        self.replicas = replicas
        self.ports = ports
        self.output_capacity = output_capacity
        self._probe = None

    def attach_probe(self, probe) -> None:
        """Attach a :class:`repro.obs.probe.Probe` (None detaches)."""
        self._probe = probe

    def _validate_batch(self, requests: np.ndarray) -> np.ndarray:
        """Normalize ``requests`` and check it matches (B, N, N)."""
        batch = as_request_batch(requests)
        if batch.shape != (self.replicas, self.ports, self.ports):
            raise ValueError(
                f"expected ({self.replicas}, {self.ports}, {self.ports}) "
                f"requests, got {batch.shape}"
            )
        return batch

    def _occupancy_counts(
        self, batch: np.ndarray, occupancy: Optional[np.ndarray]
    ) -> np.ndarray:
        """Masked (B, N, N) int64 queue depths for occupancy-aware kernels.

        ``None`` degrades to boolean occupancy (each requested VOQ
        counts one cell); otherwise the counts are validated and masked
        by the request batch, so a VOQ outside the request mask never
        contributes weight even when cells are queued behind it (the
        CBR gap-fill / blocked-output convention).
        """
        if occupancy is None:
            return batch.astype(np.int64)
        occ = np.asarray(occupancy)
        if occ.shape != batch.shape:
            raise ValueError(
                f"occupancy shape {occ.shape} does not match requests "
                f"{batch.shape}"
            )
        if (occ < 0).any():
            raise ValueError("occupancy must be non-negative")
        return np.where(batch, occ.astype(np.int64), 0)

    def schedule(
        self, requests: np.ndarray, occupancy: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Compute one slot's matchings for all replicas."""
        raise NotImplementedError

    def reset(self) -> None:
        """Restore all cross-slot state to the as-constructed state."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(replicas={self.replicas}, "
            f"ports={self.ports})"
        )


def build_batch_scheduler(
    name: str,
    replicas: int,
    ports: int,
    *,
    iterations: Optional[int] = None,
    accept: str = "random",
    seed: Optional[int] = None,
    rng=None,
    output_capacity: int = 1,
    track_sizes: bool = False,
) -> BatchScheduler:
    """Build a batched kernel by registry name (see ``BATCH_SCHEDULERS``).

    ``iterations`` maps onto each kernel's own notion of per-slot
    rounds: the PIM/iSLIP iteration budget (``None`` = run the slot to
    convergence) and the QPS-r round count r (``None`` = N rounds).
    Wavefront and LQF are single-pass and ignore it, as they ignore
    ``accept`` (a PIM-only policy).  ``track_sizes`` is PIM's Table 1
    diagnostic and is likewise ignored elsewhere.
    """
    # Imported lazily to avoid module-level cycles (the kernels import
    # this module for the base class).
    if name == "pim":
        from repro.core.pim import BatchPIMScheduler

        return BatchPIMScheduler(
            replicas=replicas,
            ports=ports,
            iterations=iterations,
            accept=accept,
            seed=seed,
            rng=rng,
            output_capacity=output_capacity,
            track_sizes=track_sizes,
        )
    if name == "islip":
        from repro.core.islip import BatchISLIPScheduler

        return BatchISLIPScheduler(
            replicas=replicas,
            ports=ports,
            iterations=iterations,
            output_capacity=output_capacity,
        )
    if name == "lqf":
        from repro.core.lqf import BatchLQFScheduler

        return BatchLQFScheduler(
            replicas=replicas,
            ports=ports,
            seed=seed,
            rng=rng,
            output_capacity=output_capacity,
        )
    if name == "wavefront":
        from repro.core.wavefront import BatchWavefrontScheduler

        return BatchWavefrontScheduler(
            replicas=replicas, ports=ports, output_capacity=output_capacity
        )
    if name == "qps":
        from repro.core.qps import BatchQPSScheduler

        return BatchQPSScheduler(
            replicas=replicas,
            ports=ports,
            rounds=iterations,
            seed=seed,
            rng=rng,
            output_capacity=output_capacity,
        )
    raise ValueError(
        f"unknown batch scheduler {name!r}; known: {', '.join(BATCH_SCHEDULERS)}"
    )


def build_object_scheduler(
    name: str,
    *,
    iterations: Optional[int] = None,
    accept: str = "random",
    seed: Optional[int] = None,
    rng=None,
    output_capacity: int = 1,
    ports: Optional[int] = None,
):
    """Build the object-model twin of a registry kernel.

    With the same ``seed`` (or an identically-positioned ``rng``) as
    the batched kernel, the returned scheduler is draw-for-draw
    identical to the B = 1 batch -- the pairing the slot-exact
    differential parity checks are built on.  ``ports`` is only needed
    to resolve ``iterations=None`` for iSLIP (the object scheduler
    wants a concrete budget; N iterations always reach convergence).
    """
    if name == "pim":
        from repro.core.pim import PIMScheduler

        return PIMScheduler(
            iterations=iterations,
            accept=accept,
            seed=seed,
            rng=rng,
            output_capacity=output_capacity,
        )
    if name == "islip":
        from repro.core.islip import ISLIPScheduler

        if iterations is None:
            if ports is None:
                raise ValueError("islip with iterations=None needs ports")
            iterations = ports
        return ISLIPScheduler(iterations=iterations)
    if name == "lqf":
        from repro.core.lqf import LQFScheduler

        return LQFScheduler(seed=seed, rng=rng)
    if name == "wavefront":
        from repro.core.wavefront import WavefrontScheduler

        return WavefrontScheduler()
    if name == "qps":
        from repro.core.qps import QPSScheduler

        return QPSScheduler(rounds=iterations, seed=seed, rng=rng)
    raise ValueError(
        f"unknown scheduler {name!r}; known: {', '.join(BATCH_SCHEDULERS)}"
    )
