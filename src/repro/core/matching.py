"""Bipartite matchings over switch request matrices.

A *request matrix* R is an N x N boolean matrix with ``R[i, j]`` true
when input i has at least one queued cell for output j.  A *matching*
pairs inputs with outputs such that no input or output appears twice
and every pair is backed by a request.

Section 3.4 of the paper distinguishes:

- **maximal** matchings -- no pair can be added without removing one
  (what PIM computes when run to completion), and
- **maximum** matchings -- no other matching has more pairs.

A maximal matching always has at least half as many pairs as a maximum
one; :func:`maximal_ge_half_maximum` states the bound checked by the
property tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Matching",
    "as_request_matrix",
    "is_matching",
    "is_maximal",
    "greedy_maximal_match",
    "maximal_ge_half_maximum",
]


@dataclass(frozen=True)
class Matching:
    """An input-to-output pairing for one time slot.

    Stored as a tuple ``pairs`` of (input, output) index pairs.  The
    constructor validates that no input or output is repeated; whether
    every pair is *backed by a request* depends on a request matrix and
    is checked by :meth:`respects`.
    """

    pairs: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        inputs = [i for i, _ in self.pairs]
        outputs = [j for _, j in self.pairs]
        if len(set(inputs)) != len(inputs):
            raise ValueError(f"input matched twice: {sorted(inputs)}")
        if len(set(outputs)) != len(outputs):
            raise ValueError(f"output matched twice: {sorted(outputs)}")

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[int, int]],
        validate_outputs: bool = True,
    ) -> "Matching":
        """Build a matching from any iterable of (input, output) pairs.

        ``validate_outputs=False`` is the sanctioned path for *b-matchings*
        on the output side (the ``output_capacity > 1`` generalization of
        Section 3.1, where a replicated fabric delivers up to k cells per
        output per slot): outputs may repeat, inputs still may not.
        """
        pairs = tuple(sorted(pairs))
        if validate_outputs:
            return cls(pairs)
        inputs = [i for i, _ in pairs]
        if len(set(inputs)) != len(inputs):
            raise ValueError(f"input matched twice: {sorted(inputs)}")
        matching = object.__new__(cls)
        object.__setattr__(matching, "pairs", pairs)
        return matching

    @classmethod
    def empty(cls) -> "Matching":
        """The matching with no pairs."""
        return cls(())

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self.pairs)

    def output_of(self, input_port: int) -> Optional[int]:
        """Output matched to ``input_port``, or None."""
        for i, j in self.pairs:
            if i == input_port:
                return j
        return None

    def input_of(self, output_port: int) -> Optional[int]:
        """Input matched to ``output_port``, or None."""
        for i, j in self.pairs:
            if j == output_port:
                return i
        return None

    def as_dict(self) -> Dict[int, int]:
        """Mapping from matched input to its output."""
        return dict(self.pairs)

    def respects(self, requests: np.ndarray) -> bool:
        """True when every pair is backed by a request in ``requests``."""
        matrix = as_request_matrix(requests)
        return all(matrix[i, j] for i, j in self.pairs)


def as_request_matrix(requests: np.ndarray) -> np.ndarray:
    """Validate and normalize a request matrix to square boolean ndarray."""
    matrix = np.asarray(requests)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"request matrix must be square, got shape {matrix.shape}")
    return matrix.astype(bool)


def is_matching(pairs: Sequence[Tuple[int, int]]) -> bool:
    """True when ``pairs`` repeats no input and no output."""
    inputs = [i for i, _ in pairs]
    outputs = [j for _, j in pairs]
    return len(set(inputs)) == len(inputs) and len(set(outputs)) == len(outputs)


def is_maximal(matching: Matching, requests: np.ndarray) -> bool:
    """True when no request pair can be added to ``matching``.

    This is the termination condition of parallel iterative matching:
    "no unmatched input has cells queued for any unmatched output"
    (Section 3.2).
    """
    matrix = as_request_matrix(requests)
    n = matrix.shape[0]
    matched_inputs = {i for i, _ in matching.pairs}
    matched_outputs = {j for _, j in matching.pairs}
    for i in range(n):
        if i in matched_inputs:
            continue
        for j in range(n):
            if j in matched_outputs:
                continue
            if matrix[i, j]:
                return False
    return True


def greedy_maximal_match(requests: np.ndarray) -> Matching:
    """Sequential greedy maximal matching (first-fit order).

    The simplest correct scheduler: scan inputs in index order and give
    each the lowest-numbered free requested output.  Used as a
    deterministic reference for maximality properties, and as the
    "sequential matching algorithm" PIM's worst case degenerates to
    (Section 3.2).
    """
    matrix = as_request_matrix(requests)
    n = matrix.shape[0]
    taken_outputs = set()
    pairs = []
    for i in range(n):
        for j in range(n):
            if matrix[i, j] and j not in taken_outputs:
                pairs.append((i, j))
                taken_outputs.add(j)
                break
    return Matching.from_pairs(pairs)


def maximal_ge_half_maximum(maximal_size: int, maximum_size: int) -> bool:
    """The Section 3.4 bound: |maximal| >= |maximum| / 2."""
    return 2 * maximal_size >= maximum_size
