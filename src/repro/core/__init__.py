"""Switch schedulers: the paper's contribution and its baselines.

Switch scheduling is bipartite matching (Section 3.4): inputs and
outputs are the two node sets, and an edge (i, j) exists when input i
has at least one queued cell for output j.  A scheduler picks a
*matching* -- at most one output per input and vice versa -- every cell
slot.

- :mod:`repro.core.pim` -- **Parallel Iterative Matching**, the paper's
  randomized request/grant/accept algorithm (Section 3),
- :mod:`repro.core.statistical` -- **Statistical Matching**, the
  weighted variant for bandwidth allocation (Section 5, Appendix C),
- :mod:`repro.core.fifo` -- FIFO input queueing baseline (HOL blocking),
- :mod:`repro.core.output_queueing` -- perfect output queueing baseline,
- :mod:`repro.core.maximum` -- maximum matching (Hopcroft-Karp), the
  "more sophisticated algorithm" the paper argues against,
- :mod:`repro.core.islip` / :mod:`repro.core.wavefront` -- descendant
  and alternative arbiters, used for the randomness ablations,
- :mod:`repro.core.lqf` / :mod:`repro.core.qps` -- occupancy-aware
  extension baselines (longest-queue-first, queue-proportional
  sampling),
- :mod:`repro.core.batch` -- the ``BatchScheduler`` protocol and the
  kernel registry shared by the fast paths, the CLI and the
  differential checks,
- :mod:`repro.core.matching` -- matching datatypes and checks.
"""

from repro.core.batch import (
    BATCH_SCHEDULERS,
    BatchScheduler,
    as_request_batch,
    build_batch_scheduler,
    build_object_scheduler,
)
from repro.core.matching import Matching, greedy_maximal_match, is_maximal
from repro.core.pim import BatchPIMScheduler, PIMScheduler, pim_match, pim_match_batch
from repro.core.statistical import StatisticalMatcher
from repro.core.fifo import FIFOScheduler
from repro.core.islip import BatchISLIPScheduler, ISLIPScheduler
from repro.core.wavefront import BatchWavefrontScheduler, WavefrontScheduler
from repro.core.maximum import MaximumMatchingScheduler, hopcroft_karp
from repro.core.output_queueing import OutputQueuedSwitch
from repro.core.windowed_fifo import WindowedFIFOScheduler, WindowedFIFOSwitch
from repro.core.lqf import BatchLQFScheduler, LQFScheduler
from repro.core.qps import BatchQPSScheduler, QPSScheduler, qps_match
from repro.core.rrm import RRMScheduler

__all__ = [
    "BATCH_SCHEDULERS",
    "BatchScheduler",
    "as_request_batch",
    "build_batch_scheduler",
    "build_object_scheduler",
    "BatchPIMScheduler",
    "BatchISLIPScheduler",
    "BatchLQFScheduler",
    "BatchQPSScheduler",
    "BatchWavefrontScheduler",
    "pim_match_batch",
    "RRMScheduler",
    "WindowedFIFOScheduler",
    "WindowedFIFOSwitch",
    "LQFScheduler",
    "QPSScheduler",
    "qps_match",
    "Matching",
    "greedy_maximal_match",
    "is_maximal",
    "PIMScheduler",
    "pim_match",
    "StatisticalMatcher",
    "FIFOScheduler",
    "ISLIPScheduler",
    "WavefrontScheduler",
    "MaximumMatchingScheduler",
    "hopcroft_karp",
    "OutputQueuedSwitch",
]
