"""AN2 switch cost and timing model (Table 2 and the headline numbers).

Table 2 reports each functional unit's share of the total cost of a
16x16 AN2 switch.  We model the bill of materials with per-unit
relative costs and N-dependent device counts:

- optoelectronics: one transceiver per port               -- O(N)
- crossbar: crosspoint logic                              -- O(N^2)
- buffer RAM/logic: one buffer bank + manager per port    -- O(N)
- scheduling logic: one arbiter per port pair's wiring    -- O(N^2)
  (the request/grant wires grow as N^2; Section 3.3)
- routing/control CPU: one per switch                     -- O(1)

Per-unit costs are calibrated so the N = 16 proportions reproduce
Table 2 exactly (they are the table's percentages divided by the unit
counts); the value of the model is that it then *extrapolates*: it
quantifies the paper's claims that "the cost of the optoelectronics
dominates" and that the crossbar's O(N^2) growth "is not a significant
portion of the switch cost, at least for moderate scale switches"
(Section 2.2 caps AN2's designs at 64x64).

Timing: with 53-byte cells on 1 Gb/s links, a 16x16 switch must
schedule 16 cells every 424 ns -- "over 37 million cells per second"
-- and the scheduler has one cell time to run its four PIM iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.switch.cell import ATM_CELL, CellFormat

__all__ = [
    "CostComponent",
    "SwitchCostModel",
    "PROTOTYPE_MODEL",
    "PRODUCTION_MODEL",
    "cell_rate",
    "schedule_time_budget",
    "uncontended_latency",
    "AN2_PORTS",
    "AN2_LINK_BPS",
]

#: The AN2 prototype's port count and link speed.
AN2_PORTS = 16
AN2_LINK_BPS = 1.0e9

#: Cell latency across an uncontended AN2 switch (Section 1).
AN2_UNCONTENDED_LATENCY_S = 2.2e-6


@dataclass(frozen=True)
class CostComponent:
    """One functional unit of the switch BOM.

    ``count`` maps the port count N to the number of cost units the
    component needs (e.g. ``lambda n: n * n`` for the crossbar).
    """

    name: str
    unit_cost: float
    count: Callable[[int], float]

    def cost(self, ports: int) -> float:
        """Total relative cost at switch size ``ports``."""
        return self.unit_cost * self.count(ports)


class SwitchCostModel:
    """A BOM cost model calibrated against Table 2.

    Parameters
    ----------
    shares_at_16:
        Mapping from component name to its share of total cost at
        N = 16 (Table 2's column, as fractions summing to 1).

    The scaling law for each component is fixed (see module docstring);
    unit costs are derived from the N = 16 shares.
    """

    _SCALING: Dict[str, Callable[[int], float]] = {
        "optoelectronics": lambda n: n,
        "crossbar": lambda n: n * n,
        "buffer": lambda n: n,
        "scheduling": lambda n: n * n,
        "control": lambda n: 1,
    }

    def __init__(self, shares_at_16: Dict[str, float]):
        unknown = set(shares_at_16) - set(self._SCALING)
        if unknown:
            raise ValueError(f"unknown components: {sorted(unknown)}")
        missing = set(self._SCALING) - set(shares_at_16)
        if missing:
            raise ValueError(f"missing components: {sorted(missing)}")
        total = sum(shares_at_16.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"shares must sum to 1, got {total}")
        self.components: List[CostComponent] = [
            CostComponent(
                name=name,
                unit_cost=share / self._SCALING[name](AN2_PORTS),
                count=self._SCALING[name],
            )
            for name, share in shares_at_16.items()
        ]

    def total_cost(self, ports: int) -> float:
        """Total relative cost at switch size ``ports`` (1.0 at N=16)."""
        if ports <= 0:
            raise ValueError(f"ports must be positive, got {ports}")
        return sum(c.cost(ports) for c in self.components)

    def shares(self, ports: int) -> Dict[str, float]:
        """Each component's share of total cost at size ``ports``."""
        total = self.total_cost(ports)
        return {c.name: c.cost(ports) / total for c in self.components}

    def cost_per_port(self, ports: int) -> float:
        """Relative cost per port -- the economy-of-scale curve."""
        return self.total_cost(ports) / ports

    def table2_rows(self, ports: int = AN2_PORTS) -> List[Tuple[str, float]]:
        """(component, percent) rows in Table 2's order."""
        order = ["optoelectronics", "crossbar", "buffer", "scheduling", "control"]
        shares = self.shares(ports)
        return [(name, 100.0 * shares[name]) for name in order]


#: Table 2, prototype column (Xilinx FPGAs).
PROTOTYPE_MODEL = SwitchCostModel(
    {
        "optoelectronics": 0.48,
        "crossbar": 0.04,
        "buffer": 0.21,
        "scheduling": 0.10,
        "control": 0.17,
    }
)

#: Table 2, production estimate column (custom CMOS).
PRODUCTION_MODEL = SwitchCostModel(
    {
        "optoelectronics": 0.63,
        "crossbar": 0.05,
        "buffer": 0.19,
        "scheduling": 0.03,
        "control": 0.10,
    }
)


def cell_rate(
    ports: int = AN2_PORTS,
    link_bps: float = AN2_LINK_BPS,
    cell: CellFormat = ATM_CELL,
) -> float:
    """Aggregate scheduled cells per second.

    One cell may leave each port per slot, so the rate is
    ports / slot_time.  For the AN2 parameters this is the paper's
    "over 37 million cells per second".
    """
    if ports <= 0:
        raise ValueError(f"ports must be positive, got {ports}")
    return ports / cell.slot_time_seconds(link_bps)


def schedule_time_budget(
    link_bps: float = AN2_LINK_BPS, cell: CellFormat = ATM_CELL
) -> float:
    """Seconds available to compute one matching: one cell time."""
    return cell.slot_time_seconds(link_bps)


def uncontended_latency(
    pipeline_slots: float = AN2_UNCONTENDED_LATENCY_S
    / (ATM_CELL.total_bytes * 8 / AN2_LINK_BPS),
    link_bps: float = AN2_LINK_BPS,
    cell: CellFormat = ATM_CELL,
) -> float:
    """Uncontended cell latency across the switch, in seconds.

    The AN2's 2.2 us corresponds to ~5.2 cell times of pipeline
    (receive + schedule + crossbar + transmit); expressing it in slots
    lets the model re-derive wall-clock latency for other link speeds
    or cell formats, including converting Figure 3's slot-denominated
    delays into the paper's "13 microseconds at 95% load".
    """
    return pipeline_slots * cell.slot_time_seconds(link_bps)


def slots_to_seconds(
    slots: float, link_bps: float = AN2_LINK_BPS, cell: CellFormat = ATM_CELL
) -> float:
    """Convert a delay in cell slots to wall-clock seconds."""
    return slots * cell.slot_time_seconds(link_bps)


def fabric_element_counts(ports: int) -> Dict[str, int]:
    """Switching-element counts of the candidate fabrics (Section 2.2).

    Crossbar: N^2 crosspoints.  Batcher-banyan: 2x2 sorting/routing
    elements -- (N/2)(log2 N)(log2 N + 1)/2 for the Batcher stage plus
    (N/2) log2 N for the banyan.  The crossbar loses asymptotically but
    wins on constant factors and latency at the AN2's moderate scale,
    which is the paper's §2.2 argument; the fabric-scaling bench
    tabulates the crossover.
    """
    if ports < 2 or (ports & (ports - 1)) != 0:
        raise ValueError(f"ports must be a power of two >= 2, got {ports}")
    stages = ports.bit_length() - 1
    batcher = (ports // 2) * stages * (stages + 1) // 2
    banyan = (ports // 2) * stages
    return {
        "crossbar_crosspoints": ports * ports,
        "batcher_elements": batcher,
        "banyan_elements": banyan,
        "batcher_banyan_total": batcher + banyan,
    }
