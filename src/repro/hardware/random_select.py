"""Hardware approximations of random selection (Section 3.3).

"The thorniest hardware implementation problem is randomly selecting
one among k requesting inputs.  The obvious way to do this is to
generate a pseudo-random number between 1 and k, but we are examining
ways of doing more efficient random selection.  For instance, for
moderate-scale switches, the selection can be efficiently implemented
using tables of precomputed values.  Our simulations indicate that the
number of iterations needed by parallel iterative matching is
relatively insensitive to the technique used to approximate
randomness."

Two hardware-realistic selectors are provided and plugged into PIM by
the randomness-approximation ablation bench:

- :class:`LFSRGenerator` -- a 16-bit Fibonacci linear-feedback shift
  register, the classic FPGA pseudo-random source,
- :class:`TableSelector` -- a precomputed permutation table indexed by
  a free-running counter (no runtime randomness at all).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

__all__ = ["LFSRGenerator", "TableSelector", "lfsr_pim_rng"]


class LFSRGenerator:
    """16-bit Fibonacci LFSR (taps 16, 15, 13, 4 -- maximal length).

    Produces the full 2^16 - 1 cycle of non-zero 16-bit states.  The
    ``select`` method reduces the state modulo k, which is biased for
    k not dividing 65535 -- deliberately so: the ablation quantifies
    how little that bias matters to PIM.
    """

    _TAPS = (15, 14, 12, 3)  # 0-indexed bit positions of the taps

    def __init__(self, seed: int = 0xACE1):
        if not 0 < seed < (1 << 16):
            raise ValueError(f"seed must be a non-zero 16-bit value, got {seed}")
        self._state = seed

    def step(self) -> int:
        """Advance one clock; returns the new 16-bit state."""
        feedback = 0
        for tap in self._TAPS:
            feedback ^= (self._state >> tap) & 1
        self._state = ((self._state << 1) | feedback) & 0xFFFF
        return self._state

    def select(self, k: int) -> int:
        """Pick an index in [0, k) from the next state."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return self.step() % k

    def period_check(self, limit: int = 1 << 17) -> int:
        """Cycle length of the register (65535 for maximal-length taps)."""
        start = self._state
        for count in range(1, limit):
            if self.step() == start:
                return count
        raise AssertionError("LFSR did not cycle within the limit")


class TableSelector:
    """Random selection from a precomputed table (Section 3.3).

    A table of ``rows`` precomputed random permutations of [0, n) is
    addressed by a free-running row counter; selecting among k
    requesters takes the first table entry that is below k.  All
    randomness is consumed at configuration time -- at run time the
    hardware only indexes SRAM.
    """

    def __init__(self, n: int, rows: int = 64, seed: Optional[int] = None):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if rows < 1:
            raise ValueError(f"rows must be >= 1, got {rows}")
        if seed is not None:
            rng = np.random.default_rng(seed)
        else:
            # Deterministic fallback (repro.sim.rng default-seed policy).
            from repro.sim.rng import default_generator

            rng = default_generator("hardware/table_selector")
        self.n = n
        self._table = np.stack([rng.permutation(n) for _ in range(rows)])
        self._row = 0

    def select(self, k: int) -> int:
        """Pick an index in [0, k) using the next table row."""
        if not 1 <= k <= self.n:
            raise ValueError(f"k must be in 1..{self.n}, got {k}")
        row = self._table[self._row]
        self._row = (self._row + 1) % self._table.shape[0]
        for value in row:
            if value < k:
                return int(value)
        raise AssertionError("permutation row missing small values")


def lfsr_pim_rng(seed: int = 0xACE1, ports: int = 16) -> "LFSRRandomAdapter":
    """An adapter exposing a *bank* of LFSRs through the subset of the
    numpy.random.Generator interface that PIM uses (``random(shape)``),
    so a PIMScheduler can run on hardware-grade pseudo-randomness::

        scheduler = PIMScheduler(rng=lfsr_pim_rng())

    Per Section 3.2, "each output choose[s] among requests using an
    independent random number", so the hardware has one LFSR per port;
    a single shared LFSR would leave its strongly correlated
    consecutive states (one bit-shift apart) in neighbouring matrix
    entries and measurably slow PIM's convergence.
    """
    registers = []
    for index in range(ports):
        # Distinct non-zero 16-bit seeds derived from the root seed.
        child = ((seed + 0x9E37 * (index + 1)) & 0xFFFF) or 0xACE1
        registers.append(LFSRGenerator(child))
    return LFSRRandomAdapter(registers)


class LFSRRandomAdapter:
    """Duck-typed stand-in for numpy Generator backed by LFSRs.

    For a 2-D request of shape (N, M), column j is drawn from register
    j mod bank-size -- modelling the per-port arbiter registers.
    Scalars and 1-D draws round-robin through the bank.
    """

    def __init__(self, registers: List[LFSRGenerator]):
        if not registers:
            raise ValueError("need at least one LFSR")
        self._registers = registers
        self._cursor = 0

    def _next_register(self) -> LFSRGenerator:
        register = self._registers[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._registers)
        return register

    def random(self, shape=None):
        """Uniform floats in [0, 1) from the register bank."""
        if shape is None:
            return self._next_register().step() / 65536.0
        if np.isscalar(shape):
            shape = (int(shape),)
        if len(shape) == 2:
            rows, cols = shape
            values = np.empty((rows, cols), dtype=np.float64)
            for j in range(cols):
                register = self._registers[j % len(self._registers)]
                for i in range(rows):
                    values[i, j] = register.step() / 65536.0
            return values
        size = int(np.prod(shape))
        values = np.array(
            [self._next_register().step() for _ in range(size)], dtype=np.float64
        )
        return (values / 65536.0).reshape(shape)

    def integers(self, high):
        """One integer in [0, high)."""
        return self._next_register().select(int(high))
