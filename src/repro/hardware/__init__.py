"""Hardware cost and timing model of the AN2 switch.

Reproduces Table 2 (component costs as a proportion of total switch
cost, prototype and production estimates) and the Section 1/3 headline
numbers: 37 million scheduled cells per second and ~2.2 microsecond
uncontended cell latency for a 16x16 switch with 1 Gb/s links.
"""

from repro.hardware.cost import (
    SwitchCostModel,
    PROTOTYPE_MODEL,
    PRODUCTION_MODEL,
    cell_rate,
    schedule_time_budget,
    slots_to_seconds,
    uncontended_latency,
)
from repro.hardware.random_select import LFSRGenerator, TableSelector, lfsr_pim_rng

__all__ = [
    "SwitchCostModel",
    "PROTOTYPE_MODEL",
    "PRODUCTION_MODEL",
    "cell_rate",
    "schedule_time_budget",
    "slots_to_seconds",
    "uncontended_latency",
    "LFSRGenerator",
    "TableSelector",
    "lfsr_pim_rng",
]
