"""Correctness harness: invariants, differential runs, and fuzzing.

Three layers, each usable on its own:

- :mod:`repro.check.invariants` -- composable per-slot checkers wired
  through the :mod:`repro.obs` probe hook (stream invariants) and a
  :class:`~repro.check.invariants.CheckingScheduler` wrapper (matching
  validity / maximality), plus end-of-run conservation checks;
- :mod:`repro.check.differential` -- seed-matched differential runs
  (object vs fast path) and cross-scheduler metamorphic checks;
- :mod:`repro.check.fuzz` -- a randomized sweep over (ports, load,
  pattern, scheduler, iterations, seed) that shrinks any failure to a
  minimal reproducer and writes it as a pytest-replayable JSON case.

The ``repro-an2 check`` CLI subcommand runs the sweep; ``make check``
and the CI smoke stage bound it by seed count and wall-clock budget.
"""

from repro.check.differential import (
    DifferentialReport,
    ScenarioParityReport,
    backend_parity,
    integrated_parity,
    metamorphic_pim_iterations,
    metamorphic_statistical_fill,
    network_parity,
    scenario_parity,
    statistical_parity,
)
from repro.check.fuzz import (
    Case,
    CbrCase,
    ChurnCase,
    NetworkCase,
    ScenarioCase,
    StatCase,
    FuzzReport,
    fuzz,
    fuzz_cbr,
    fuzz_churn,
    fuzz_network,
    fuzz_scenarios,
    fuzz_statistical,
    load_case,
    run_case,
    run_cbr_case,
    run_churn_case,
    run_network_case,
    run_scenario_case,
    run_stat_case,
    shrink,
)
from repro.check.invariants import (
    CheckingScheduler,
    InvariantSink,
    InvariantViolation,
    check_conservation,
)

__all__ = [
    "Case",
    "CheckingScheduler",
    "DifferentialReport",
    "FuzzReport",
    "InvariantSink",
    "InvariantViolation",
    "backend_parity",
    "CbrCase",
    "check_conservation",
    "ChurnCase",
    "NetworkCase",
    "ScenarioCase",
    "ScenarioParityReport",
    "StatCase",
    "fuzz",
    "fuzz_cbr",
    "fuzz_churn",
    "fuzz_network",
    "fuzz_scenarios",
    "fuzz_statistical",
    "integrated_parity",
    "load_case",
    "metamorphic_pim_iterations",
    "metamorphic_statistical_fill",
    "network_parity",
    "run_case",
    "run_cbr_case",
    "run_churn_case",
    "run_network_case",
    "run_scenario_case",
    "run_stat_case",
    "scenario_parity",
    "statistical_parity",
    "shrink",
]
