"""Randomized invariant sweep with failure shrinking.

A :class:`Case` is one fully-seeded configuration point: (ports, load,
pattern, scheduler, iterations, slots, seed).  :func:`run_case` builds
the corresponding switch with every checker attached -- the scheduler
wrapped in :class:`~repro.check.invariants.CheckingScheduler`, the
probe feeding an :class:`~repro.check.invariants.InvariantSink`,
end-of-run conservation, and (where the fast path supports the
configuration) a seed-matched :func:`~repro.check.differential.backend_parity`
run -- and raises on the first violation.

:func:`fuzz` sweeps random cases until a seed count or wall-clock
budget is exhausted.  Each failure is shrunk
(:func:`shrink`: smaller ports, fewer slots, fewer iterations, the
plainest pattern) to a minimal reproducer and written as JSON that
``tests/check/test_replay_failures.py`` replays under pytest, so a
fuzz finding becomes a regression test by dropping the file in
``tests/check/failures/``.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, replace
from typing import Callable, List, Optional

__all__ = ["Case", "FuzzReport", "fuzz", "load_case", "run_case", "shrink"]

PATTERNS = ("uniform", "bursty", "clientserver")
SCHEDULERS = ("pim", "islip", "rrm", "statistical")


@dataclass(frozen=True)
class Case:
    """One reproducible fuzz configuration."""

    seed: int
    ports: int = 8
    load: float = 0.9
    pattern: str = "uniform"
    scheduler: str = "pim"
    iterations: int = 4
    slots: int = 200

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)


def load_case(text: str) -> Case:
    """Parse a JSON reproducer back into a :class:`Case`."""
    return Case(**json.loads(text))


def _build_traffic(case: Case):
    from repro.sim.rng import derive_seed
    from repro.traffic.bursty import BurstyTraffic
    from repro.traffic.clientserver import ClientServerTraffic
    from repro.traffic.uniform import UniformTraffic

    seed = derive_seed(case.seed, f"fuzz/traffic/{case.pattern}")
    if case.pattern == "uniform":
        return UniformTraffic(case.ports, load=case.load, seed=seed)
    if case.pattern == "bursty":
        return BurstyTraffic(case.ports, load=case.load, seed=seed)
    if case.pattern == "clientserver":
        return ClientServerTraffic(
            case.ports,
            load=case.load,
            servers=max(1, case.ports // 4),
            seed=seed,
        )
    raise ValueError(f"unknown pattern {case.pattern!r}")


def _build_scheduler(case: Case):
    import numpy as np

    from repro.core.islip import ISLIPScheduler
    from repro.core.pim import PIMScheduler
    from repro.core.rrm import RRMScheduler
    from repro.core.statistical import StatisticalMatcher
    from repro.sim.rng import derive_seed

    seed = derive_seed(case.seed, f"fuzz/match/{case.scheduler}")
    if case.scheduler == "pim":
        return PIMScheduler(iterations=case.iterations, seed=seed)
    if case.scheduler == "islip":
        return ISLIPScheduler(iterations=case.iterations)
    if case.scheduler == "rrm":
        return RRMScheduler(iterations=case.iterations)
    if case.scheduler == "statistical":
        from repro.check.differential import _random_allocations

        units = 16
        allocations = _random_allocations(
            case.ports, units, np.random.default_rng(seed)
        )
        return StatisticalMatcher(allocations, units=units, seed=seed, fill=True)
    raise ValueError(f"unknown scheduler {case.scheduler!r}")


def run_case(case: Case, differential: bool = True) -> None:
    """Run every checker on one case; raises on the first violation.

    ``differential=False`` limits the run to the invariant checkers
    (used while shrinking, where re-running the cross-backend
    comparison on every candidate would dominate the budget).
    """
    from repro.check.differential import backend_parity
    from repro.check.invariants import (
        CheckingScheduler,
        InvariantSink,
        check_conservation,
    )
    from repro.obs.probe import Probe
    from repro.switch.switch import CrossbarSwitch

    scheduler = CheckingScheduler(_build_scheduler(case))
    switch = CrossbarSwitch(case.ports, scheduler)
    result = switch.run(
        _build_traffic(case),
        slots=case.slots,
        probe=Probe(InvariantSink()),
    )
    check_conservation(result, label=str(case))
    if differential and case.scheduler == "pim" and case.pattern == "uniform":
        backend_parity(
            case.ports,
            case.load,
            case.slots,
            seed=case.seed,
            iterations=case.iterations,
        )


def _fails(case: Case) -> Optional[str]:
    try:
        run_case(case, differential=False)
    except Exception as exc:  # noqa: BLE001 -- any failure is a reproducer
        return f"{type(exc).__name__}: {exc}"
    return None


def shrink(
    case: Case, fails: Callable[[Case], Optional[str]] = _fails
) -> Case:
    """Greedily minimize a failing case while it keeps failing.

    Tries, in order and to fixpoint: the plainest traffic pattern,
    halved ports (floor 2), halved slots (floor 10), a single
    iteration, and a tamer load.  ``fails`` returns the failure
    message (truthy) or None; the default re-runs the invariant
    checkers without the differential stage.
    """
    if fails(case) is None:
        raise ValueError("shrink() needs a failing case")
    changed = True
    while changed:
        changed = False
        candidates: List[Case] = []
        if case.pattern != "uniform":
            candidates.append(replace(case, pattern="uniform"))
        if case.ports > 2:
            candidates.append(replace(case, ports=max(2, case.ports // 2)))
        if case.slots > 10:
            candidates.append(replace(case, slots=max(10, case.slots // 2)))
        if case.iterations > 1:
            candidates.append(replace(case, iterations=1))
        if case.load > 0.5:
            candidates.append(replace(case, load=0.5))
        for candidate in candidates:
            if fails(candidate) is not None:
                case = candidate
                changed = True
                break
    return case


@dataclass
class FuzzReport:
    """Outcome of one sweep."""

    cases_run: int
    seeds_requested: int
    elapsed_seconds: float
    failures: List[dict]
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        lines = [
            f"fuzz: {self.cases_run} cases, "
            f"{self.elapsed_seconds:.1f}s elapsed"
            + (", budget exhausted" if self.budget_exhausted else "")
        ]
        if self.failures:
            lines.append(f"  {len(self.failures)} FAILURES:")
            for failure in self.failures:
                lines.append(f"    {failure['shrunk']}  <-  {failure['error']}")
        else:
            lines.append("  all invariants held")
        return "\n".join(lines)


def _case_for_seed(seed: int) -> Case:
    """Deterministically map a seed to one configuration point.

    The scheduler cycles round-robin with the seed so any sweep of
    ``len(SCHEDULERS)`` or more consecutive seeds provably covers all
    of {pim, islip, rrm, statistical}; the remaining dimensions are
    drawn from a seed-derived stream.
    """
    import numpy as np

    from repro.sim.rng import derive_seed

    rng = np.random.default_rng(derive_seed(seed, "fuzz/config"))
    return Case(
        seed=seed,
        ports=int(rng.choice([2, 4, 8, 16])),
        load=float(rng.choice([0.3, 0.6, 0.8, 0.9, 0.95])),
        pattern=str(rng.choice(PATTERNS)),
        scheduler=SCHEDULERS[seed % len(SCHEDULERS)],
        iterations=int(rng.choice([1, 2, 4])),
        slots=int(rng.choice([100, 200, 400])),
    )


def fuzz(
    seeds: int = 25,
    budget_seconds: Optional[float] = None,
    out_dir: Optional[str] = None,
    base_seed: int = 0,
) -> FuzzReport:
    """Sweep ``seeds`` random cases (bounded by ``budget_seconds``).

    Every failure is shrunk to a minimal reproducer; when ``out_dir``
    is given, each reproducer is written there as
    ``case_<seed>.json`` for pytest replay.
    """
    start = time.monotonic()
    failures: List[dict] = []
    cases_run = 0
    budget_exhausted = False
    for index in range(seeds):
        if budget_seconds is not None and time.monotonic() - start > budget_seconds:
            budget_exhausted = True
            break
        case = _case_for_seed(base_seed + index)
        try:
            run_case(case)
        except Exception as exc:  # noqa: BLE001 -- record and continue
            error = f"{type(exc).__name__}: {exc}"
            try:
                shrunk = shrink(case)
            except ValueError:
                # Failure only reproduces with the differential stage
                # (or was transient); keep the original case.
                shrunk = case
            record = {
                "case": asdict(case),
                "shrunk": asdict(shrunk),
                "error": error,
            }
            failures.append(record)
            if out_dir is not None:
                import os

                os.makedirs(out_dir, exist_ok=True)
                path = os.path.join(out_dir, f"case_{case.seed}.json")
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(record["shrunk"], handle, sort_keys=True, indent=2)
                    handle.write("\n")
        cases_run += 1
    return FuzzReport(
        cases_run=cases_run,
        seeds_requested=seeds,
        elapsed_seconds=time.monotonic() - start,
        failures=failures,
        budget_exhausted=budget_exhausted,
    )
