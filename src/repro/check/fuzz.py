"""Randomized invariant sweep with failure shrinking.

A :class:`Case` is one fully-seeded configuration point: (ports, load,
pattern, scheduler, iterations, slots, seed).  :func:`run_case` builds
the corresponding switch with every checker attached -- the scheduler
wrapped in :class:`~repro.check.invariants.CheckingScheduler`, the
probe feeding an :class:`~repro.check.invariants.InvariantSink`,
end-of-run conservation, and (where the fast path supports the
configuration) a seed-matched :func:`~repro.check.differential.backend_parity`
run -- and raises on the first violation.

:func:`fuzz` sweeps random cases until a seed count or wall-clock
budget is exhausted.  Each failure is shrunk
(:func:`shrink`: smaller ports, fewer slots, fewer iterations, the
plainest pattern) to a minimal reproducer and written as JSON that
``tests/check/test_replay_failures.py`` replays under pytest, so a
fuzz finding becomes a regression test by dropping the file in
``tests/check/failures/``.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, replace
from typing import Callable, List, Optional

__all__ = [
    "Case",
    "CbrCase",
    "ChurnCase",
    "NetworkCase",
    "ScenarioCase",
    "StatCase",
    "FuzzReport",
    "fuzz",
    "fuzz_cbr",
    "fuzz_churn",
    "fuzz_network",
    "fuzz_scenarios",
    "fuzz_statistical",
    "load_case",
    "run_case",
    "run_cbr_case",
    "run_churn_case",
    "run_network_case",
    "run_scenario_case",
    "run_stat_case",
    "shrink",
]

PATTERNS = ("uniform", "bursty", "clientserver")
SCHEDULERS = ("pim", "islip", "rrm", "statistical", "lqf", "wavefront", "qps")
#: Registry kernels with a batched fast-path twin: these cases also run
#: the cross-backend differential stage (slot-exact for non-PIM).
DIFFERENTIAL_SCHEDULERS = ("pim", "islip", "lqf", "wavefront", "qps")


@dataclass(frozen=True)
class Case:
    """One reproducible fuzz configuration."""

    seed: int
    ports: int = 8
    load: float = 0.9
    pattern: str = "uniform"
    scheduler: str = "pim"
    iterations: int = 4
    slots: int = 200

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)


def load_case(text: str) -> Case:
    """Parse a JSON reproducer back into a :class:`Case`."""
    return Case(**json.loads(text))


def _build_traffic(case: Case):
    from repro.sim.rng import derive_seed
    from repro.traffic.bursty import BurstyTraffic
    from repro.traffic.clientserver import ClientServerTraffic
    from repro.traffic.uniform import UniformTraffic

    seed = derive_seed(case.seed, f"fuzz/traffic/{case.pattern}")
    if case.pattern == "uniform":
        return UniformTraffic(case.ports, load=case.load, seed=seed)
    if case.pattern == "bursty":
        return BurstyTraffic(case.ports, load=case.load, seed=seed)
    if case.pattern == "clientserver":
        return ClientServerTraffic(
            case.ports,
            load=case.load,
            servers=max(1, case.ports // 4),
            seed=seed,
        )
    raise ValueError(f"unknown pattern {case.pattern!r}")


def _build_scheduler(case: Case):
    import numpy as np

    from repro.core.islip import ISLIPScheduler
    from repro.core.lqf import LQFScheduler
    from repro.core.pim import PIMScheduler
    from repro.core.qps import QPSScheduler
    from repro.core.rrm import RRMScheduler
    from repro.core.statistical import StatisticalMatcher
    from repro.core.wavefront import WavefrontScheduler
    from repro.sim.rng import derive_seed

    seed = derive_seed(case.seed, f"fuzz/match/{case.scheduler}")
    if case.scheduler == "pim":
        return PIMScheduler(iterations=case.iterations, seed=seed)
    if case.scheduler == "islip":
        return ISLIPScheduler(iterations=case.iterations)
    if case.scheduler == "rrm":
        return RRMScheduler(iterations=case.iterations)
    if case.scheduler == "lqf":
        return LQFScheduler(seed=seed)
    if case.scheduler == "wavefront":
        return WavefrontScheduler()
    if case.scheduler == "qps":
        return QPSScheduler(rounds=case.iterations, seed=seed)
    if case.scheduler == "statistical":
        from repro.check.differential import _random_allocations

        units = 16
        allocations = _random_allocations(
            case.ports, units, np.random.default_rng(seed)
        )
        return StatisticalMatcher(allocations, units=units, seed=seed, fill=True)
    raise ValueError(f"unknown scheduler {case.scheduler!r}")


def run_case(case: Case, differential: bool = True) -> None:
    """Run every checker on one case; raises on the first violation.

    ``differential=False`` limits the run to the invariant checkers
    (used while shrinking, where re-running the cross-backend
    comparison on every candidate would dominate the budget).
    """
    from repro.check.differential import backend_parity
    from repro.check.invariants import (
        CheckingScheduler,
        InvariantSink,
        check_conservation,
    )
    from repro.obs.probe import Probe
    from repro.switch.switch import CrossbarSwitch

    scheduler = CheckingScheduler(_build_scheduler(case))
    switch = CrossbarSwitch(case.ports, scheduler)
    result = switch.run(
        _build_traffic(case),
        slots=case.slots,
        probe=Probe(InvariantSink()),
    )
    check_conservation(result, label=str(case))
    if (
        differential
        and case.scheduler in DIFFERENTIAL_SCHEDULERS
        and case.pattern == "uniform"
    ):
        # PIM compares drained totals (independent matching streams);
        # every other registry kernel runs against its seed-matched
        # object twin and must agree slot for slot.
        backend_parity(
            case.ports,
            case.load,
            case.slots,
            seed=case.seed,
            iterations=case.iterations,
            scheduler=case.scheduler,
        )


def _fails(case: Case) -> Optional[str]:
    try:
        run_case(case, differential=False)
    except Exception as exc:  # noqa: BLE001 -- any failure is a reproducer
        return f"{type(exc).__name__}: {exc}"
    return None


def shrink(
    case: Case, fails: Callable[[Case], Optional[str]] = _fails
) -> Case:
    """Greedily minimize a failing case while it keeps failing.

    Tries, in order and to fixpoint: the plainest traffic pattern,
    halved ports (floor 2), halved slots (floor 10), a single
    iteration, and a tamer load.  ``fails`` returns the failure
    message (truthy) or None; the default re-runs the invariant
    checkers without the differential stage.
    """
    if fails(case) is None:
        raise ValueError("shrink() needs a failing case")
    changed = True
    while changed:
        changed = False
        candidates: List[Case] = []
        if case.pattern != "uniform":
            candidates.append(replace(case, pattern="uniform"))
        if case.ports > 2:
            candidates.append(replace(case, ports=max(2, case.ports // 2)))
        if case.slots > 10:
            candidates.append(replace(case, slots=max(10, case.slots // 2)))
        if case.iterations > 1:
            candidates.append(replace(case, iterations=1))
        if case.load > 0.5:
            candidates.append(replace(case, load=0.5))
        for candidate in candidates:
            if fails(candidate) is not None:
                case = candidate
                changed = True
                break
    return case


@dataclass
class FuzzReport:
    """Outcome of one sweep."""

    cases_run: int
    seeds_requested: int
    elapsed_seconds: float
    failures: List[dict]
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        lines = [
            f"fuzz: {self.cases_run} cases, "
            f"{self.elapsed_seconds:.1f}s elapsed"
            + (", budget exhausted" if self.budget_exhausted else "")
        ]
        if self.failures:
            lines.append(f"  {len(self.failures)} FAILURES:")
            for failure in self.failures:
                lines.append(f"    {failure['shrunk']}  <-  {failure['error']}")
        else:
            lines.append("  all invariants held")
        return "\n".join(lines)


def _case_for_seed(seed: int) -> Case:
    """Deterministically map a seed to one configuration point.

    The scheduler cycles round-robin with the seed so any sweep of
    ``len(SCHEDULERS)`` or more consecutive seeds provably covers all
    the full scheduler registry; the remaining dimensions are drawn
    from a seed-derived stream.
    """
    import numpy as np

    from repro.sim.rng import derive_seed

    rng = np.random.default_rng(derive_seed(seed, "fuzz/config"))
    return Case(
        seed=seed,
        ports=int(rng.choice([2, 4, 8, 16])),
        load=float(rng.choice([0.3, 0.6, 0.8, 0.9, 0.95])),
        pattern=str(rng.choice(PATTERNS)),
        scheduler=SCHEDULERS[seed % len(SCHEDULERS)],
        iterations=int(rng.choice([1, 2, 4])),
        slots=int(rng.choice([100, 200, 400])),
    )


@dataclass(frozen=True)
class CbrCase:
    """One reproducible integrated CBR+VBR parity fuzz point."""

    seed: int
    ports: int = 4
    frame_slots: int = 8
    utilization: float = 0.5
    vbr_load: float = 0.6
    slots: int = 150
    warmup: int = 20

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)


def run_cbr_case(case: CbrCase) -> None:
    """Seed-matched object-vs-fastpath parity on one CBR case.

    Raises :class:`~repro.check.invariants.InvariantViolation` (with
    the first divergent slot) or :class:`CBRBufferOverflow` on the
    first violation; the fast path runs with ``check=True`` so the
    occupancy/claim-collision invariants are asserted every slot too.
    """
    from repro.check.differential import integrated_parity

    integrated_parity(
        case.ports,
        case.frame_slots,
        case.utilization,
        case.vbr_load,
        case.slots,
        seed=case.seed,
        warmup=case.warmup,
    )


def _cbr_case_for_seed(seed: int) -> CbrCase:
    import numpy as np

    from repro.sim.rng import derive_seed

    rng = np.random.default_rng(derive_seed(seed, "fuzz/cbr-config"))
    return CbrCase(
        seed=seed,
        ports=int(rng.choice([2, 4, 8])),
        frame_slots=int(rng.choice([4, 8, 16])),
        utilization=float(rng.choice([0.25, 0.5, 0.75, 1.0])),
        vbr_load=float(rng.choice([0.2, 0.5, 0.8, 1.0])),
        slots=int(rng.choice([80, 150, 300])),
        warmup=int(rng.choice([0, 20])),
    )


def fuzz_cbr(
    seeds: int = 10,
    budget_seconds: Optional[float] = None,
    out_dir: Optional[str] = None,
    base_seed: int = 0,
) -> FuzzReport:
    """Sweep random integrated CBR+VBR parity cases.

    Like :func:`fuzz`, but each case is a full seed-matched
    object-vs-fastpath comparison of the integrated switch (per-slot
    CBR/VBR departures, per-class delay sums, counters).  Failures are
    recorded unshrunk -- the case tuple is already minimal enough to
    replay directly.
    """
    return _sweep(
        seeds, budget_seconds, out_dir, base_seed,
        make_case=_cbr_case_for_seed, run=run_cbr_case, tag="cbr",
    )


@dataclass(frozen=True)
class StatCase:
    """One reproducible statistical-matching parity fuzz point."""

    seed: int
    ports: int = 4
    units: int = 16
    utilization: float = 0.75
    load: float = 0.8
    rounds: int = 2
    fill: bool = True
    slots: int = 150
    warmup: int = 0

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)


def run_stat_case(case: StatCase) -> None:
    """Seed-matched object-vs-fastpath parity on one statistical case.

    The statistical fast path replays the object matcher's generator
    draw for draw at B = 1, so the check is slot-exact: raises
    :class:`~repro.check.invariants.InvariantViolation` with the first
    divergent round/slot on any mismatch (the fast path also runs with
    ``check=True``, asserting its occupancy invariants every slot).
    """
    from repro.check.differential import statistical_parity

    statistical_parity(
        case.ports,
        case.units,
        case.utilization,
        case.load,
        case.slots,
        seed=case.seed,
        rounds=case.rounds,
        fill=case.fill,
        warmup=case.warmup,
    )


def _stat_case_for_seed(seed: int) -> StatCase:
    """Deterministically map a seed to one statistical parity point.

    ``fill`` alternates with the seed so any two consecutive seeds
    cover both the filled and the statistical-only configuration; the
    remaining dimensions come from a seed-derived stream.
    """
    import numpy as np

    from repro.sim.rng import derive_seed

    rng = np.random.default_rng(derive_seed(seed, "fuzz/stat-config"))
    return StatCase(
        seed=seed,
        ports=int(rng.choice([2, 4, 8])),
        units=int(rng.choice([4, 8, 16])),
        utilization=float(rng.choice([0.25, 0.5, 0.75, 1.0])),
        load=float(rng.choice([0.2, 0.5, 0.8, 1.0])),
        rounds=int(rng.choice([1, 2, 3])),
        fill=bool(seed % 2 == 0),
        slots=int(rng.choice([80, 150, 300])),
        warmup=int(rng.choice([0, 20])),
    )


def fuzz_statistical(
    seeds: int = 10,
    budget_seconds: Optional[float] = None,
    out_dir: Optional[str] = None,
    base_seed: int = 0,
) -> FuzzReport:
    """Sweep random statistical-matching parity cases.

    Like :func:`fuzz_cbr`: each case is a full seed-matched
    object-vs-fastpath comparison (per-round ``StatRound`` anatomy,
    per-slot arrivals/backlog/transfers, drained delay sums).
    Failures are recorded unshrunk -- the case tuple replays directly.
    """
    return _sweep(
        seeds, budget_seconds, out_dir, base_seed,
        make_case=_stat_case_for_seed, run=run_stat_case, tag="statistical",
    )


@dataclass(frozen=True)
class ChurnCase:
    """One reproducible Slepian-Duguid churn sequence."""

    seed: int
    ports: int = 4
    frame_slots: int = 8
    operations: int = 120

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)


def run_churn_case(case: ChurnCase) -> None:
    """Interleave add/remove reservations, checking after every op.

    Drives a :class:`SlepianDuguidScheduler` through a random
    high-utilization add/remove sequence (biased 2:1 toward adds so
    the frame fills up and insertions exercise the ``_swap_chain``
    rearrangement path, including removal-then-reinsertion).  After
    *every* operation:

    - ``FrameSchedule.validate()`` must hold (forward/backward slot
      maps agree);
    - the schedule's ``reservation_matrix()`` must equal the
      scheduler's own ``reservations`` ledger;
    - no input or output may be committed past the frame length.
    """
    import numpy as np

    from repro.cbr.slepian_duguid import SlepianDuguidScheduler
    from repro.sim.rng import derive_seed

    rng = np.random.default_rng(derive_seed(case.seed, "fuzz/churn"))
    scheduler = SlepianDuguidScheduler(case.ports, case.frame_slots)
    active: List[tuple] = []  # (input, output, cells) still reserved

    def check(op: str) -> None:
        scheduler.schedule.validate()
        matrix = scheduler.schedule.reservation_matrix()
        ledger = scheduler.reservations
        if not (matrix == ledger).all():
            raise AssertionError(
                f"{case}: after {op}: schedule matrix disagrees with "
                f"ledger:\n{matrix}\nvs\n{ledger}"
            )
        if (matrix.sum(axis=1) > case.frame_slots).any() or (
            matrix.sum(axis=0) > case.frame_slots
        ).any():
            raise AssertionError(f"{case}: after {op}: link over-committed")

    for _ in range(case.operations):
        add = not active or rng.random() < 2 / 3
        if add:
            i = int(rng.integers(case.ports))
            j = int(rng.integers(case.ports))
            headroom = min(
                case.frame_slots - scheduler.input_committed(i),
                case.frame_slots - scheduler.output_committed(j),
            )
            if headroom <= 0:
                continue
            cells = int(rng.integers(1, headroom + 1))
            scheduler.add_reservation(i, j, cells)
            active.append((i, j, cells))
            check(f"add({i}, {j}, {cells})")
        else:
            i, j, cells = active.pop(int(rng.integers(len(active))))
            scheduler.remove_reservation(i, j, cells)
            check(f"remove({i}, {j}, {cells})")


def _churn_case_for_seed(seed: int) -> ChurnCase:
    import numpy as np

    from repro.sim.rng import derive_seed

    rng = np.random.default_rng(derive_seed(seed, "fuzz/churn-config"))
    return ChurnCase(
        seed=seed,
        ports=int(rng.choice([2, 4, 8, 16])),
        frame_slots=int(rng.choice([4, 8, 16, 32])),
        operations=int(rng.choice([60, 120, 250])),
    )


def fuzz_churn(
    seeds: int = 25,
    budget_seconds: Optional[float] = None,
    out_dir: Optional[str] = None,
    base_seed: int = 0,
) -> FuzzReport:
    """Sweep random Slepian-Duguid churn sequences (satellite of the
    CBR fast-path work: the swap-chain path under
    removal-then-reinsertion was previously untested)."""
    return _sweep(
        seeds, budget_seconds, out_dir, base_seed,
        make_case=_churn_case_for_seed, run=run_churn_case, tag="churn",
    )


def _sweep(
    seeds: int,
    budget_seconds: Optional[float],
    out_dir: Optional[str],
    base_seed: int,
    make_case,
    run,
    tag: str,
) -> FuzzReport:
    """Shared sweep driver for the case families without a shrinker."""
    start = time.monotonic()
    failures: List[dict] = []
    cases_run = 0
    budget_exhausted = False
    for index in range(seeds):
        if budget_seconds is not None and time.monotonic() - start > budget_seconds:
            budget_exhausted = True
            break
        case = make_case(base_seed + index)
        try:
            run(case)
        except Exception as exc:  # noqa: BLE001 -- record and continue
            record = {
                "case": asdict(case),
                "shrunk": asdict(case),
                "error": f"{type(exc).__name__}: {exc}",
            }
            failures.append(record)
            if out_dir is not None:
                import os

                os.makedirs(out_dir, exist_ok=True)
                path = os.path.join(out_dir, f"{tag}_case_{case.seed}.json")
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(record["shrunk"], handle, sort_keys=True, indent=2)
                    handle.write("\n")
        cases_run += 1
    return FuzzReport(
        cases_run=cases_run,
        seeds_requested=seeds,
        elapsed_seconds=time.monotonic() - start,
        failures=failures,
        budget_exhausted=budget_exhausted,
    )


def fuzz(
    seeds: int = 25,
    budget_seconds: Optional[float] = None,
    out_dir: Optional[str] = None,
    base_seed: int = 0,
) -> FuzzReport:
    """Sweep ``seeds`` random cases (bounded by ``budget_seconds``).

    Every failure is shrunk to a minimal reproducer; when ``out_dir``
    is given, each reproducer is written there as
    ``case_<seed>.json`` for pytest replay.
    """
    start = time.monotonic()
    failures: List[dict] = []
    cases_run = 0
    budget_exhausted = False
    for index in range(seeds):
        if budget_seconds is not None and time.monotonic() - start > budget_seconds:
            budget_exhausted = True
            break
        case = _case_for_seed(base_seed + index)
        try:
            run_case(case)
        except Exception as exc:  # noqa: BLE001 -- record and continue
            error = f"{type(exc).__name__}: {exc}"
            try:
                shrunk = shrink(case)
            except ValueError:
                # Failure only reproduces with the differential stage
                # (or was transient); keep the original case.
                shrunk = case
            record = {
                "case": asdict(case),
                "shrunk": asdict(shrunk),
                "error": error,
            }
            failures.append(record)
            if out_dir is not None:
                import os

                os.makedirs(out_dir, exist_ok=True)
                path = os.path.join(out_dir, f"case_{case.seed}.json")
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(record["shrunk"], handle, sort_keys=True, indent=2)
                    handle.write("\n")
        cases_run += 1
    return FuzzReport(
        cases_run=cases_run,
        seeds_requested=seeds,
        elapsed_seconds=time.monotonic() - start,
        failures=failures,
        budget_exhausted=budget_exhausted,
    )


@dataclass(frozen=True)
class NetworkCase:
    """One reproducible network-parity fuzz point.

    ``buffer_limit == 0`` encodes "no link-level flow control" so the
    whole case stays JSON-primitive.
    """

    seed: int
    topology: str = "parking_lot"
    size: int = 3
    n_flows: int = 4
    latency: int = 1
    buffer_limit: int = 0
    slots: int = 200
    warmup: int = 0

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)


def run_network_case(case: NetworkCase) -> None:
    """Slot-exact object-vs-fastpath parity on one network case.

    Raises :class:`~repro.check.invariants.InvariantViolation` with
    the first divergent slot; the fast path runs with ``check=True``
    so cell-conservation and VOQ-count invariants are asserted every
    slot too (see :func:`repro.check.differential.network_parity`).
    """
    from repro.check.differential import network_parity

    network_parity(
        topology=case.topology,
        size=case.size,
        n_flows=case.n_flows,
        slots=case.slots,
        seed=case.seed,
        warmup=case.warmup,
        buffer_limit=case.buffer_limit or None,
        latency=case.latency,
    )


def _network_case_for_seed(seed: int) -> NetworkCase:
    import numpy as np

    from repro.network.topologies import TOPOLOGIES
    from repro.sim.rng import derive_seed

    rng = np.random.default_rng(derive_seed(seed, "fuzz/network-config"))
    topology = str(rng.choice(TOPOLOGIES))
    # Keep the big shapes small: fuzz wants many cheap cases, not a
    # handful of fabric-scale ones (the bench covers those).
    size = int(rng.choice([2, 3] if topology in ("fat_tree", "mesh") else [2, 3, 4]))
    return NetworkCase(
        seed=seed,
        topology=topology,
        size=size,
        n_flows=int(rng.choice([2, 4, 6])),
        latency=int(rng.choice([1, 1, 2, 3])),
        buffer_limit=int(rng.choice([0, 0, 2, 4])),
        slots=int(rng.choice([120, 200, 350])),
        warmup=int(rng.choice([0, 25])),
    )


@dataclass(frozen=True)
class ScenarioCase:
    """One reproducible named-scenario parity fuzz point."""

    seed: int
    scenario: str = "websearch-incast"
    scheduler: str = "islip"
    slots: int = 200
    warmup: int = 0

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)


def run_scenario_case(case: ScenarioCase) -> None:
    """Object-vs-fastpath parity on one named flow-level scenario.

    Raises :class:`~repro.check.invariants.InvariantViolation` on the
    first mismatch; non-PIM kernels compare the full trajectory
    including the per-flow (size, FCT) sample lists, PIM the drained
    totals and completed-flow counts (see
    :func:`repro.check.differential.scenario_parity`).  The fast path
    runs with ``check=True`` so its conservation invariants are
    asserted every slot as well.
    """
    from repro.check.differential import scenario_parity

    scenario_parity(
        case.scenario,
        scheduler=case.scheduler,
        slots=case.slots,
        seed=case.seed,
        warmup=case.warmup,
    )


def _scenario_case_for_seed(seed: int) -> ScenarioCase:
    """Deterministically map a seed to one scenario parity point.

    Scheduler and scenario cycle with the seed at coprime strides, so
    ``len(DIFFERENTIAL_SCHEDULERS) * len(SCENARIOS)`` consecutive seeds
    provably cover every (kernel, scenario) pair; run geometry comes
    from a seed-derived stream.
    """
    import numpy as np

    from repro.sim.rng import derive_seed
    from repro.traffic.scenarios import SCENARIOS

    names = sorted(SCENARIOS)
    rng = np.random.default_rng(derive_seed(seed, "fuzz/scenario-config"))
    return ScenarioCase(
        seed=seed,
        scenario=names[(seed // len(DIFFERENTIAL_SCHEDULERS)) % len(names)],
        scheduler=DIFFERENTIAL_SCHEDULERS[seed % len(DIFFERENTIAL_SCHEDULERS)],
        slots=int(rng.choice([120, 200, 350])),
        warmup=int(rng.choice([0, 25])),
    )


def fuzz_scenarios(
    seeds: int = 10,
    budget_seconds: Optional[float] = None,
    out_dir: Optional[str] = None,
    base_seed: int = 0,
) -> FuzzReport:
    """Sweep random named-scenario parity cases: each drives both
    backends with identically-seeded flow-level traffic and demands
    exact agreement (slot-exact with FCT samples for non-PIM kernels,
    drained totals for PIM).  Failures are recorded unshrunk -- the
    case tuple replays directly."""
    return _sweep(
        seeds, budget_seconds, out_dir, base_seed,
        make_case=_scenario_case_for_seed, run=run_scenario_case,
        tag="scenario",
    )


def fuzz_network(
    seeds: int = 10,
    budget_seconds: Optional[float] = None,
    out_dir: Optional[str] = None,
    base_seed: int = 0,
) -> FuzzReport:
    """Sweep random (topology, flows, latency, credit) network-parity
    cases: each runs the object simulator and the vectorized network
    fast path on the same root seed and demands slot-exact agreement.
    Failures are recorded unshrunk -- the case tuple replays directly.
    """
    return _sweep(
        seeds, budget_seconds, out_dir, base_seed,
        make_case=_network_case_for_seed, run=run_network_case, tag="network",
    )
