"""Composable per-slot invariant checkers.

Two attachment points, matching how the simulators already expose
state:

- :class:`InvariantSink` plugs into the existing :mod:`repro.obs`
  probe hook as a trace sink and checks *stream* invariants slot by
  slot: backlog continuity (``backlog' == backlog + arrivals -
  transfers`` for speedup-1 switches, pooled over replicas on the fast
  path), non-negative per-cell delays, and non-negative VOQ snapshot
  occupancies.  Violations raise immediately with the offending slot.

- :class:`CheckingScheduler` wraps any
  :class:`repro.switch.switch.MatchScheduler` and checks *matching*
  invariants on every slot: the matching only uses requested (input,
  output) pairs, no input or output appears twice, and -- where the
  algorithm guarantees it -- the matching is maximal (PIM run to
  convergence, iSLIP/RRM with >= N iterations, wavefront, maximum,
  LQF; statistical matching guarantees nothing).

End-of-run accounting is covered by :func:`check_conservation`, which
understands both backends' result types: with ``warmup == 0`` a
lossless switch must satisfy ``offered == carried + backlog`` exactly,
per replica and pooled.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.matching import Matching, is_maximal

__all__ = [
    "CheckingScheduler",
    "InvariantSink",
    "InvariantViolation",
    "check_conservation",
]


class InvariantViolation(AssertionError):
    """An invariant failed; the message carries the slot and details."""

    def __init__(self, invariant: str, detail: str, slot: Optional[int] = None):
        self.invariant = invariant
        self.slot = slot
        where = f" at slot {slot}" if slot is not None else ""
        super().__init__(f"invariant '{invariant}' violated{where}: {detail}")


class InvariantSink:
    """A trace sink that checks the event stream instead of storing it.

    Attach as ``Probe(InvariantSink())`` to either backend.  Checks:

    - **backlog continuity**: each ``SlotBegin.backlog`` (pre-arrival)
      must equal the previous slot's backlog + arrivals - transfers.
      Valid for speedup-1 switches; the fast path pools arrivals and
      transfers over its B replicas, and the identity still holds on
      the pooled sums.
    - **delay non-negativity**: every ``CellDeparture.delay >= 0``.
    - **VOQ non-negativity**: every ``VoqSnapshot`` occupancy >= 0.

    An optional ``forward`` sink receives every event unchanged, so
    checking composes with recording.
    """

    def __init__(self, forward=None):
        self.forward = forward
        self.slots_checked = 0
        self._prev_backlog: Optional[int] = None
        self._prev_arrivals = 0
        self._prev_transfers = 0
        self._transfer_seen = False

    def write(self, event) -> None:
        kind = event.kind
        if kind == "slot_begin":
            if self._prev_backlog is not None and self._transfer_seen:
                expected = self._prev_backlog + self._prev_arrivals - self._prev_transfers
                if event.backlog != expected:
                    raise InvariantViolation(
                        "backlog-continuity",
                        f"backlog {event.backlog} != {self._prev_backlog} "
                        f"+ {self._prev_arrivals} arrivals - "
                        f"{self._prev_transfers} transfers",
                        slot=event.slot,
                    )
            if event.arrivals < 0 or event.backlog < 0:
                raise InvariantViolation(
                    "non-negative-counts",
                    f"arrivals={event.arrivals} backlog={event.backlog}",
                    slot=event.slot,
                )
            self._prev_backlog = event.backlog
            self._prev_arrivals = event.arrivals
            self._prev_transfers = 0
            self._transfer_seen = False
            self.slots_checked += 1
        elif kind == "crossbar_transfer":
            self._prev_transfers += event.cells
            self._transfer_seen = True
        elif kind == "cell_departure":
            if event.delay < 0:
                raise InvariantViolation(
                    "non-negative-delay", f"delay={event.delay}", slot=event.slot
                )
        elif kind == "voq_snapshot":
            occupancy = np.asarray(event.occupancy)
            if (occupancy < 0).any():
                raise InvariantViolation(
                    "voq-non-negative",
                    f"min occupancy {int(occupancy.min())}",
                    slot=event.slot,
                )
        if self.forward is not None:
            self.forward.write(event)

    def close(self) -> None:
        if self.forward is not None:
            self.forward.close()


def _maximality_guaranteed(scheduler, ports: int) -> bool:
    """Whether ``scheduler`` promises a maximal matching every slot.

    - wavefront / maximum / LQF: always (by construction);
    - PIM: when run to convergence (``iterations is None``) -- the
      bounded-iteration case is handled per slot via the scheduler's
      ``completed`` flag instead;
    - iSLIP / RRM: with at least N iterations (each round matches at
      least one pair of any remaining augmentable request);
    - statistical matching: never (reserved slots can go idle).
    """
    name = getattr(scheduler, "name", "")
    if name in ("wavefront", "maximum", "lqf"):
        return True
    if name == "pim":
        return getattr(scheduler, "iterations", 0) is None
    if name in ("islip", "rrm"):
        iterations = getattr(scheduler, "iterations", 0)
        return iterations is not None and iterations >= ports
    return False


class CheckingScheduler:
    """Wraps a scheduler; validates every matching it returns.

    Checks, per slot:

    - every matched pair was requested;
    - validity (no duplicated input or output) -- enforced by
      re-deriving the pair set against the :class:`Matching` API;
    - maximality, when the wrapped algorithm guarantees it (see
      :func:`_maximality_guaranteed`); for bounded-iteration PIM the
      per-slot ``last_result.completed`` claim is honoured: a slot
      that *claims* convergence must actually be maximal.

    The wrapper is transparent: ``needs_occupancy`` schedulers keep
    their two-argument call form, ``reset``/``attach_probe`` forward,
    and ``last_result`` remains reachable through the inner scheduler.
    """

    def __init__(self, inner):
        self.inner = inner
        self.needs_occupancy = getattr(inner, "needs_occupancy", False)
        self.name = f"checked-{getattr(inner, 'name', type(inner).__name__)}"
        self.slots_checked = 0

    def schedule(self, requests: np.ndarray, occupancy=None) -> Matching:
        if self.needs_occupancy:
            matching = self.inner.schedule(requests, occupancy)
        else:
            matching = self.inner.schedule(requests)
        self._validate(requests, matching)
        self.slots_checked += 1
        return matching

    def _validate(self, requests: np.ndarray, matching: Matching) -> None:
        n = requests.shape[0]
        inputs_seen = set()
        outputs_seen = set()
        for i, j in matching:
            if not (0 <= i < n and 0 <= j < n):
                raise InvariantViolation(
                    "match-in-range", f"pair ({i}, {j}) outside {n}x{n}"
                )
            if i in inputs_seen:
                raise InvariantViolation("match-validity", f"input {i} matched twice")
            if j in outputs_seen:
                raise InvariantViolation("match-validity", f"output {j} matched twice")
            inputs_seen.add(i)
            outputs_seen.add(j)
            if not requests[i, j]:
                raise InvariantViolation(
                    "match-requested", f"pair ({i}, {j}) was never requested"
                )
        guaranteed = _maximality_guaranteed(self.inner, n)
        if not guaranteed and getattr(self.inner, "name", "") == "pim":
            last = getattr(self.inner, "last_result", None)
            # A PIM slot that claims convergence must be maximal: the
            # `completed` flag is itself part of the contract.
            guaranteed = last is not None and last.completed
        if guaranteed and not is_maximal(matching, requests):
            raise InvariantViolation(
                "maximality",
                f"{getattr(self.inner, 'name', '?')} returned a non-maximal "
                f"matching of size {len(matching)}",
            )

    def reset(self) -> None:
        self.inner.reset()

    def attach_probe(self, probe) -> None:
        if hasattr(self.inner, "attach_probe"):
            self.inner.attach_probe(probe)

    def __repr__(self) -> str:
        return f"CheckingScheduler({self.inner!r})"


def check_conservation(result, label: str = "") -> None:
    """End-of-run cell conservation, per port and globally.

    For ``warmup == 0`` runs of either backend: every offered cell is
    either carried or still buffered (``offered == carried +
    backlog``), and the per-port counters sum to the global ones.
    Raises :class:`InvariantViolation` on any mismatch.  Results from
    warmup-truncated runs are rejected -- the identity only holds when
    nothing was discarded.
    """
    prefix = f"{label}: " if label else ""
    if hasattr(result, "counter"):  # object backend SwitchResult
        if result.counter.warmup != 0:
            raise ValueError("conservation requires a warmup == 0 run")
        offered = result.counter.offered
        carried = result.counter.carried
        backlog = result.backlog
        by_input = sum(result.arrivals_by_input)
        by_output = sum(result.departures_by_output)
    else:  # FastpathResult
        if result.warmup != 0:
            raise ValueError("conservation requires a warmup == 0 run")
        offered = int(result.offered_cells.sum())
        carried = int(result.carried_cells.sum())
        backlog = int(result.final_backlog.sum())
        by_input = int(result.arrivals_by_input.sum())
        by_output = int(result.departures_by_output.sum())
        per_replica = result.offered_cells - result.carried_cells - result.final_backlog
        if (per_replica != 0).any():
            bad = int(np.nonzero(per_replica)[0][0])
            raise InvariantViolation(
                "conservation-per-replica",
                f"{prefix}replica {bad}: offered {int(result.offered_cells[bad])} "
                f"!= carried {int(result.carried_cells[bad])} + backlog "
                f"{int(result.final_backlog[bad])}",
            )
    if offered != carried + backlog:
        raise InvariantViolation(
            "conservation",
            f"{prefix}offered {offered} != carried {carried} + backlog {backlog}",
        )
    if by_input != offered:
        raise InvariantViolation(
            "conservation-per-input",
            f"{prefix}per-input arrivals sum to {by_input}, offered {offered}",
        )
    if by_output != carried:
        raise InvariantViolation(
            "conservation-per-output",
            f"{prefix}per-output departures sum to {by_output}, carried {carried}",
        )
