"""Seed-matched differential runs and cross-scheduler metamorphic checks.

Three families of checks, each reporting the first divergent slot (or
the violating totals) when it fails:

- :func:`backend_parity` -- object backend vs fast path on
  seed-matched arrivals, over the *whole* configuration space the fast
  path supports (iterations including run-to-convergence, accept
  policy, output capacity).  Generalizes the PR 1 PIM-only parity
  check in :mod:`repro.obs.parity`.

- :func:`metamorphic_statistical_fill` -- Section 5.2's "any slot not
  used by statistical matching can be filled" must never *lose* cells:
  a ``fill=True`` matcher carries at least as much as ``fill=False``
  with the same seed on the same arrivals, slot for slot.  This is
  exact (slack 0): the statistical grant/accept draws consume a
  stream decoupled from the PIM fill (see
  :class:`repro.core.statistical.StatisticalMatcher`), so both runs
  see identical statistical matchings and filling can only remove
  additional cells -- occupancy is pointwise dominated.

- :func:`metamorphic_pim_iterations` -- more PIM iterations must not
  carry (meaningfully) less on the same arrivals.  PIM-k vs PIM-1 is
  not sample-wise monotone (different random draws), so the check
  allows a small slack, defaulting to one cell per port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.check.invariants import InvariantViolation
from repro.obs.parity import ParityReport, diff_backends
from repro.traffic.flows import WindowedSource

__all__ = [
    "DifferentialReport",
    "backend_parity",
    "integrated_parity",
    "metamorphic_pim_iterations",
    "metamorphic_statistical_fill",
    "network_parity",
    "ScenarioParityReport",
    "scenario_parity",
    "statistical_parity",
]


@dataclass
class DifferentialReport:
    """Outcome of one differential or metamorphic check."""

    name: str
    ok: bool
    detail: str

    def __str__(self) -> str:
        return f"[{'ok' if self.ok else 'FAIL'}] {self.name}: {self.detail}"


@dataclass
class ScenarioParityReport(DifferentialReport):
    """Scenario parity outcome plus both backend results.

    Carrying the results lets callers (CLI smoke, examples) print the
    per-flow FCT tables without paying for a second run.
    """

    object_result: object = None
    fast_result: object = None


def backend_parity(
    ports: int,
    load: float,
    slots: int,
    seed: int = 0,
    drain_slots: Optional[int] = None,
    iterations: Optional[int] = 4,
    accept: str = "random",
    output_capacity: int = 1,
    scheduler: str = "pim",
    phase_timer=None,
) -> DifferentialReport:
    """Object vs fast path on seed-matched arrivals; raises on divergence.

    All three streams (traffic, object matching, fast matching) are
    derived from ``seed`` so one integer replays the whole comparison.

    ``scheduler`` picks the batched kernel by registry name
    (``repro.core.BATCH_SCHEDULERS``).  For PIM the object and fast
    matching streams are independent, so the invariant is the classic
    one: identical arrivals, equal drained totals.  For every other
    kernel the object side is built as the *seed-matched twin* of the
    fast path's kernel (same stream the fast path derives internally:
    ``derive_seed(fast_match_seed, "fastpath/<name>")``), and the B=1
    parity convention upgrades the invariant to **slot-exact** matched
    counts -- any per-slot divergence raises.

    ``phase_timer``, when given an enabled
    :class:`repro.obs.perf.PhaseTimer`, profiles the check under a
    ``parity`` root span with ``parity/object`` / ``parity/fastpath``
    children (each backend's own phase breakdown nested below), so
    slow parity sweeps report where the wall time went.
    """
    from repro.core.batch import build_object_scheduler
    from repro.obs.perf import NULL_PHASE_TIMER
    from repro.sim.rng import derive_seed

    if drain_slots is None:
        # Enough to flush any backlog a stable run accumulates.
        drain_slots = max(200, slots)
    timer = (
        phase_timer
        if phase_timer is not None and phase_timer.enabled
        else NULL_PHASE_TIMER
    )
    fast_match_seed = derive_seed(seed, "check/fast-match")
    if scheduler == "pim":
        object_scheduler = None  # diff_backends builds the default PIM twin
    else:
        # Reconstruct the exact stream run_fastpath will inject
        # (RandomStreams(fast_match_seed).get("fastpath/<name>")) so the
        # object twin consumes draw-for-draw the same uniforms.
        object_scheduler = build_object_scheduler(
            scheduler,
            iterations=iterations,
            accept=accept,
            seed=derive_seed(fast_match_seed, f"fastpath/{scheduler}"),
            output_capacity=output_capacity,
            ports=ports,
        )
    with timer.phase("parity"):
        report: ParityReport = diff_backends(
            ports,
            load,
            slots,
            drain_slots=drain_slots,
            iterations=iterations,
            traffic_seed=derive_seed(seed, "check/traffic"),
            object_match_seed=derive_seed(seed, "check/object-match"),
            fast_match_seed=fast_match_seed,
            accept=accept,
            output_capacity=output_capacity,
            scheduler=scheduler,
            object_scheduler=object_scheduler,
            phase_timer=timer,
        )
    name = (
        f"backend-parity(N={ports}, load={load}, sched={scheduler}, "
        f"iter={iterations}, accept={accept}, cap={output_capacity}, "
        f"seed={seed})"
    )
    if not report.ok:
        raise InvariantViolation("backend-parity", report.describe())
    if scheduler != "pim" and report.first_match_divergence is not None:
        raise InvariantViolation(
            "backend-parity",
            f"seed-matched {scheduler} twins diverged at slot "
            f"{report.first_match_divergence}:\n" + report.describe(),
        )
    return DifferentialReport(name=name, ok=True, detail=report.describe())


def _random_allocations(
    ports: int, units: int, rng: np.random.Generator, fraction: float = 0.75
) -> np.ndarray:
    """A random feasible allocation matrix (row/col sums <= units).

    Built as a sum of random permutation matrices -- each adds one
    unit to every row and column sum, so ``k`` permutations allocate
    exactly ``k`` of the ``units`` per link.
    """
    k = max(1, int(units * fraction))
    alloc = np.zeros((ports, ports), dtype=np.int64)
    for _ in range(k):
        perm = rng.permutation(ports)
        alloc[np.arange(ports), perm] += 1
    return alloc


# Wraps a source so arrivals stop after ``limit`` slots: lets the
# object backend run drain slots (the fast path's ``drain_slots``)
# without a separate API.  Past the window the inner source is never
# consulted, so neither backend consumes RNG draws there and the
# offered traffic stays draw-for-draw identical.  Now shared with the
# scenario CLI as :class:`repro.traffic.flows.WindowedSource` (which
# also forwards ``reset``/``flow_records``); the old private name is
# kept for existing callers.
_WindowedTraffic = WindowedSource


def _delay_sums(stats) -> tuple:
    """(sum of delays, cell count) from a DelayStats histogram.

    Integer-exact, so it can be compared ``==`` against the fast
    path's Little's-law ``delay_integral`` / ``delay_cells`` counters
    without Welford floating-point noise.
    """
    histogram = stats.histogram()
    return (
        sum(delay * count for delay, count in histogram.items()),
        sum(histogram.values()),
    )


def scenario_parity(
    scenario: str,
    scheduler: str = "islip",
    slots: int = 300,
    seed: int = 0,
    warmup: int = 0,
    drain_slots: Optional[int] = None,
    iterations: Optional[int] = 4,
    ports: Optional[int] = None,
    load: Optional[float] = None,
) -> "ScenarioParityReport":
    """Object vs fast path on a named flow-level scenario.

    Both backends are driven by identically-seeded
    :class:`repro.traffic.flows.FlowTraffic` sources built from the
    named scenario (the rerun contract makes two same-seed sources
    trace-identical), so the offered traffic is byte-identical.

    For the non-PIM kernels the object scheduler is the seed-matched
    twin of the batched kernel (the B=1 slot-exact parity convention),
    so the *whole trajectory* coincides and the check compares, all as
    exact integers: offered/carried totals, per-input arrival and
    per-output departure counts, delay sums (over a drained run with
    ``warmup`` 0 -- see the inline note), and the full per-flow
    (size, FCT) sample list plus incomplete counts.

    For PIM the matching streams are independent, so the invariant is
    the drained-totals one: identical arrivals; and over a drained run
    equal carried totals, per-output departures (when ``warmup`` is 0)
    and an identical *set* of completed flows (FCT values legitimately
    differ).

    Raises :class:`InvariantViolation` on any mismatch; returns a
    :class:`ScenarioParityReport` carrying both results so callers can
    print FCT tables without re-running.
    """
    from repro.core.batch import build_object_scheduler
    from repro.sim.fastpath import run_fastpath
    from repro.sim.rng import derive_seed
    from repro.switch.switch import CrossbarSwitch
    from repro.traffic.scenarios import get_scenario

    spec = get_scenario(scenario)
    if drain_slots is None:
        # Flow tails are long (heavy-tailed sizes, incast bursts), so
        # leave generous room to drain -- the checks below verify it.
        drain_slots = max(600, 2 * slots)
    traffic_seed = derive_seed(seed, "check/scenario-traffic")
    fast_match_seed = derive_seed(seed, "check/fast-match")
    name = (
        f"scenario-parity({scenario}, sched={scheduler}, slots={slots}, "
        f"warmup={warmup}, seed={seed})"
    )

    n = ports if ports is not None else spec.ports
    if scheduler == "pim":
        object_scheduler = build_object_scheduler(
            "pim",
            iterations=iterations,
            seed=derive_seed(seed, "check/object-match"),
            ports=n,
        )
    else:
        # Reconstruct the exact stream run_fastpath injects into the
        # batched kernel so the object twin is draw-for-draw identical.
        object_scheduler = build_object_scheduler(
            scheduler,
            iterations=iterations,
            seed=derive_seed(fast_match_seed, f"fastpath/{scheduler}"),
            ports=n,
        )

    total = slots + drain_slots
    object_source = spec.build_source(traffic_seed, ports=ports, load=load)
    object_switch = CrossbarSwitch(n, object_scheduler)
    object_result = object_switch.run(
        WindowedSource(object_source, slots), slots=total, warmup=warmup
    )

    fast_result = run_fastpath(
        n,
        load if load is not None else spec.load,
        slots,
        replicas=1,
        warmup=warmup,
        iterations=iterations,
        scheduler=scheduler,
        seed=fast_match_seed,
        sources=[spec.build_source(traffic_seed, ports=ports, load=load)],
        drain_slots=drain_slots,
        warmup_mode="arrival",
        check=True,
    )

    def fail(label: str, object_value, fast_value) -> None:
        raise InvariantViolation(
            "scenario-parity",
            f"{name}: {label} mismatch: object {object_value} "
            f"fastpath {fast_value}",
        )

    # Arrival streams are scheduler-independent: always exact.
    fast_offered = int(fast_result.offered_cells.sum())
    if object_result.counter.offered != fast_offered:
        fail("offered cells", object_result.counter.offered, fast_offered)
    fast_by_input = tuple(int(x) for x in fast_result.arrivals_by_input[0])
    if tuple(object_result.arrivals_by_input) != fast_by_input:
        fail(
            "arrivals by input",
            object_result.arrivals_by_input,
            fast_by_input,
        )

    drained = (
        object_result.backlog == 0 and int(fast_result.final_backlog.sum()) == 0
    )
    object_fct = object_result.fct
    fast_fct = fast_result.fct
    if scheduler == "pim":
        if not drained:
            raise InvariantViolation(
                "scenario-parity",
                f"{name}: run did not drain (object backlog "
                f"{object_result.backlog}, fastpath "
                f"{int(fast_result.final_backlog.sum())}); raise drain_slots",
            )
        if object_result.counter.carried != int(fast_result.carried_cells.sum()):
            fail(
                "carried cells (drained)",
                object_result.counter.carried,
                int(fast_result.carried_cells.sum()),
            )
        if warmup == 0:
            fast_by_output = tuple(
                int(x) for x in fast_result.departures_by_output[0]
            )
            if tuple(object_result.departures_by_output) != fast_by_output:
                fail(
                    "departures by output",
                    object_result.departures_by_output,
                    fast_by_output,
                )
        # Drained runs complete the same set of flows even though the
        # independent matching randomness shifts individual FCTs.
        if (object_fct.count, object_fct.incomplete) != (
            fast_fct.count,
            fast_fct.incomplete,
        ):
            fail(
                "completed/incomplete flows",
                (object_fct.count, object_fct.incomplete),
                (fast_fct.count, fast_fct.incomplete),
            )
        detail = (
            f"drained totals exact ({object_result.counter.carried} cells, "
            f"{object_fct.count} flows); {fast_fct.summary()}"
        )
    else:
        # Seed-matched twins: the whole trajectory must coincide.
        if object_result.counter.carried != int(fast_result.carried_cells.sum()):
            fail(
                "carried cells",
                object_result.counter.carried,
                int(fast_result.carried_cells.sum()),
            )
        fast_by_output = tuple(
            int(x) for x in fast_result.departures_by_output[0]
        )
        if tuple(object_result.departures_by_output) != fast_by_output:
            fail(
                "departures by output",
                object_result.departures_by_output,
                fast_by_output,
            )
        if drained and warmup == 0:
            # At warmup 0 the per-cell delay sum equals the occupancy
            # integral regardless of intra-VOQ service order, so the
            # comparison is exact.  With warmup > 0 the fast path's
            # legacy-occupancy exclusion assumes per-VOQ FIFO draining,
            # which round-robin service over multi-flow VOQs breaks:
            # *which* cells straddle the boundary then differs between
            # the accountings even though every trajectory matches.
            object_delay = _delay_sums(object_result.delay)
            fast_delay = (
                int(fast_result.delay_integral.sum()),
                int(fast_result.delay_cells.sum()),
            )
            if object_delay != fast_delay:
                fail("delay (sum, cells)", object_delay, fast_delay)
        if object_fct.observations() != fast_fct.observations():
            diffs = [
                (k, a, b)
                for k, (a, b) in enumerate(
                    zip(object_fct.observations(), fast_fct.observations())
                )
                if a != b
            ]
            first = diffs[0] if diffs else ("length",
                                            object_fct.count, fast_fct.count)
            fail("per-flow (size, fct) samples", first[1], first[2])
        if (object_fct.incomplete, object_fct.warm_discarded) != (
            fast_fct.incomplete,
            fast_fct.warm_discarded,
        ):
            fail(
                "incomplete/warm-discarded flows",
                (object_fct.incomplete, object_fct.warm_discarded),
                (fast_fct.incomplete, fast_fct.warm_discarded),
            )
        detail = (
            f"slot-exact ({object_result.counter.carried} cells"
            + (
                ", drained delay sums match"
                if drained and warmup == 0
                else (", drained" if drained else ", undrained")
            )
            + f"); {fast_fct.summary()}"
        )
    return ScenarioParityReport(
        name=name,
        ok=True,
        detail=detail,
        object_result=object_result,
        fast_result=fast_result,
    )


def integrated_parity(
    ports: int,
    frame_slots: int,
    utilization: float,
    vbr_load: float,
    slots: int,
    seed: int = 0,
    warmup: int = 0,
    drain_slots: Optional[int] = None,
    iterations: Optional[int] = 4,
) -> DifferentialReport:
    """Object vs fast path on the integrated CBR+VBR switch.

    Builds a random feasible reservation table (one flow per reserved
    connection, so per-VOQ FIFO holds and the comparison is exact in
    both warmup modes), runs :class:`IntegratedSwitch` and
    :func:`repro.sim.fastpath_cbr.run_fastpath_cbr` on seed-matched
    arrivals and matchings, and compares:

    - the per-slot ``CbrSlot`` series (CBR departures, VBR departures,
      donated count, both pool backlogs) slot for slot, reporting the
      first divergent slot;
    - per-class delay statistics as integer (sum, count) pairs;
    - the used/donated/peak counters and the resolved Appendix B bound.

    Raises :class:`InvariantViolation` on any mismatch.
    """
    from repro.cbr.integrated import IntegratedSwitch
    from repro.cbr.reservations import ReservationTable
    from repro.core.pim import PIMScheduler
    from repro.obs.probe import Probe
    from repro.obs.sinks import InMemorySink
    from repro.sim.fastpath_cbr import run_fastpath_cbr
    from repro.sim.rng import derive_seed
    from repro.switch.cell import ServiceClass
    from repro.switch.flow import Flow
    from repro.traffic.cbr_source import CBRSource
    from repro.traffic.uniform import UniformTraffic

    if drain_slots is None:
        drain_slots = max(200, slots)
    name = (
        f"integrated-parity(N={ports}, F={frame_slots}, util={utilization}, "
        f"vbr={vbr_load}, warmup={warmup}, seed={seed})"
    )

    # Random feasible reservations: sum of permutation matrices, one
    # flow per reserved connection.
    alloc_rng = np.random.default_rng(derive_seed(seed, "check/cbr-allocations"))
    matrix = _random_allocations(
        ports, frame_slots, alloc_rng, fraction=utilization
    )
    table = ReservationTable(ports, frame_slots)
    flow_id = 1
    for i in range(ports):
        for j in range(ports):
            if matrix[i, j]:
                table.admit(
                    Flow(
                        flow_id=flow_id,
                        src=i,
                        dst=j,
                        service=ServiceClass.CBR,
                        cells_per_frame=int(matrix[i, j]),
                    )
                )
                flow_id += 1

    traffic_seed = derive_seed(seed, "check/cbr-vbr-traffic")
    match_seed = derive_seed(seed, "check/cbr-match")

    object_switch = IntegratedSwitch(
        table, scheduler=PIMScheduler(iterations=iterations, seed=match_seed)
    )
    object_sink = InMemorySink()
    object_result = object_switch.run(
        [
            _WindowedTraffic(CBRSource(ports, table.flows(), frame_slots), slots),
            _WindowedTraffic(
                UniformTraffic(ports, load=vbr_load, seed=traffic_seed), slots
            ),
        ],
        slots=slots + drain_slots,
        warmup=warmup,
        probe=Probe(object_sink),
    )

    fast_sink = InMemorySink()
    fast_result = run_fastpath_cbr(
        table,
        vbr_load,
        slots,
        replicas=1,
        warmup=warmup,
        warmup_mode="arrival",
        iterations=iterations,
        match_seed=match_seed,
        vbr_arrival_seeds=[traffic_seed],
        drain_slots=drain_slots,
        check=True,
        probe=Probe(fast_sink),
    )

    def series(sink):
        return [
            (e.slot, e.reserved, e.cbr_cells, e.vbr_cells, e.donated,
             e.cbr_backlog, e.vbr_backlog)
            for e in sink.events
            if e.kind == "cbr_slot"
        ]

    object_series = series(object_sink)
    fast_series = series(fast_sink)
    for object_slot, fast_slot in zip(object_series, fast_series):
        if object_slot != fast_slot:
            raise InvariantViolation(
                "integrated-parity",
                f"{name}: first divergent slot {object_slot[0]}: "
                f"object (reserved, cbr, vbr, donated, cbr_backlog, "
                f"vbr_backlog)={object_slot[1:]} fastpath={fast_slot[1:]}",
            )
    if len(object_series) != len(fast_series):
        raise InvariantViolation(
            "integrated-parity",
            f"{name}: event count mismatch "
            f"{len(object_series)} vs {len(fast_series)}",
        )

    comparisons = {
        "cbr delay (sum, cells)": (
            _delay_sums(object_result.cbr_delay),
            (
                int(fast_result.cbr_delay_integral.sum()),
                int(fast_result.cbr_delay_cells.sum()),
            ),
        ),
        "vbr delay (sum, cells)": (
            _delay_sums(object_result.vbr_delay),
            (
                int(fast_result.vbr_delay_integral.sum()),
                int(fast_result.vbr_delay_cells.sum()),
            ),
        ),
        "cbr slots used": (
            object_result.cbr_slots_used,
            int(fast_result.cbr_slots_used.sum()),
        ),
        "cbr slots donated": (
            object_result.cbr_slots_donated,
            int(fast_result.cbr_slots_donated.sum()),
        ),
        "peak cbr buffer": (
            object_result.peak_cbr_buffer,
            int(fast_result.peak_cbr_buffer.max(initial=0)),
        ),
        "cbr buffer bound": (
            object_result.cbr_buffer_bound,
            fast_result.cbr_buffer_bound,
        ),
    }
    for label, (object_value, fast_value) in comparisons.items():
        if object_value != fast_value:
            raise InvariantViolation(
                "integrated-parity",
                f"{name}: {label} mismatch: object {object_value} "
                f"fastpath {fast_value}",
            )
    detail = (
        f"{len(fast_series)} slots slot-exact; cbr "
        f"{comparisons['cbr delay (sum, cells)'][0]}, vbr "
        f"{comparisons['vbr delay (sum, cells)'][0]} delay sums match"
    )
    return DifferentialReport(name=name, ok=True, detail=detail)


def statistical_parity(
    ports: int,
    units: int,
    utilization: float,
    load: float,
    slots: int,
    seed: int = 0,
    rounds: int = 2,
    fill: bool = True,
    warmup: int = 0,
    drain_slots: Optional[int] = None,
) -> DifferentialReport:
    """Object vs fast path on the statistically-matched switch.

    Unlike :func:`backend_parity` (where the two backends' matching
    randomness is independent and only totals are compared), the
    statistical fast path consumes the object matcher's generator draw
    for draw at B = 1 (see :mod:`repro.sim.fastpath_statistical`), so
    the comparison here is **slot-exact**: with a shared ``match_seed``
    every grant/virtual-grant/accept lottery -- and therefore every
    matching, transfer, and queue trajectory -- must coincide.

    Builds a random feasible allocation matrix (sum of permutations at
    the requested ``utilization`` of ``units``), runs
    :class:`CrossbarSwitch` + :class:`StatisticalMatcher` against
    :func:`repro.sim.fastpath_statistical.run_fastpath_statistical`
    on seed-matched arrivals and matchings, and compares:

    - the per-slot ``StatRound`` series (granted, virtual grants,
      decoys, accepted, kept, matched) round for round, reporting the
      first divergent slot;
    - the per-slot offered arrivals, pre-arrival backlog, and
      transferred cells;
    - when the run drained, the delay statistics as integer
      (sum, cells) pairs.

    Raises :class:`InvariantViolation` on any mismatch.
    """
    from repro.core.statistical import StatisticalMatcher
    from repro.obs.probe import Probe
    from repro.obs.sinks import InMemorySink
    from repro.sim.fastpath_statistical import run_fastpath_statistical
    from repro.sim.rng import derive_seed
    from repro.switch.switch import CrossbarSwitch
    from repro.traffic.uniform import UniformTraffic

    if drain_slots is None:
        drain_slots = max(200, slots)
    total = slots + drain_slots
    name = (
        f"statistical-parity(N={ports}, X={units}, util={utilization}, "
        f"load={load}, rounds={rounds}, fill={fill}, warmup={warmup}, "
        f"seed={seed})"
    )

    alloc_rng = np.random.default_rng(derive_seed(seed, "check/stat-allocations"))
    allocations = _random_allocations(ports, units, alloc_rng, fraction=utilization)
    traffic_seed = derive_seed(seed, "check/stat-traffic")
    match_seed = derive_seed(seed, "check/stat-match")

    object_sink = InMemorySink()
    matcher = StatisticalMatcher(
        allocations, units=units, rounds=rounds, seed=match_seed, fill=fill
    )
    object_switch = CrossbarSwitch(ports, matcher)
    object_result = object_switch.run(
        _WindowedTraffic(
            UniformTraffic(ports, load=load, seed=traffic_seed), slots
        ),
        slots=total,
        warmup=warmup,
        probe=Probe(object_sink),
    )

    fast_sink = InMemorySink()
    fast_result = run_fastpath_statistical(
        allocations,
        units,
        load,
        slots,
        rounds=rounds,
        fill=fill,
        replicas=1,
        warmup=warmup,
        warmup_mode="arrival",
        match_seed=match_seed,
        arrival_seeds=[traffic_seed],
        drain_slots=drain_slots,
        check=True,
        probe=Probe(fast_sink),
    )

    def stat_series(sink):
        return [
            (e.slot, e.round_index, e.granted, e.virtual, e.decoys,
             e.accepted, e.kept, e.matched)
            for e in sink.events
            if e.kind == "stat_round"
        ]

    def slot_series(sink, kind, field):
        series = [0] * total
        for event in sink.events:
            if event.kind == kind and 0 <= event.slot < total:
                series[event.slot] += getattr(event, field)
        return series

    object_rounds = stat_series(object_sink)
    fast_rounds = stat_series(fast_sink)
    for object_round, fast_round in zip(object_rounds, fast_rounds):
        if object_round != fast_round:
            raise InvariantViolation(
                "statistical-parity",
                f"{name}: first divergent round at slot {object_round[0]}: "
                f"object (round, granted, virtual, decoys, accepted, kept, "
                f"matched)={object_round[1:]} fastpath={fast_round[1:]}",
            )
    if len(object_rounds) != len(fast_rounds):
        raise InvariantViolation(
            "statistical-parity",
            f"{name}: stat_round event count mismatch "
            f"{len(object_rounds)} vs {len(fast_rounds)}",
        )

    for kind, field, label in (
        ("slot_begin", "arrivals", "offered arrivals"),
        ("slot_begin", "backlog", "pre-arrival backlog"),
        ("crossbar_transfer", "cells", "transferred cells"),
    ):
        object_per_slot = slot_series(object_sink, kind, field)
        fast_per_slot = slot_series(fast_sink, kind, field)
        if object_per_slot != fast_per_slot:
            slot = next(
                s for s, (a, b) in
                enumerate(zip(object_per_slot, fast_per_slot)) if a != b
            )
            raise InvariantViolation(
                "statistical-parity",
                f"{name}: {label} first diverge at slot {slot}: object "
                f"{object_per_slot[slot]} fastpath {fast_per_slot[slot]}",
            )

    drained = int(fast_result.final_backlog.sum()) == 0
    if drained:
        # Only a drained run makes the Little's-law integral equal the
        # sum of departed-cell delays (cells still queued at the end
        # contribute backlog but no departure); without fill a switch
        # cannot drain cells on zero-allocation pairs, so the delay
        # comparison is conditional.
        object_delay = _delay_sums(object_result.delay)
        fast_delay = (
            int(fast_result.delay_integral.sum()),
            int(fast_result.delay_cells.sum()),
        )
        if object_delay != fast_delay:
            raise InvariantViolation(
                "statistical-parity",
                f"{name}: delay (sum, cells) mismatch: object "
                f"{object_delay} fastpath {fast_delay}",
            )
    detail = (
        f"{len(fast_rounds)} rounds and {total} slots slot-exact; "
        + (
            f"delay sums {_delay_sums(object_result.delay)} match"
            if drained
            else f"undrained (backlog {int(fast_result.final_backlog.sum())}), "
            f"delay comparison skipped"
        )
    )
    return DifferentialReport(name=name, ok=True, detail=detail)


def metamorphic_statistical_fill(
    ports: int,
    slots: int,
    seed: int = 0,
    units: int = 16,
    load: float = 0.9,
) -> DifferentialReport:
    """``fill=True`` must never carry less than statistical alone.

    Same allocation matrix, same matcher seed, same arrivals: the
    decoupled fill stream makes the statistical draws identical in
    both runs, so filling dominates pointwise and the check runs with
    **zero** slack.
    """
    from repro.core.statistical import StatisticalMatcher
    from repro.sim.rng import derive_seed
    from repro.switch.switch import CrossbarSwitch
    from repro.traffic.uniform import UniformTraffic

    alloc_rng = np.random.default_rng(derive_seed(seed, "check/allocations"))
    allocations = _random_allocations(ports, units, alloc_rng)
    matcher_seed = derive_seed(seed, "check/statistical")
    traffic_seed = derive_seed(seed, "check/traffic")

    carried = {}
    for fill in (False, True):
        matcher = StatisticalMatcher(
            allocations, units=units, seed=matcher_seed, fill=fill
        )
        switch = CrossbarSwitch(ports, matcher)
        result = switch.run(
            UniformTraffic(ports, load=load, seed=traffic_seed), slots=slots
        )
        carried[fill] = result.counter.carried

    name = f"statistical-fill(N={ports}, slots={slots}, seed={seed})"
    detail = f"carried alone={carried[False]} fill={carried[True]}"
    if carried[True] < carried[False]:
        raise InvariantViolation("statistical-fill-dominates", detail)
    return DifferentialReport(name=name, ok=True, detail=detail)


def metamorphic_pim_iterations(
    ports: int,
    slots: int,
    seed: int = 0,
    load: float = 0.9,
    many: int = 4,
    slack: Optional[int] = None,
) -> DifferentialReport:
    """PIM-``many`` must not carry meaningfully less than PIM-1.

    Runs the fast path twice on draw-identical arrivals
    (``arrival_seeds``) over a *fixed* window with no drain -- drained
    runs trivially carry everything offered, which would make the
    comparison vacuous.  The matchings are random, so sample-wise
    domination is not guaranteed; ``slack`` (default: one cell per
    port) absorbs the noise while still catching an iteration loop
    that loses work wholesale.
    """
    from repro.sim.fastpath import run_fastpath
    from repro.sim.rng import derive_seed

    if slack is None:
        slack = ports
    arrival_seed = derive_seed(seed, "check/traffic")
    carried = {}
    for iterations in (1, many):
        result = run_fastpath(
            ports,
            load,
            slots,
            replicas=1,
            iterations=iterations,
            seed=derive_seed(seed, f"check/pim-{iterations}"),
            arrival_seeds=[arrival_seed],
        )
        carried[iterations] = int(result.carried_cells.sum())

    name = f"pim-iterations(N={ports}, 1 vs {many}, seed={seed})"
    detail = f"carried PIM-1={carried[1]} PIM-{many}={carried[many]} slack={slack}"
    if carried[many] + slack < carried[1]:
        raise InvariantViolation("pim-iterations-monotone", detail)
    return DifferentialReport(name=name, ok=True, detail=detail)


def network_parity(
    topology: str = "parking_lot",
    size: int = 3,
    n_flows: int = 4,
    slots: int = 300,
    seed: int = 0,
    warmup: int = 0,
    buffer_limit: Optional[int] = None,
    latency: int = 1,
) -> DifferentialReport:
    """Object network simulator vs the vectorized network fast path.

    Builds the named topology (:func:`repro.network.topologies.build`),
    draws ``n_flows`` random host-to-host flows from a seed-derived
    stream, runs :class:`repro.network.netsim.NetworkSimulator` with a
    per-slot observer and :class:`repro.sim.fastpath_network.NetworkFastpath`
    at B=1 with the same root seed, and compares slot for slot:

    - per-flow injections and deliveries,
    - per-switch fabric transfer counts,
    - per-switch end-of-slot backlog,

    reporting the first divergent slot on mismatch, then the per-flow
    delivered totals and warm delay-sample counts.  Because both
    backends consume the same ``sched:{switch}``/``host:{host}``
    streams in the same order, every quantity must match *exactly* --
    any drift is a bug in one of the backends.

    Raises :class:`InvariantViolation` on any mismatch.
    """
    from repro.network.netsim import FlowSpec, NetworkSimulator
    from repro.network.topologies import build
    from repro.sim.fastpath_network import run_fastpath_network
    from repro.sim.rng import derive_seed

    name = (
        f"network-parity({topology}, size={size}, flows={n_flows}, "
        f"slots={slots}, warmup={warmup}, limit={buffer_limit}, "
        f"latency={latency}, seed={seed})"
    )
    topo, hosts = build(topology, size, latency=latency)
    if len(hosts) < 2:
        raise ValueError(f"topology {topology}(size={size}) has {len(hosts)} hosts")
    flow_rng = np.random.default_rng(derive_seed(seed, "check/network-flows"))
    rates = (1.0, 0.8, 0.5, 0.25)
    flows = []
    for flow_id in range(1, n_flows + 1):
        src, dst = flow_rng.choice(len(hosts), size=2, replace=False)
        flows.append(
            FlowSpec(flow_id, hosts[src], hosts[dst], float(flow_rng.choice(rates)))
        )

    records = []
    object_sim = NetworkSimulator(topo, seed=seed, buffer_limit=buffer_limit)
    for flow in flows:
        object_sim.add_flow(flow)
    object_result = object_sim.run(slots, warmup=warmup, observer=records.append)

    fast = run_fastpath_network(
        topo,
        flows,
        slots,
        replicas=1,
        warmup=warmup,
        seed=seed,
        buffer_limit=buffer_limit,
        record_series=True,
        check=True,
    )
    series = fast.series
    flow_col = {fid: k for k, fid in enumerate(series.flow_ids)}
    switch_col = {sw: k for k, sw in enumerate(series.switch_names)}

    for record in records:
        t = record.slot
        for fid, k in flow_col.items():
            for label, got, want in (
                ("injected", record.injected.get(fid, 0), series.injected[t, k]),
                ("delivered", record.delivered.get(fid, 0), series.delivered[t, k]),
            ):
                if got != want:
                    raise InvariantViolation(
                        "network-parity",
                        f"{name}: first divergent slot {t}: flow {fid} "
                        f"{label} object={got} fastpath={int(want)}",
                    )
        for sw, k in switch_col.items():
            for label, got, want in (
                ("transfers", record.transfers.get(sw, 0), series.transfers[t, k]),
                ("backlog", record.backlog.get(sw, 0), series.backlog[t, k]),
            ):
                if got != want:
                    raise InvariantViolation(
                        "network-parity",
                        f"{name}: first divergent slot {t}: switch {sw} "
                        f"{label} object={got} fastpath={int(want)}",
                    )
    for flow in flows:
        fid = flow.flow_id
        object_delivered = object_result.delivered[fid]
        fast_delivered = int(fast.delivered[0, flow_col[fid]])
        if object_delivered != fast_delivered:
            raise InvariantViolation(
                "network-parity",
                f"{name}: flow {fid} delivered object={object_delivered} "
                f"fastpath={fast_delivered}",
            )
        object_samples = object_result.delay[fid].count
        fast_samples = int(fast.delay_cells[0, flow_col[fid]])
        if object_samples != fast_samples:
            raise InvariantViolation(
                "network-parity",
                f"{name}: flow {fid} delay samples object={object_samples} "
                f"fastpath={fast_samples}",
            )
    total = int(fast.delivered.sum())
    return DifferentialReport(
        name=name, ok=True, detail=f"{slots} slots slot-exact, {total} cells delivered"
    )
