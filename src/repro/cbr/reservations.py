"""Flow-level reservation table for one switch.

Sits above :class:`repro.cbr.slepian_duguid.SlepianDuguidScheduler`:
applications reserve in units of flows (Section 4's "an application
issues a request to the network to reserve a certain bandwidth"), the
table aggregates flows into the per-connection reservation matrix, and
the schedule is updated incrementally as flows come and go.

At runtime the integrated switch asks, for a reserved slot's (input,
output) pairing, *which* CBR flow to serve; the table answers
round-robin among that connection's flows, matching the buffer
manager's round-robin flow service (Section 3.3).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.cbr.slepian_duguid import SlepianDuguidScheduler
from repro.switch.flow import Flow

__all__ = ["ReservationTable"]


class ReservationTable:
    """CBR flow registry plus frame schedule for one switch.

    Parameters
    ----------
    ports:
        Switch size N.
    frame_slots:
        Frame length F.
    """

    def __init__(self, ports: int, frame_slots: int):
        self.scheduler = SlepianDuguidScheduler(ports, frame_slots)
        self._flows: Dict[int, Flow] = {}
        self._by_connection: Dict[Tuple[int, int], Deque[int]] = {}

    @property
    def ports(self) -> int:
        """Switch size N."""
        return self.scheduler.ports

    @property
    def frame_slots(self) -> int:
        """Frame length F."""
        return self.scheduler.frame_slots

    @property
    def schedule(self):
        """The underlying :class:`repro.cbr.frame.FrameSchedule`."""
        return self.scheduler.schedule

    def flows(self) -> List[Flow]:
        """All registered CBR flows."""
        return list(self._flows.values())

    def can_admit(self, flow: Flow) -> bool:
        """Admission test for a new CBR flow at this switch."""
        if not flow.is_cbr:
            raise ValueError(f"flow {flow.flow_id} is not CBR")
        return self.scheduler.can_accommodate(flow.src, flow.dst, flow.cells_per_frame)

    def admit(self, flow: Flow) -> None:
        """Admit a flow: reserve its slots in the frame schedule.

        Raises ``ValueError`` when the flow is a duplicate or the
        admission test fails; on success existing flows' guarantees are
        untouched (slots may move within the frame, which is allowed).
        """
        if flow.flow_id in self._flows:
            raise ValueError(f"flow {flow.flow_id} already admitted")
        self.scheduler.add_reservation(flow.src, flow.dst, flow.cells_per_frame)
        self._flows[flow.flow_id] = flow
        self._by_connection.setdefault((flow.src, flow.dst), deque()).append(flow.flow_id)

    def release(self, flow_id: int) -> None:
        """Tear down a flow's reservation."""
        flow = self._flows.pop(flow_id, None)
        if flow is None:
            raise KeyError(f"flow {flow_id} not admitted")
        self.scheduler.remove_reservation(flow.src, flow.dst, flow.cells_per_frame)
        connection = self._by_connection[(flow.src, flow.dst)]
        connection.remove(flow_id)
        if not connection:
            del self._by_connection[(flow.src, flow.dst)]

    def next_flow_for(self, input_port: int, output_port: int) -> Optional[int]:
        """Round-robin pick of a CBR flow for a reserved pairing."""
        connection = self._by_connection.get((input_port, output_port))
        if not connection:
            return None
        flow_id = connection[0]
        connection.rotate(-1)
        return flow_id

    def reserved_matrix(self) -> np.ndarray:
        """Aggregate reservation matrix (cells per frame)."""
        return self.scheduler.reservations

    def pairings(self, slot_in_frame: int) -> List[Tuple[int, int]]:
        """The frame schedule's pairings for one slot position."""
        return self.schedule.pairings(slot_in_frame)
