"""The per-switch frame schedule (Section 4, Figures 6 and 7).

A frame is a fixed number of slots; the schedule assigns each slot a
set of conflict-free (input, output) pairings, repeated every frame to
deliver each reservation its cells per frame.  "Frame boundaries are
internal to the switch; they are not encoded on the link."

Guarantees depend only on *how many* slots per frame a connection
holds, not *which* slots, so the schedule may be freely rearranged --
the property the Slepian-Duguid insertion algorithm exploits.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["FrameSchedule"]


class FrameSchedule:
    """A frame's worth of conflict-free slot pairings.

    Parameters
    ----------
    ports:
        Switch size N.
    frame_slots:
        Frame length F in slots (the AN2 prototype uses 1000).

    Each slot holds a partial matching of inputs to outputs; the class
    enforces the matching property on every mutation.
    """

    def __init__(self, ports: int, frame_slots: int):
        if ports <= 0:
            raise ValueError(f"ports must be positive, got {ports}")
        if frame_slots <= 0:
            raise ValueError(f"frame_slots must be positive, got {frame_slots}")
        self.ports = ports
        self.frame_slots = frame_slots
        self._in_to_out: List[Dict[int, int]] = [dict() for _ in range(frame_slots)]
        self._out_to_in: List[Dict[int, int]] = [dict() for _ in range(frame_slots)]

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.frame_slots:
            raise ValueError(f"slot {slot} out of range for frame of {self.frame_slots}")

    def _check_ports(self, input_port: int, output_port: int) -> None:
        if not 0 <= input_port < self.ports:
            raise ValueError(f"input {input_port} out of range")
        if not 0 <= output_port < self.ports:
            raise ValueError(f"output {output_port} out of range")

    def assign(self, slot: int, input_port: int, output_port: int) -> None:
        """Pair ``input_port`` with ``output_port`` in ``slot``.

        Raises ``ValueError`` if either port is already paired in the
        slot (a scheduling bug, since callers must clear first).
        """
        self._check_slot(slot)
        self._check_ports(input_port, output_port)
        if input_port in self._in_to_out[slot]:
            raise ValueError(f"input {input_port} already paired in slot {slot}")
        if output_port in self._out_to_in[slot]:
            raise ValueError(f"output {output_port} already paired in slot {slot}")
        self._in_to_out[slot][input_port] = output_port
        self._out_to_in[slot][output_port] = input_port

    def clear(self, slot: int, input_port: int, output_port: int) -> None:
        """Remove the pairing (raises ``KeyError`` if absent)."""
        self._check_slot(slot)
        if self._in_to_out[slot].get(input_port) != output_port:
            raise KeyError(f"({input_port}, {output_port}) not paired in slot {slot}")
        del self._in_to_out[slot][input_port]
        del self._out_to_in[slot][output_port]

    def output_of(self, slot: int, input_port: int) -> Optional[int]:
        """Output paired with ``input_port`` in ``slot``, or None."""
        self._check_slot(slot)
        return self._in_to_out[slot].get(input_port)

    def input_of(self, slot: int, output_port: int) -> Optional[int]:
        """Input paired with ``output_port`` in ``slot``, or None."""
        self._check_slot(slot)
        return self._out_to_in[slot].get(output_port)

    def input_free(self, slot: int, input_port: int) -> bool:
        """True when ``input_port`` is unpaired in ``slot``."""
        self._check_slot(slot)
        return input_port not in self._in_to_out[slot]

    def output_free(self, slot: int, output_port: int) -> bool:
        """True when ``output_port`` is unpaired in ``slot``."""
        self._check_slot(slot)
        return output_port not in self._out_to_in[slot]

    def pairings(self, slot: int) -> List[Tuple[int, int]]:
        """All (input, output) pairs scheduled in ``slot``."""
        self._check_slot(slot)
        return sorted(self._in_to_out[slot].items())

    def slots_for(self, input_port: int, output_port: int) -> List[int]:
        """Slots in which this connection is scheduled."""
        self._check_ports(input_port, output_port)
        return [
            s
            for s in range(self.frame_slots)
            if self._in_to_out[s].get(input_port) == output_port
        ]

    def reservation_matrix(self) -> np.ndarray:
        """N x N matrix of scheduled cells per frame per connection."""
        matrix = np.zeros((self.ports, self.ports), dtype=np.int64)
        for slot_map in self._in_to_out:
            for i, j in slot_map.items():
                matrix[i, j] += 1
        return matrix

    def validate(self) -> None:
        """Check internal consistency; raises ``AssertionError`` on a bug."""
        for s in range(self.frame_slots):
            forward = self._in_to_out[s]
            backward = self._out_to_in[s]
            if len(forward) != len(backward):
                raise AssertionError(f"slot {s}: map sizes differ")
            for i, j in forward.items():
                if backward.get(j) != i:
                    raise AssertionError(f"slot {s}: maps disagree on ({i}, {j})")

    def utilization(self) -> float:
        """Scheduled pairings as a fraction of frame capacity (F x N)."""
        scheduled = sum(len(m) for m in self._in_to_out)
        return scheduled / (self.frame_slots * self.ports)

    def __iter__(self) -> Iterator[List[Tuple[int, int]]]:
        """Iterate slot by slot over the pairings."""
        for s in range(self.frame_slots):
            yield self.pairings(s)

    def __repr__(self) -> str:
        return (
            f"FrameSchedule(ports={self.ports}, frame_slots={self.frame_slots}, "
            f"utilization={self.utilization():.2f})"
        )
