"""Hierarchical (subdivided) frames -- the Section 4 extension.

"A smaller frame size would provide lower CBR latency, but ... it
would entail a larger granularity in bandwidth reservations.  We are
considering schemes in which a large frame is subdivided into smaller
frames.  This would allow each application to trade off a guarantee of
lower latency against a smaller granularity of allocation."

:class:`HierarchicalFrameScheduler` realises the scheme with a static
TDM split: the first ``low_latency_slots`` of every subframe belong to
the *low-latency* class, whose reservations repeat identically in each
subframe (latency bound 2 subframes per hop instead of 2 frames); the
remaining slots belong to the ordinary whole-frame class.  Each class
has its own Slepian-Duguid slot space, so both guarantees are exact
and admission stays a simple capacity test per class.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cbr.slepian_duguid import SlepianDuguidScheduler

__all__ = ["HierarchicalFrameScheduler"]


class HierarchicalFrameScheduler:
    """Two-class frame schedule: per-subframe and per-frame reservations.

    Parameters
    ----------
    ports:
        Switch size N.
    frame_slots:
        Base frame length F.
    divisions:
        Number of subframes; must divide ``frame_slots``.
    low_latency_slots:
        Slots at the start of each subframe dedicated to the
        low-latency class (the remaining subframe slots serve the
        whole-frame class).

    Trade-off, per the paper: a low-latency reservation is made in
    units of cells *per subframe*, i.e. its granularity is
    ``divisions`` cells per frame -- coarser -- but its per-hop delay
    bound shrinks from 2 F to 2 F / divisions.
    """

    def __init__(self, ports: int, frame_slots: int, divisions: int, low_latency_slots: int):
        if divisions < 1:
            raise ValueError(f"divisions must be >= 1, got {divisions}")
        if frame_slots % divisions != 0:
            raise ValueError(
                f"divisions ({divisions}) must divide the frame ({frame_slots})"
            )
        subframe = frame_slots // divisions
        if not 0 <= low_latency_slots <= subframe:
            raise ValueError(
                f"low_latency_slots must be in 0..{subframe}, got {low_latency_slots}"
            )
        self.ports = ports
        self.frame_slots = frame_slots
        self.divisions = divisions
        self.subframe_slots = subframe
        self.low_latency_slots = low_latency_slots
        self._low = SlepianDuguidScheduler(ports, max(low_latency_slots, 1))
        self._low_enabled = low_latency_slots > 0
        bulk = frame_slots - low_latency_slots * divisions
        self._bulk = SlepianDuguidScheduler(ports, max(bulk, 1))
        self._bulk_slots = bulk

    def can_accommodate_low_latency(self, input_port: int, output_port: int, cells: int) -> bool:
        """Admission for ``cells`` per *subframe* (low-latency class)."""
        if not self._low_enabled:
            return cells == 0
        return self._low.can_accommodate(input_port, output_port, cells)

    def can_accommodate(self, input_port: int, output_port: int, cells: int) -> bool:
        """Admission for ``cells`` per *frame* (ordinary class)."""
        if self._bulk_slots == 0:
            return cells == 0
        return self._bulk.can_accommodate(input_port, output_port, cells)

    def add_low_latency(self, input_port: int, output_port: int, cells_per_subframe: int) -> None:
        """Reserve ``cells_per_subframe`` in every subframe."""
        if not self.can_accommodate_low_latency(input_port, output_port, cells_per_subframe):
            raise ValueError(
                f"cannot reserve {cells_per_subframe} cells/subframe from "
                f"{input_port} to {output_port}"
            )
        self._low.add_reservation(input_port, output_port, cells_per_subframe)

    def add_whole_frame(self, input_port: int, output_port: int, cells_per_frame: int) -> None:
        """Reserve ``cells_per_frame`` at whole-frame granularity."""
        if not self.can_accommodate(input_port, output_port, cells_per_frame):
            raise ValueError(
                f"cannot reserve {cells_per_frame} cells/frame from "
                f"{input_port} to {output_port}"
            )
        self._bulk.add_reservation(input_port, output_port, cells_per_frame)

    def pairings(self, slot_in_frame: int) -> List[Tuple[int, int]]:
        """The pairings active in one slot of the base frame."""
        if not 0 <= slot_in_frame < self.frame_slots:
            raise ValueError(f"slot {slot_in_frame} out of range")
        offset = slot_in_frame % self.subframe_slots
        if offset < self.low_latency_slots:
            return self._low.schedule.pairings(offset)
        subframe_index = slot_in_frame // self.subframe_slots
        bulk_per_subframe = self.subframe_slots - self.low_latency_slots
        bulk_slot = subframe_index * bulk_per_subframe + (offset - self.low_latency_slots)
        return self._bulk.schedule.pairings(bulk_slot)

    def cells_per_frame(self, input_port: int, output_port: int) -> int:
        """Total scheduled cells per frame for a connection, both classes."""
        low = int(self._low.reservations[input_port, output_port]) if self._low_enabled else 0
        bulk = int(self._bulk.reservations[input_port, output_port])
        return low * self.divisions + bulk

    def latency_bound_slots(self, low_latency: bool, hops: int, link_latency_slots: float) -> float:
        """Per-class 2p(F + l) bound (synchronized clocks), in slots.

        The low-latency class's effective frame is one subframe.
        """
        frame = self.subframe_slots if low_latency else self.frame_slots
        return 2.0 * hops * (frame + link_latency_slots)
