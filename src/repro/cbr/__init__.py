"""Real-time (CBR) performance guarantees -- Section 4 and Appendix B.

Bandwidth allocations are made in *frames* of a fixed number of cell
slots.  A CBR reservation of k cells per frame is installed by giving
the flow k slots in each switch's frame schedule; the Slepian-Duguid
theorem guarantees a feasible schedule exists whenever no link is
over-committed, and the two-slot swap algorithm installs a new
reservation without disturbing the guarantees of existing ones.

Modules:

- :mod:`repro.cbr.frame` -- the per-switch frame schedule,
- :mod:`repro.cbr.slepian_duguid` -- reservation insertion/removal via
  the alternating-slot swap algorithm,
- :mod:`repro.cbr.reservations` -- flow-level reservation table and
  admission test,
- :mod:`repro.cbr.clock` -- unsynchronized-clock model and the
  Appendix B latency and buffer bounds,
- :mod:`repro.cbr.integrated` -- the combined CBR + VBR switch, where
  PIM fills slots the frame schedule leaves idle.
"""

from repro.cbr.frame import FrameSchedule
from repro.cbr.slepian_duguid import SlepianDuguidScheduler
from repro.cbr.reservations import ReservationTable
from repro.cbr.clock import (
    ClockModel,
    cbr_latency_bound,
    cbr_buffer_bound,
    controller_frame_slots,
    simulate_cbr_chain,
)
from repro.cbr.integrated import IntegratedSwitch
from repro.cbr.subframes import HierarchicalFrameScheduler

__all__ = [
    "HierarchicalFrameScheduler",
    "FrameSchedule",
    "SlepianDuguidScheduler",
    "ReservationTable",
    "ClockModel",
    "cbr_latency_bound",
    "cbr_buffer_bound",
    "controller_frame_slots",
    "simulate_cbr_chain",
    "IntegratedSwitch",
]
