"""Unsynchronized clocks: Appendix B bounds and a wall-clock simulator.

Switch and controller clocks are only guaranteed to agree within a
tolerance, so a fast upstream device could overrun a slow downstream
one.  The paper's fix: pad *controller* frames with empty slots so that
even the fastest controller's frame outlasts the slowest switch's
frame (F_c-min > F_s-max).  With that constraint, Appendix B proves

- **latency**:  L(c_i, s_p) <= 2 p (F_s-max + l)          (Formula 3)
- **buffers**:  4 + (F_s-max - F_s-min)/F_s-min *
                (2 + ((2 F_s-max + l) p + F_c-max)/(F_c-min - F_s-max))
                                                           (Formula 5)

per unit of reservation, where p is the path length and l the link
latency + switch overhead.

:func:`simulate_cbr_chain` is a continuous-time simulator of a single
CBR flow crossing a chain of switches whose clocks run at arbitrary
rates within tolerance; the Appendix B bench drives it with adversarial
drift patterns and checks the measured adjusted latency and buffer
occupancy against the bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ClockModel",
    "controller_frame_slots",
    "cbr_latency_bound",
    "cbr_buffer_bound",
    "max_active_frames",
    "ChainResult",
    "simulate_cbr_chain",
]


@dataclass(frozen=True)
class ClockModel:
    """Frame timing under bounded clock error.

    Parameters
    ----------
    slot_time:
        Nominal duration of one cell slot (arbitrary time unit).
    switch_frame_slots:
        Slots per switch frame (AN2: 1000).
    controller_frame_slots:
        Slots per controller frame; must satisfy F_c-min > F_s-max,
        i.e. be padded per :func:`controller_frame_slots`.
    tolerance:
        Maximum relative clock-rate error epsilon; every device's clock
        rate lies in [1 - eps, 1 + eps] times nominal.  A fast clock
        *shortens* wall-clock frame time.
    """

    slot_time: float
    switch_frame_slots: int
    controller_frame_slots: int
    tolerance: float

    def __post_init__(self) -> None:
        if self.slot_time <= 0:
            raise ValueError("slot_time must be positive")
        if self.switch_frame_slots <= 0 or self.controller_frame_slots <= 0:
            raise ValueError("frame sizes must be positive")
        if not 0.0 <= self.tolerance < 1.0:
            raise ValueError(f"tolerance must be in [0, 1), got {self.tolerance}")
        if self.controller_frame_min <= self.switch_frame_max:
            raise ValueError(
                "controller frame is not padded enough: F_c-min "
                f"({self.controller_frame_min:.6g}) must exceed F_s-max "
                f"({self.switch_frame_max:.6g}); see controller_frame_slots()"
            )

    def _frame_time(self, slots: int, rate_error: float) -> float:
        # A clock running (1 + e) times nominal finishes its frame in
        # nominal_time / (1 + e).
        return slots * self.slot_time / (1.0 + rate_error)

    @property
    def switch_frame_min(self) -> float:
        """F_s-min: fastest-possible switch frame duration."""
        return self._frame_time(self.switch_frame_slots, self.tolerance)

    @property
    def switch_frame_max(self) -> float:
        """F_s-max: slowest-possible switch frame duration."""
        return self._frame_time(self.switch_frame_slots, -self.tolerance)

    @property
    def controller_frame_min(self) -> float:
        """F_c-min: fastest-possible controller frame duration."""
        return self._frame_time(self.controller_frame_slots, self.tolerance)

    @property
    def controller_frame_max(self) -> float:
        """F_c-max: slowest-possible controller frame duration."""
        return self._frame_time(self.controller_frame_slots, -self.tolerance)

    @property
    def padding_slots(self) -> int:
        """Empty slots added to each controller frame."""
        return self.controller_frame_slots - self.switch_frame_slots

    @property
    def reservable_fraction(self) -> float:
        """Fraction of link bandwidth usable by CBR after padding.

        The "small amount of bandwidth lost in dealing with clock
        drift" (Section 4).
        """
        return self.switch_frame_slots / self.controller_frame_slots


def controller_frame_slots(switch_frame_slots: int, tolerance: float, margin_slots: int = 1) -> int:
    """Minimum controller frame length satisfying F_c-min > F_s-max.

    F_c-min = S_c/(1+eps), F_s-max = S_s/(1-eps), so
    S_c > S_s (1+eps)/(1-eps); ``margin_slots`` extra slots keep the
    inequality strict after integer rounding.
    """
    if switch_frame_slots <= 0:
        raise ValueError("switch_frame_slots must be positive")
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    if margin_slots < 1:
        raise ValueError("margin_slots must be >= 1")
    needed = switch_frame_slots * (1.0 + tolerance) / (1.0 - tolerance)
    return int(math.floor(needed)) + margin_slots


def cbr_latency_bound(hops: int, clock: ClockModel, link_latency: float) -> float:
    """Appendix B Formula 3: adjusted end-to-end latency <= 2p(F_s-max + l)."""
    if hops < 0:
        raise ValueError("hops must be non-negative")
    if link_latency < 0:
        raise ValueError("link latency must be non-negative")
    return 2.0 * hops * (clock.switch_frame_max + link_latency)


def max_active_frames(hops: int, clock: ClockModel, link_latency: float) -> int:
    """Appendix B Formula 4's core: the longest run of active frames.

    1 + floor(((2 F_s-max + l) p + F_c-max) / (F_c-min - F_s-max))
    """
    numerator = (2.0 * clock.switch_frame_max + link_latency) * hops + clock.controller_frame_max
    denominator = clock.controller_frame_min - clock.switch_frame_max
    return 1 + int(math.floor(numerator / denominator))


def cbr_buffer_bound(hops: int, clock: ClockModel, link_latency: float) -> float:
    """Appendix B Formula 5: buffers per unit reservation (cells/frame).

    4 + (F_s-max - F_s-min)/F_s-min *
        (2 + ((2 F_s-max + l) p + F_c-max)/(F_c-min - F_s-max))
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    spread = (clock.switch_frame_max - clock.switch_frame_min) / clock.switch_frame_min
    numerator = (2.0 * clock.switch_frame_max + link_latency) * hops + clock.controller_frame_max
    denominator = clock.controller_frame_min - clock.switch_frame_max
    return 4.0 + spread * (2.0 + numerator / denominator)


@dataclass(frozen=True)
class ChainResult:
    """Measurements from one :func:`simulate_cbr_chain` run.

    ``departures[n][c]`` is the wall-clock end of the frame in which
    cell c departed device n (n = 0 is the controller).  Adjusted
    latencies follow Appendix B's definition
    ``L(c, s_n) = T(c, s_n) - T(c, s_0)``.
    """

    departures: Tuple[Tuple[float, ...], ...]
    arrivals: Tuple[Tuple[float, ...], ...]
    max_buffer_occupancy: Tuple[int, ...]

    @property
    def hops(self) -> int:
        """Number of switches in the chain."""
        return len(self.departures) - 1

    def adjusted_latency(self, cell: int, switch: int) -> float:
        """L(c_i, s_n) per Table 3 of the paper."""
        return self.departures[switch][cell] - self.departures[0][cell]

    def max_adjusted_latency(self) -> float:
        """Worst adjusted end-to-end latency over all cells."""
        last = self.hops
        return max(
            self.adjusted_latency(c, last) for c in range(len(self.departures[0]))
        )


def simulate_cbr_chain(
    clock: ClockModel,
    hops: int,
    link_latency: float,
    cells: int,
    rate_errors: Optional[Sequence[float]] = None,
    phases: Optional[Sequence[float]] = None,
    seed: Optional[int] = None,
) -> ChainResult:
    """Continuous-time simulation of one 1-cell-per-frame CBR flow.

    The controller (device 0) forwards cell c at the end of its c-th
    frame.  Each switch n (1..hops) runs frames of its own wall-clock
    duration (its rate error) and obeys the Appendix B ground rules:
    at most one cell of the flow per frame, FIFO order, no needless
    delay (a cell eligible at a frame's start departs by that frame's
    end unless an earlier cell does).

    Parameters
    ----------
    clock:
        Frame timing and tolerance; every device's rate error must lie
        within ``clock.tolerance``.
    hops:
        Number of switches p.
    link_latency:
        l, wall-clock time from departing one device to being eligible
        at the next.
    cells:
        Number of cells to push through.
    rate_errors:
        Per-device rate errors, length hops+1 (controller first); drawn
        uniformly in [-tolerance, +tolerance] when omitted.
    phases:
        Per-switch frame phase offsets in [0, F); random when omitted.
    seed:
        Seed for the random draws.

    Returns a :class:`ChainResult`; the Appendix B bench asserts
    ``max_adjusted_latency() <= cbr_latency_bound(...)`` and that buffer
    occupancies stay within :func:`cbr_buffer_bound`.
    """
    if hops < 1:
        raise ValueError("need at least one switch")
    if cells < 1:
        raise ValueError("need at least one cell")
    rng = np.random.default_rng(seed)
    if rate_errors is None:
        rate_errors = rng.uniform(-clock.tolerance, clock.tolerance, size=hops + 1)
    if len(rate_errors) != hops + 1:
        raise ValueError(f"need {hops + 1} rate errors, got {len(rate_errors)}")
    for e in rate_errors:
        if abs(e) > clock.tolerance + 1e-12:
            raise ValueError(f"rate error {e} exceeds tolerance {clock.tolerance}")

    controller_frame = clock.controller_frame_slots * clock.slot_time / (1.0 + rate_errors[0])
    switch_frames = [
        clock.switch_frame_slots * clock.slot_time / (1.0 + rate_errors[n])
        for n in range(1, hops + 1)
    ]
    if phases is None:
        phases = [float(rng.uniform(0.0, f)) for f in switch_frames]
    if len(phases) != hops:
        raise ValueError(f"need {hops} phases, got {len(phases)}")

    # Controller: cell c departs at the end of its c-th frame.
    departures: List[List[float]] = [[(c + 1) * controller_frame for c in range(cells)]]
    arrivals: List[List[float]] = [[c * controller_frame for c in range(cells)]]
    max_occupancy: List[int] = []

    for n in range(hops):
        frame = switch_frames[n]
        phase = phases[n]
        arrive = [departures[n][c] + link_latency for c in range(cells)]
        depart: List[float] = []
        previous_index = -(10**18)
        for c in range(cells):
            # First frame whose *start* is at or after the arrival.
            eligible_index = math.ceil((arrive[c] - phase) / frame)
            index = max(eligible_index, previous_index + 1)
            depart.append(phase + (index + 1) * frame)
            previous_index = index
        # Buffer occupancy: cells present in [arrive, depart).
        events = [(t, 1) for t in arrive] + [(t, -1) for t in depart]
        events.sort(key=lambda e: (e[0], e[1]))
        occupancy = 0
        peak = 0
        for _, delta in events:
            occupancy += delta
            peak = max(peak, occupancy)
        max_occupancy.append(peak)
        arrivals.append(arrive)
        departures.append(depart)

    return ChainResult(
        departures=tuple(tuple(d) for d in departures),
        arrivals=tuple(tuple(a) for a in arrivals),
        max_buffer_occupancy=tuple(max_occupancy),
    )
