"""Slepian-Duguid frame scheduling (Section 4, Figures 6 and 7).

The Slepian-Duguid theorem [Hui 90] guarantees a conflict-free frame
schedule exists for *any* reservation pattern, provided no input or
output link is over-committed (its cells per frame do not exceed the
frame length).  The constructive insertion algorithm the paper sketches
adds a reservation one cell at a time:

- if some slot has both the input and the output free, assign it there;
- otherwise pick a slot A where the input is free and a slot B where
  the output is free, and swap pairings back and forth between A and B
  along an alternating chain until the conflict disappears.

The swap chain is the Konig edge-coloring argument: slots are colors,
the chain is the maximal A/B-alternating path starting at the input,
and because the path cannot reach the output (parity), swapping it
frees a common slot.  Insertion therefore always succeeds in at most
O(N) swaps -- "a number of steps proportional to the size of the
reservation x N" as the paper says.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.cbr.frame import FrameSchedule

__all__ = ["SlepianDuguidScheduler"]


class SlepianDuguidScheduler:
    """Maintains a frame schedule under reservation changes.

    Parameters
    ----------
    ports:
        Switch size N.
    frame_slots:
        Frame length F in slots.

    >>> sched = SlepianDuguidScheduler(ports=4, frame_slots=3)
    >>> sched.add_reservation(0, 1, 2)
    >>> sched.reservations[0, 1]
    2
    """

    def __init__(self, ports: int, frame_slots: int):
        self.schedule = FrameSchedule(ports, frame_slots)
        self._reservations = np.zeros((ports, ports), dtype=np.int64)

    @property
    def ports(self) -> int:
        """Switch size N."""
        return self.schedule.ports

    @property
    def frame_slots(self) -> int:
        """Frame length F."""
        return self.schedule.frame_slots

    @property
    def reservations(self) -> np.ndarray:
        """Copy of the reservation matrix (cells per frame)."""
        return self._reservations.copy()

    def input_committed(self, input_port: int) -> int:
        """Cells per frame already reserved from ``input_port``."""
        return int(self._reservations[input_port].sum())

    def output_committed(self, output_port: int) -> int:
        """Cells per frame already reserved to ``output_port``."""
        return int(self._reservations[:, output_port].sum())

    def can_accommodate(self, input_port: int, output_port: int, cells: int) -> bool:
        """The Section 4 admission test: neither link over-committed.

        "The test for whether a switch can accommodate a new flow is
        much simpler [than scheduling]; it is possible so long as the
        input and output link each have adequate unreserved capacity."
        """
        if cells < 0:
            raise ValueError("cells must be non-negative")
        return (
            self.input_committed(input_port) + cells <= self.frame_slots
            and self.output_committed(output_port) + cells <= self.frame_slots
        )

    def add_reservation(self, input_port: int, output_port: int, cells: int) -> None:
        """Reserve ``cells`` cells per frame from input to output.

        Raises ``ValueError`` when the admission test fails; otherwise
        always succeeds (Slepian-Duguid), rearranging existing slot
        assignments if necessary but never changing any connection's
        cells-per-frame count.
        """
        if not self.can_accommodate(input_port, output_port, cells):
            raise ValueError(
                f"cannot reserve {cells} cells/frame from {input_port} to "
                f"{output_port}: input has {self.frame_slots - self.input_committed(input_port)} "
                f"free, output has {self.frame_slots - self.output_committed(output_port)} free"
            )
        for _ in range(cells):
            self._insert_one(input_port, output_port)
            self._reservations[input_port, output_port] += 1

    def remove_reservation(self, input_port: int, output_port: int, cells: int) -> None:
        """Release ``cells`` cells per frame of an existing reservation."""
        if cells < 0:
            raise ValueError("cells must be non-negative")
        if self._reservations[input_port, output_port] < cells:
            raise ValueError(
                f"connection ({input_port}, {output_port}) has only "
                f"{self._reservations[input_port, output_port]} cells/frame reserved"
            )
        slots = self.schedule.slots_for(input_port, output_port)
        for slot in slots[:cells]:
            self.schedule.clear(slot, input_port, output_port)
        self._reservations[input_port, output_port] -= cells

    @classmethod
    def from_slot_assignment(
        cls, ports: int, slot_pairings: "List[List[Tuple[int, int]]]"
    ) -> "SlepianDuguidScheduler":
        """Build from an explicit per-slot pairing list.

        Used to reproduce a specific published schedule (e.g. the
        paper's Figure 6) rather than whatever arrangement incremental
        insertion happens to produce.  Validates each slot is a
        matching.
        """
        scheduler = cls(ports, len(slot_pairings))
        for slot, pairings in enumerate(slot_pairings):
            for i, j in pairings:
                scheduler.schedule.assign(slot, i, j)
                scheduler._reservations[i, j] += 1
        return scheduler

    @classmethod
    def from_matrix(
        cls, reservations: np.ndarray, frame_slots: int
    ) -> "SlepianDuguidScheduler":
        """Build a schedule for a whole reservation matrix at once.

        Feasible iff every row and column sums to at most
        ``frame_slots`` -- the Slepian-Duguid condition.
        """
        matrix = np.asarray(reservations, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"reservation matrix must be square, got {matrix.shape}")
        if (matrix < 0).any():
            raise ValueError("reservations must be non-negative")
        scheduler = cls(matrix.shape[0], frame_slots)
        for i in range(matrix.shape[0]):
            for j in range(matrix.shape[1]):
                if matrix[i, j]:
                    scheduler.add_reservation(i, j, int(matrix[i, j]))
        return scheduler

    # ------------------------------------------------------------------
    # Insertion machinery

    def _find_free_slot(self, input_port: int, output_port: int) -> Optional[int]:
        for slot in range(self.frame_slots):
            if self.schedule.input_free(slot, input_port) and self.schedule.output_free(
                slot, output_port
            ):
                return slot
        return None

    def _insert_one(self, input_port: int, output_port: int) -> None:
        """Insert a single cell-per-frame pairing, swapping if needed."""
        slot = self._find_free_slot(input_port, output_port)
        if slot is not None:
            self.schedule.assign(slot, input_port, output_port)
            return
        slot_a = next(
            (s for s in range(self.frame_slots) if self.schedule.input_free(s, input_port)),
            None,
        )
        slot_b = next(
            (s for s in range(self.frame_slots) if self.schedule.output_free(s, output_port)),
            None,
        )
        if slot_a is None or slot_b is None:
            # Guarded against by the admission test in add_reservation.
            raise AssertionError("admission test passed but no free slot exists")
        self._swap_chain(input_port, output_port, slot_a, slot_b)

    def _swap_chain(self, input_port: int, output_port: int, slot_a: int, slot_b: int) -> None:
        """Free ``slot_b`` at ``input_port`` by an alternating swap.

        ``input_port`` is free in ``slot_a``, ``output_port`` free in
        ``slot_b``.  Walk the maximal alternating path that starts at
        ``input_port`` with its ``slot_b`` pairing; by the Konig parity
        argument the path never reaches ``output_port``, so swapping
        every pairing on it between the two slots leaves ``input_port``
        free in ``slot_b``, where the new pairing is then placed.
        """
        chain: List[Tuple[int, int, int]] = []  # (slot, input, output) to flip
        current_input = input_port
        while True:
            # Inputs on the path carry slot_b pairings, outputs carry
            # slot_a pairings -- the two alternating "colors".
            partner_output = self.schedule.output_of(slot_b, current_input)
            if partner_output is None:
                break
            chain.append((slot_b, current_input, partner_output))
            next_input = self.schedule.input_of(slot_a, partner_output)
            if next_input is None:
                break
            chain.append((slot_a, next_input, partner_output))
            current_input = next_input
        # Flip every chained pairing to the other slot.
        for slot, i, j in chain:
            self.schedule.clear(slot, i, j)
        for slot, i, j in chain:
            target = slot_a if slot == slot_b else slot_b
            self.schedule.assign(target, i, j)
        self.schedule.assign(slot_b, input_port, output_port)
