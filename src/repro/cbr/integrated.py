"""The integrated CBR + VBR switch (Section 4).

"CBR cells are routed across the switch during scheduled slots.  In
addition, VBR cells can use an allocated slot if no cell from the
scheduled flow is present at the switch."

Per slot:

1. Look up the frame schedule's pairings for the slot's position in the
   frame.  For each reserved (input, output) pair with a queued CBR
   cell, that pairing is taken by CBR.
2. All remaining inputs and outputs -- including those whose reserved
   flow had nothing queued -- are handed to PIM over the VBR request
   matrix, which "fills in the gaps".

CBR and VBR cells use separate buffer pools ("VBR cells use a different
set of buffers, which are subject to flow control"); CBR buffers are
statically sized by the Appendix B bound, and the model *enforces* the
bound: per-input CBR occupancy is checked against
``cbr_buffer_bound`` every slot and an overflow raises
:class:`CBRBufferOverflow`.  The default ``"auto"`` bound is the
drift-free single-switch instance of the Appendix B argument: a
conforming flow emits at most its reservation per frame and its
reserved slots drain the same amount per frame, so at most two frames'
worth of an input's reserved cells -- ``2 x input_committed(i)`` --
can ever be queued at input i.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cbr.reservations import ReservationTable
from repro.core.pim import PIMScheduler
from repro.sim.stats import DelayStats, ThroughputCounter
from repro.switch.buffers import VOQBuffer
from repro.switch.cell import Cell, ServiceClass
from repro.switch.fabric import CrossbarFabric, Fabric
from repro.switch.results import SwitchResult
from repro.switch.switch import reset_traffic

__all__ = [
    "IntegratedSwitch",
    "IntegratedResult",
    "CBRBufferOverflow",
    "derive_cbr_buffer_bound",
]

#: Bound spec: "auto" (derive from the reservation table), a scalar
#: applied to every input, an explicit per-input vector, or None
#: (enforcement off).
BoundSpec = Union[str, int, Sequence[int], None]


class CBRBufferOverflow(RuntimeError):
    """A CBR input buffer exceeded its Appendix B static sizing."""

    def __init__(self, slot: int, input_port: int, occupancy: int, bound: int,
                 replica: int = 0):
        self.slot = slot
        self.input_port = input_port
        self.occupancy = occupancy
        self.bound = bound
        self.replica = replica
        super().__init__(
            f"CBR buffer overflow at slot {slot}, input {input_port} "
            f"(replica {replica}): {occupancy} cells > bound {bound}"
        )


def derive_cbr_buffer_bound(reserved_matrix: np.ndarray) -> np.ndarray:
    """Per-input CBR buffer bound from a reservation matrix.

    The drift-free single-switch Appendix B bound: input i never
    buffers more than two frames' worth of its reserved cells, i.e.
    ``2 * sum_j reservations[i, j]``.  (The paper's Formula 5 adds
    clock-drift terms for multi-hop chains; see
    :func:`repro.cbr.clock.cbr_buffer_bound`.)
    """
    matrix = np.asarray(reserved_matrix, dtype=np.int64)
    return 2 * matrix.sum(axis=1)


def resolve_cbr_buffer_bound(
    spec: BoundSpec, reserved_matrix: np.ndarray
) -> Optional[np.ndarray]:
    """Normalize a :data:`BoundSpec` into a per-input int vector (or None)."""
    ports = np.asarray(reserved_matrix).shape[0]
    if spec is None:
        return None
    if isinstance(spec, str):
        if spec != "auto":
            raise ValueError(f"unknown cbr_buffer_bound spec {spec!r}")
        return derive_cbr_buffer_bound(reserved_matrix)
    if np.isscalar(spec):
        if int(spec) < 0:
            raise ValueError(f"cbr_buffer_bound must be >= 0, got {spec}")
        return np.full(ports, int(spec), dtype=np.int64)
    vector = np.asarray(spec, dtype=np.int64)
    if vector.shape != (ports,):
        raise ValueError(
            f"cbr_buffer_bound vector must have shape ({ports},), got {vector.shape}"
        )
    if (vector < 0).any():
        raise ValueError("cbr_buffer_bound entries must be >= 0")
    return vector


class IntegratedResult(SwitchResult):
    """SwitchResult plus separate CBR and VBR delay statistics."""

    def __init__(self, base: SwitchResult, cbr_delay: DelayStats, vbr_delay: DelayStats,
                 cbr_slots_used: int, cbr_slots_donated: int, peak_cbr_buffer: int,
                 cbr_buffer_bound: Optional[Tuple[int, ...]] = None):
        super().__init__(
            delay=base.delay,
            counter=base.counter,
            ports=base.ports,
            slots=base.slots,
            connection_cells=base.connection_cells,
            backlog=base.backlog,
            dropped=base.dropped,
        )
        #: Delay statistics for CBR cells only.
        self.cbr_delay = cbr_delay
        #: Delay statistics for VBR cells only.
        self.vbr_delay = vbr_delay
        #: Reserved slots actually used by CBR cells.
        self.cbr_slots_used = cbr_slots_used
        #: Reserved slots donated to VBR because the CBR flow was idle.
        self.cbr_slots_donated = cbr_slots_donated
        #: Largest CBR buffer occupancy seen at any input.
        self.peak_cbr_buffer = peak_cbr_buffer
        #: Per-input Appendix B bound enforced during the run (None when
        #: enforcement was disabled).  ``peak_cbr_buffer`` never exceeds
        #: ``max(cbr_buffer_bound)`` on a completed run.
        self.cbr_buffer_bound = cbr_buffer_bound


class IntegratedSwitch:
    """Input-buffered switch carrying pre-scheduled CBR plus PIM'd VBR.

    Parameters
    ----------
    reservations:
        The switch's :class:`repro.cbr.reservations.ReservationTable`
        (frame schedule included).
    scheduler:
        PIM scheduler for the VBR gap fill; defaults to 4-iteration PIM.
    fabric:
        Non-blocking fabric; defaults to a crossbar.
    cbr_buffer_bound:
        Appendix B static CBR buffer sizing, enforced per input every
        slot; an overflow raises :class:`CBRBufferOverflow`.  ``"auto"``
        (default) derives ``2 x input_committed(i)`` from the
        reservation table at first use; a scalar applies to every
        input, a length-N vector is used as-is, ``None`` disables
        enforcement.
    """

    def __init__(
        self,
        reservations: ReservationTable,
        scheduler: Optional[PIMScheduler] = None,
        fabric: Optional[Fabric] = None,
        cbr_buffer_bound: BoundSpec = "auto",
    ):
        self.reservations = reservations
        self.ports = reservations.ports
        self.frame_slots = reservations.frame_slots
        self.scheduler = scheduler if scheduler is not None else PIMScheduler(seed=0)
        self.fabric = fabric if fabric is not None else CrossbarFabric(self.ports)
        if self.fabric.ports != self.ports:
            raise ValueError("fabric size does not match switch size")
        self.cbr_buffer_bound = cbr_buffer_bound
        self._bound_vector: Optional[np.ndarray] = None
        self._bound_resolved = False
        self.cbr_buffers: List[VOQBuffer] = []
        self.vbr_buffers: List[VOQBuffer] = []
        self.cbr_slots_used = 0
        self.cbr_slots_donated = 0
        self.peak_cbr_buffer = 0
        self.reset()

    def reset(self) -> None:
        """Discard buffered cells and zero the per-run counters.

        Called at the start of every :meth:`run` so repeated runs on
        one switch start from a clean slate instead of accumulating the
        previous run's counters and leftover backlog.  The VBR
        scheduler's random stream and round-robin pointers are *not*
        reset (they are cross-run state by design, as in
        :class:`repro.switch.switch.CrossbarSwitch`).
        """
        self.cbr_buffers = [VOQBuffer(self.ports) for _ in range(self.ports)]
        self.vbr_buffers = [VOQBuffer(self.ports) for _ in range(self.ports)]
        self.cbr_slots_used = 0
        self.cbr_slots_donated = 0
        self.peak_cbr_buffer = 0

    def _resolved_bound(self) -> Optional[np.ndarray]:
        """The per-input bound vector, resolving ``"auto"`` on first use."""
        if not self._bound_resolved:
            self._bound_vector = resolve_cbr_buffer_bound(
                self.cbr_buffer_bound, self.reservations.reserved_matrix()
            )
            self._bound_resolved = True
        return self._bound_vector

    def _vbr_requests(self) -> np.ndarray:
        matrix = np.zeros((self.ports, self.ports), dtype=bool)
        for i, buffer in enumerate(self.vbr_buffers):
            matrix[i] = buffer.request_vector()
        return matrix

    def step(self, slot: int, arrivals: Sequence[Tuple[int, Cell]], probe=None) -> List[Cell]:
        """Advance one slot; returns departed cells (CBR and VBR)."""
        for input_port, cell in arrivals:
            cell.arrival_slot = slot
            pool = self.cbr_buffers if cell.service is ServiceClass.CBR else self.vbr_buffers
            pool[input_port].enqueue(cell)
        occupancies = [len(b) for b in self.cbr_buffers]
        self.peak_cbr_buffer = max(self.peak_cbr_buffer, max(occupancies))
        bound = self._resolved_bound()
        if bound is not None:
            for i, occupancy in enumerate(occupancies):
                if occupancy > bound[i]:
                    raise CBRBufferOverflow(slot, i, occupancy, int(bound[i]))

        # Phase 1: reserved pairings for this slot position in the frame.
        position = slot % self.frame_slots
        selected: List[Tuple[int, Cell]] = []
        taken_inputs = set()
        taken_outputs = set()
        pairings = self.reservations.pairings(position)
        for i, j in pairings:
            if self.cbr_buffers[i].has_cell_for(j):
                selected.append((i, self.cbr_buffers[i].dequeue(j)))
                taken_inputs.add(i)
                taken_outputs.add(j)
                self.cbr_slots_used += 1
            else:
                # Idle reservation: the slot is donated to VBR traffic.
                self.cbr_slots_donated += 1
        cbr_cells = len(selected)

        # Phase 2: PIM fills every remaining input/output with VBR cells.
        requests = self._vbr_requests()
        for i in taken_inputs:
            requests[i, :] = False
        for j in taken_outputs:
            requests[:, j] = False
        matching = self.scheduler.schedule(requests)
        for i, j in matching:
            selected.append((i, self.vbr_buffers[i].dequeue(j)))

        delivered = self.fabric.transfer(selected)
        if probe is not None:
            probe.transfer(len(selected))
            probe.cbr_slot(
                position=position,
                reserved=len(pairings),
                cbr_cells=cbr_cells,
                vbr_cells=len(selected) - cbr_cells,
                donated=len(pairings) - cbr_cells,
                cbr_backlog=sum(len(b) for b in self.cbr_buffers),
                vbr_backlog=sum(len(b) for b in self.vbr_buffers),
            )
        return [cells[0] for cells in delivered.values()]

    def backlog(self) -> int:
        """Cells buffered in both pools."""
        return sum(len(b) for b in self.cbr_buffers) + sum(len(b) for b in self.vbr_buffers)

    def run(self, traffic, slots: int, warmup: int = 0, probe=None) -> IntegratedResult:
        """Simulate; returns combined plus per-class statistics.

        ``traffic`` may be a single source or a sequence of sources
        (e.g. a :class:`repro.traffic.cbr_source.CBRSource` plus a VBR
        background); all must agree on ``ports``.  Each call starts
        from a clean switch (:meth:`reset`): counters and both buffer
        pools are per-run, so back-to-back runs do not leak the
        previous run's backlog or slot counters into the next result.

        When a :class:`repro.obs.probe.Probe` is supplied, every slot
        emits ``SlotBegin``, ``CbrSlot`` (the reserved/used/donated
        anatomy plus per-pool backlog) and ``CrossbarTransfer`` events,
        each departure emits ``CellDeparture``, and sampled slots emit
        the VBR scheduler's per-iteration PIM anatomy.
        """
        sources = traffic if isinstance(traffic, (list, tuple)) else [traffic]
        for source in sources:
            if source.ports != self.ports:
                raise ValueError("traffic/switch port mismatch")
        self.reset()
        for source in sources:
            reset_traffic(source)
        bound = self._resolved_bound()
        traced = probe is not None and probe.enabled
        if traced and hasattr(self.scheduler, "attach_probe"):
            self.scheduler.attach_probe(probe)
        delay = DelayStats(warmup=warmup)
        cbr_delay = DelayStats(warmup=warmup)
        vbr_delay = DelayStats(warmup=warmup)
        counter = ThroughputCounter(warmup=warmup)
        for slot in range(slots):
            arrivals: List[Tuple[int, Cell]] = []
            for source in sources:
                arrivals.extend(source.arrivals(slot))
            counter.record_arrival(slot, len(arrivals))
            if traced:
                probe.begin_slot(slot, arrivals=len(arrivals), backlog=self.backlog())
                departures = self.step(slot, arrivals, probe=probe)
            else:
                departures = self.step(slot, arrivals)
            counter.record_departure(slot, len(departures))
            for cell in departures:
                delay.record(cell.arrival_slot, slot)
                if cell.service is ServiceClass.CBR:
                    cbr_delay.record(cell.arrival_slot, slot)
                else:
                    vbr_delay.record(cell.arrival_slot, slot)
                if traced:
                    probe.departure(
                        -1, cell.output, slot - cell.arrival_slot,
                        flow_id=cell.flow_id,
                    )
        if traced and hasattr(self.scheduler, "attach_probe"):
            self.scheduler.attach_probe(None)
        base = SwitchResult(
            delay=delay,
            counter=counter,
            ports=self.ports,
            slots=slots,
            backlog=self.backlog(),
            dropped=0,
        )
        return IntegratedResult(
            base,
            cbr_delay,
            vbr_delay,
            self.cbr_slots_used,
            self.cbr_slots_donated,
            self.peak_cbr_buffer,
            cbr_buffer_bound=tuple(int(b) for b in bound) if bound is not None else None,
        )
