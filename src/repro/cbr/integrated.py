"""The integrated CBR + VBR switch (Section 4).

"CBR cells are routed across the switch during scheduled slots.  VBR
cells are transmitted during slots not used by CBR cells.  In addition,
VBR cells can use an allocated slot if no cell from the scheduled flow
is present at the switch."

Per slot:

1. Look up the frame schedule's pairings for the slot's position in the
   frame.  For each reserved (input, output) pair with a queued CBR
   cell, that pairing is taken by CBR.
2. All remaining inputs and outputs -- including those whose reserved
   flow had nothing queued -- are handed to PIM over the VBR request
   matrix, which "fills in the gaps".

CBR and VBR cells use separate buffer pools ("VBR cells use a different
set of buffers, which are subject to flow control"); CBR buffers are
statically sized by the Appendix B bound and the model verifies they
never overflow it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cbr.reservations import ReservationTable
from repro.core.pim import PIMScheduler
from repro.sim.stats import DelayStats, ThroughputCounter
from repro.switch.buffers import VOQBuffer
from repro.switch.cell import Cell, ServiceClass
from repro.switch.fabric import CrossbarFabric, Fabric
from repro.switch.results import SwitchResult

__all__ = ["IntegratedSwitch", "IntegratedResult"]


class IntegratedResult(SwitchResult):
    """SwitchResult plus separate CBR and VBR delay statistics."""

    def __init__(self, base: SwitchResult, cbr_delay: DelayStats, vbr_delay: DelayStats,
                 cbr_slots_used: int, cbr_slots_donated: int, peak_cbr_buffer: int):
        super().__init__(
            delay=base.delay,
            counter=base.counter,
            ports=base.ports,
            slots=base.slots,
            connection_cells=base.connection_cells,
            backlog=base.backlog,
            dropped=base.dropped,
        )
        #: Delay statistics for CBR cells only.
        self.cbr_delay = cbr_delay
        #: Delay statistics for VBR cells only.
        self.vbr_delay = vbr_delay
        #: Reserved slots actually used by CBR cells.
        self.cbr_slots_used = cbr_slots_used
        #: Reserved slots donated to VBR because the CBR flow was idle.
        self.cbr_slots_donated = cbr_slots_donated
        #: Largest CBR buffer occupancy seen at any input.
        self.peak_cbr_buffer = peak_cbr_buffer


class IntegratedSwitch:
    """Input-buffered switch carrying pre-scheduled CBR plus PIM'd VBR.

    Parameters
    ----------
    reservations:
        The switch's :class:`repro.cbr.reservations.ReservationTable`
        (frame schedule included).
    scheduler:
        PIM scheduler for the VBR gap fill; defaults to 4-iteration PIM.
    fabric:
        Non-blocking fabric; defaults to a crossbar.
    """

    def __init__(
        self,
        reservations: ReservationTable,
        scheduler: Optional[PIMScheduler] = None,
        fabric: Optional[Fabric] = None,
    ):
        self.reservations = reservations
        self.ports = reservations.ports
        self.frame_slots = reservations.frame_slots
        self.scheduler = scheduler if scheduler is not None else PIMScheduler(seed=0)
        self.fabric = fabric if fabric is not None else CrossbarFabric(self.ports)
        if self.fabric.ports != self.ports:
            raise ValueError("fabric size does not match switch size")
        self.cbr_buffers = [VOQBuffer(self.ports) for _ in range(self.ports)]
        self.vbr_buffers = [VOQBuffer(self.ports) for _ in range(self.ports)]
        self.cbr_slots_used = 0
        self.cbr_slots_donated = 0
        self.peak_cbr_buffer = 0

    def _vbr_requests(self) -> np.ndarray:
        matrix = np.zeros((self.ports, self.ports), dtype=bool)
        for i, buffer in enumerate(self.vbr_buffers):
            matrix[i] = buffer.request_vector()
        return matrix

    def step(self, slot: int, arrivals: Sequence[Tuple[int, Cell]]) -> List[Cell]:
        """Advance one slot; returns departed cells (CBR and VBR)."""
        for input_port, cell in arrivals:
            cell.arrival_slot = slot
            pool = self.cbr_buffers if cell.service is ServiceClass.CBR else self.vbr_buffers
            pool[input_port].enqueue(cell)
        self.peak_cbr_buffer = max(
            self.peak_cbr_buffer, max(len(b) for b in self.cbr_buffers)
        )

        # Phase 1: reserved pairings for this slot position in the frame.
        position = slot % self.frame_slots
        selected: List[Tuple[int, Cell]] = []
        taken_inputs = set()
        taken_outputs = set()
        for i, j in self.reservations.pairings(position):
            if self.cbr_buffers[i].has_cell_for(j):
                selected.append((i, self.cbr_buffers[i].dequeue(j)))
                taken_inputs.add(i)
                taken_outputs.add(j)
                self.cbr_slots_used += 1
            else:
                # Idle reservation: the slot is donated to VBR traffic.
                self.cbr_slots_donated += 1

        # Phase 2: PIM fills every remaining input/output with VBR cells.
        requests = self._vbr_requests()
        for i in taken_inputs:
            requests[i, :] = False
        for j in taken_outputs:
            requests[:, j] = False
        matching = self.scheduler.schedule(requests)
        for i, j in matching:
            selected.append((i, self.vbr_buffers[i].dequeue(j)))

        delivered = self.fabric.transfer(selected)
        return [cells[0] for cells in delivered.values()]

    def backlog(self) -> int:
        """Cells buffered in both pools."""
        return sum(len(b) for b in self.cbr_buffers) + sum(len(b) for b in self.vbr_buffers)

    def run(self, traffic, slots: int, warmup: int = 0) -> IntegratedResult:
        """Simulate; returns combined plus per-class statistics.

        ``traffic`` may be a single source or a sequence of sources
        (e.g. a :class:`repro.traffic.cbr_source.CBRSource` plus a VBR
        background); all must agree on ``ports``.
        """
        sources = traffic if isinstance(traffic, (list, tuple)) else [traffic]
        for source in sources:
            if source.ports != self.ports:
                raise ValueError("traffic/switch port mismatch")
        delay = DelayStats(warmup=warmup)
        cbr_delay = DelayStats(warmup=warmup)
        vbr_delay = DelayStats(warmup=warmup)
        counter = ThroughputCounter(warmup=warmup)
        for slot in range(slots):
            arrivals: List[Tuple[int, Cell]] = []
            for source in sources:
                arrivals.extend(source.arrivals(slot))
            counter.record_arrival(slot, len(arrivals))
            departures = self.step(slot, arrivals)
            counter.record_departure(slot, len(departures))
            for cell in departures:
                delay.record(cell.arrival_slot, slot)
                if cell.service is ServiceClass.CBR:
                    cbr_delay.record(cell.arrival_slot, slot)
                else:
                    vbr_delay.record(cell.arrival_slot, slot)
        base = SwitchResult(
            delay=delay,
            counter=counter,
            ports=self.ports,
            slots=slots,
            backlog=self.backlog(),
            dropped=0,
        )
        return IntegratedResult(
            base,
            cbr_delay,
            vbr_delay,
            self.cbr_slots_used,
            self.cbr_slots_donated,
            self.peak_cbr_buffer,
        )
