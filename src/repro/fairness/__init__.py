"""Fairness metrics and the Virtual Clock reference discipline.

Section 5.1 motivates statistical matching with two unfairness modes:
PIM's per-port contention bias (Figure 8) and the parking-lot effect in
multi-switch topologies (Figure 9).  This subpackage provides the
measurement tools (:mod:`repro.fairness.metrics`) and Zhang's Virtual
Clock (:mod:`repro.fairness.virtual_clock`), the output-queued
fair-allocation baseline the paper compares against.
"""

from repro.fairness.allocator import allocations_for_switch, max_min_allocation
from repro.fairness.metrics import jain_index, max_min_ratio, throughput_shares
from repro.fairness.virtual_clock import VirtualClockLink

__all__ = [
    "jain_index",
    "max_min_ratio",
    "throughput_shares",
    "VirtualClockLink",
    "max_min_allocation",
    "allocations_for_switch",
]
