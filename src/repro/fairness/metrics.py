"""Fairness metrics over per-flow (or per-connection) throughput.

Ramakrishnan & Jain's notion (cited in Section 5.1): every user should
receive an equal share of every resource that cannot satisfy all
demand.  We quantify closeness to that ideal with Jain's fairness
index and the max/min share ratio; both appear in the Figure 8/9
benches comparing PIM against statistical matching.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Sequence

__all__ = ["jain_index", "max_min_ratio", "throughput_shares"]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2).

    1.0 means perfectly equal; 1/n means one flow takes everything.

    >>> jain_index([1.0, 1.0, 1.0, 1.0])
    1.0
    >>> round(jain_index([1.0, 0.0, 0.0, 0.0]), 3)
    0.25
    """
    if not values:
        raise ValueError("need at least one value")
    if any(v < 0 for v in values):
        raise ValueError("values must be non-negative")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0.0:
        return 1.0  # all zero: vacuously equal
    return (total * total) / (len(values) * squares)


def max_min_ratio(values: Sequence[float]) -> float:
    """Largest share divided by smallest (inf when the smallest is 0).

    Figure 8's headline is a 5:1 ratio between the favoured connections
    and the (4, 1) connection.
    """
    if not values:
        raise ValueError("need at least one value")
    smallest = min(values)
    largest = max(values)
    if smallest == 0.0:
        return float("inf") if largest > 0.0 else 1.0
    return largest / smallest


def throughput_shares(counts: Mapping[Hashable, int]) -> Dict[Hashable, float]:
    """Normalize per-flow delivery counts to fractions of the total."""
    total = sum(counts.values())
    if total == 0:
        return {key: 0.0 for key in counts}
    return {key: value / total for key, value in counts.items()}
