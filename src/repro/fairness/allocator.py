"""Network-wide max-min fair bandwidth allocation (Section 5.1).

"One class of techniques involves using some measure of network load
to determine a fair allocation of bandwidth among competing flows.
Once such an allocation has been determined, the problem remains of
dividing network resources according to the allocation."

:func:`max_min_allocation` computes the classic progressive-filling
max-min fair rates for a set of flows over shared links (the Demers/
Ramakrishnan notion of fairness the paper cites), and
:func:`allocations_for_switch` converts the resulting flow rates into
the integer allocation matrix a per-switch
:class:`repro.core.statistical.StatisticalMatcher` consumes -- closing
the loop the paper sketches: measure -> allocate -> enforce with
statistical matching.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["max_min_allocation", "allocations_for_switch"]


def max_min_allocation(
    flows: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
) -> Dict[Hashable, float]:
    """Progressive-filling max-min fair rates.

    Parameters
    ----------
    flows:
        Mapping from flow id to the sequence of links (any hashable
        ids) the flow crosses.
    capacities:
        Capacity of each link, in cells per slot.

    Returns the max-min fair rate per flow: rates rise together until
    some link saturates; flows through it are frozen at the bottleneck
    share; the rest continue.  Raises ``ValueError`` for flows crossing
    unknown links or non-positive capacities.
    """
    for flow_id, path in flows.items():
        if not path:
            raise ValueError(f"flow {flow_id} crosses no links")
        for link in path:
            if link not in capacities:
                raise ValueError(f"flow {flow_id} crosses unknown link {link!r}")
    for link, capacity in capacities.items():
        if capacity <= 0:
            raise ValueError(f"link {link!r} capacity must be positive")

    rates: Dict[Hashable, float] = {}
    active = set(flows)
    remaining = dict(capacities)
    while active:
        # Bottleneck link: the one with the smallest equal share.
        shares = {}
        for link, capacity in remaining.items():
            crossing = [f for f in active if link in flows[f]]
            if crossing:
                shares[link] = (capacity / len(crossing), crossing)
        if not shares:
            # Remaining flows cross only unconstrained links (cannot
            # happen with finite capacities) -- defensive.
            for flow_id in active:
                rates[flow_id] = math.inf
            break
        bottleneck = min(shares, key=lambda link: shares[link][0])
        share, frozen = shares[bottleneck]
        for flow_id in frozen:
            rates[flow_id] = share
            active.discard(flow_id)
            for link in flows[flow_id]:
                remaining[link] -= share
        remaining = {k: max(v, 0.0) for k, v in remaining.items()}
    return rates


def allocations_for_switch(
    flow_rates: Mapping[Hashable, float],
    flow_ports: Mapping[Hashable, Tuple[int, int]],
    ports: int,
    units: int,
    reservable_fraction: float = 0.72,
) -> np.ndarray:
    """Convert fair flow rates into a statistical-matching allocation.

    Parameters
    ----------
    flow_rates:
        Max-min fair rate per flow (cells per slot).
    flow_ports:
        (input_port, output_port) of each flow at this switch.
    ports:
        Switch size N.
    units:
        X, allocation units per link.
    reservable_fraction:
        Statistical matching can reserve only ~72% of a link
        (Appendix C); rates are scaled into that envelope so row and
        column sums stay feasible.

    Returns the integer N x N allocation matrix (floor rounding, so the
    result is always feasible).
    """
    if not 0.0 < reservable_fraction <= 1.0:
        raise ValueError("reservable_fraction must be in (0, 1]")
    matrix = np.zeros((ports, ports), dtype=np.int64)
    for flow_id, rate in flow_rates.items():
        if flow_id not in flow_ports:
            continue
        i, j = flow_ports[flow_id]
        if not (0 <= i < ports and 0 <= j < ports):
            raise ValueError(f"flow {flow_id} ports ({i}, {j}) out of range")
        matrix[i, j] += int(math.floor(rate * reservable_fraction * units))
    # Clamp any rounding overflow (defensive; floor keeps sums under
    # units when input rates are feasible).
    if matrix.sum(axis=1).max() > units or matrix.sum(axis=0).max() > units:
        raise ValueError("rates over-commit a link even after scaling")
    return matrix
