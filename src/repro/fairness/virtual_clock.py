"""Zhang's Virtual Clock discipline (Section 5.1's reference).

"Host network software assigns each flow a share of the network
bandwidth ... When a cell arrives at a switch, it is assigned a
timestamp based on when it would be scheduled if the network were
operating fairly; the switch gives priority to cells with earlier
timestamps."

Virtual Clock "requires that each output link can select arbitrarily
among any of the cells queued for it" -- i.e. perfect output queueing
-- which is exactly why the paper needed statistical matching for an
*input*-buffered switch.  We implement the per-output-link discipline
so the fairness benches have the output-queued ideal to compare PIM
and statistical matching against.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Tuple

__all__ = ["VirtualClockLink"]


class VirtualClockLink:
    """One output link scheduled by Virtual Clock.

    Parameters
    ----------
    rates:
        Mapping from flow id to its assigned rate in cells per slot;
        rates should sum to at most 1 for a work-conserving guarantee.

    Each arriving cell gets the stamp
    ``VC_flow = max(now, VC_flow) + 1/rate`` and the link serves the
    smallest stamp first.
    """

    def __init__(self, rates: Dict[int, float]):
        if not rates:
            raise ValueError("need at least one flow")
        for flow_id, rate in rates.items():
            if rate <= 0:
                raise ValueError(f"flow {flow_id} rate must be positive, got {rate}")
        self.rates = dict(rates)
        self._virtual_clocks: Dict[int, float] = {f: 0.0 for f in rates}
        self._heap: List[Tuple[float, int, int, object]] = []
        self._tiebreak = itertools.count()

    def enqueue(self, flow_id: int, now: float, payload: object = None) -> float:
        """Stamp and queue one cell; returns its virtual-clock stamp."""
        if flow_id not in self.rates:
            raise KeyError(f"flow {flow_id} has no assigned rate")
        stamp = max(now, self._virtual_clocks[flow_id]) + 1.0 / self.rates[flow_id]
        self._virtual_clocks[flow_id] = stamp
        heapq.heappush(self._heap, (stamp, next(self._tiebreak), flow_id, payload))
        return stamp

    def serve(self) -> Optional[Tuple[int, object]]:
        """Transmit the earliest-stamped cell; None when idle."""
        if not self._heap:
            return None
        _, _, flow_id, payload = heapq.heappop(self._heap)
        return flow_id, payload

    def __len__(self) -> int:
        return len(self._heap)

    def backlog_of(self, flow_id: int) -> int:
        """Queued cells of one flow (diagnostic)."""
        return sum(1 for _, _, f, _ in self._heap if f == flow_id)

    def lag_of(self, flow_id: int, now: float) -> float:
        """How far a flow is ahead of its contracted rate.

        A positive lag means the flow has been sending faster than its
        rate -- the monitoring capability the paper notes Virtual Clock
        has and statistical matching lacks (Section 5.3).
        """
        if flow_id not in self.rates:
            raise KeyError(f"flow {flow_id} has no assigned rate")
        return self._virtual_clocks[flow_id] - now
