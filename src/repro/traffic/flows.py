"""Flow-level traffic: sizes, arrival processes, demand matrices.

The paper's workloads (and everything in this repo before this module)
are *slot-level*: each slot independently flips a coin per input.  Real
LAN/datacenter load is *flow-level* -- a flow is a burst of ``size``
cells from one input to one output, sizes are heavy-tailed, arrivals
cluster (ON/OFF), and the demand matrix is rarely uniform (incast
fan-in, hotspots, skewed popularity).  This is exactly the regime where
queue-proportional schedulers separate from PIM/iSLIP and where
fairness under contention matters.

:class:`FlowTraffic` composes three orthogonal pieces into the existing
``arrivals(slot)`` protocol:

- a **size distribution** (:class:`SizeDist`): deterministic, bounded
  Pareto (heavy-tailed), or empirical (e.g. a websearch-style mix),
- an **arrival process**: Poisson flow starts, or Markov-modulated
  ON/OFF bursts of flow starts,
- a **demand matrix**: uniform, permutation (optionally re-drawn every
  ``churn_every`` slots), hotspot, incast fan-in groups, or
  Zipf-skewed output popularity.

Cells are injected at line rate -- at most one cell per input per slot,
round-robin among that input's active flows -- so the cell stream is
always admissible at the inputs and composes with every backend
(object switch, fast path, trace record/replay).  Per-flow bookkeeping
(:meth:`FlowTraffic.flow_records`) lets the switches report flow
completion times (:class:`repro.sim.stats.FlowStats`).

Sources must be driven with consecutive ``arrivals(0), arrivals(1),
...`` calls (all run loops do); :meth:`FlowTraffic.reset` rewinds to
slot 0 under the rerun contract.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.switch.cell import Cell, ServiceClass

__all__ = ["SizeDist", "FlowRecord", "FlowTraffic", "WindowedSource"]

_PROCESSES = ("poisson", "onoff")
_MATRICES = ("uniform", "permutation", "hotspot", "incast", "skewed")


class SizeDist:
    """A distribution over flow sizes in whole cells (>= 1).

    Build with one of the classmethods:

    >>> SizeDist.fixed(8).mean()
    8.0
    >>> SizeDist.empirical([1, 10], [0.5, 0.5]).mean()
    5.5
    """

    def __init__(self, kind: str, **params):
        self.kind = kind
        self.params = params
        if kind == "fixed":
            size = params["size"]
            if size < 1:
                raise ValueError(f"flow size must be >= 1, got {size}")
            self._mean = float(size)
        elif kind == "pareto":
            alpha = params["alpha"]
            lo, hi = params["min_size"], params["max_size"]
            if alpha <= 0:
                raise ValueError(f"alpha must be positive, got {alpha}")
            if not 1 <= lo < hi:
                raise ValueError(f"need 1 <= min_size < max_size, got {lo}, {hi}")
            # Exact mean of the discretized sampler (min(floor(x), hi)).
            ks = np.arange(lo, hi + 1, dtype=np.float64)
            upper = np.minimum(self._pareto_cdf(ks + 1.0, alpha, lo, hi), 1.0)
            probs = upper - self._pareto_cdf(ks, alpha, lo, hi)
            self._mean = float((ks * probs).sum())
        elif kind == "empirical":
            sizes = [int(s) for s in params["sizes"]]
            weights = [float(w) for w in params["weights"]]
            if len(sizes) != len(weights) or not sizes:
                raise ValueError("sizes and weights must be equal-length, non-empty")
            if any(s < 1 for s in sizes):
                raise ValueError(f"flow sizes must be >= 1, got {sizes}")
            if any(w < 0 for w in weights) or sum(weights) <= 0:
                raise ValueError(f"weights must be non-negative with positive sum")
            total = sum(weights)
            self._probs = np.array([w / total for w in weights])
            self._sizes = np.array(sizes, dtype=np.int64)
            self._mean = float((self._sizes * self._probs).sum())
        else:
            raise ValueError(f"unknown size distribution {kind!r}")

    @staticmethod
    def _pareto_cdf(x: np.ndarray, alpha: float, lo: float, hi: float) -> np.ndarray:
        x = np.clip(x, lo, hi)
        denom = 1.0 - (lo / hi) ** alpha
        return (1.0 - (lo / x) ** alpha) / denom

    @classmethod
    def fixed(cls, size: int) -> "SizeDist":
        """Every flow is exactly ``size`` cells."""
        return cls("fixed", size=int(size))

    @classmethod
    def pareto(cls, alpha: float, min_size: int, max_size: int) -> "SizeDist":
        """Bounded Pareto on [min_size, max_size], shape ``alpha``.

        Heavy-tailed for small ``alpha`` (datacenter measurements
        cluster around 1.1-1.5): most flows are mice near ``min_size``,
        a few elephants near ``max_size`` carry most of the bytes.
        """
        return cls("pareto", alpha=float(alpha), min_size=int(min_size), max_size=int(max_size))

    @classmethod
    def empirical(cls, sizes: Sequence[int], weights: Sequence[float]) -> "SizeDist":
        """Discrete distribution over ``sizes`` with ``weights``."""
        return cls("empirical", sizes=list(sizes), weights=list(weights))

    def mean(self) -> float:
        """Expected flow size in cells (exact for the discrete sampler)."""
        return self._mean

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one flow size."""
        if self.kind == "fixed":
            return self.params["size"]
        if self.kind == "pareto":
            alpha = self.params["alpha"]
            lo, hi = self.params["min_size"], self.params["max_size"]
            ratio = 1.0 - (lo / hi) ** alpha
            u = rng.random()
            x = lo / (1.0 - u * ratio) ** (1.0 / alpha)
            return min(int(x), hi)
        index = rng.choice(len(self._sizes), p=self._probs)
        return int(self._sizes[index])

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return f"SizeDist.{self.kind}({inner})"


@dataclass
class FlowRecord:
    """Immutable facts about one generated flow."""

    flow_id: int
    src: int
    dst: int
    size: int
    start_slot: int


class _ActiveFlow:
    """Mutable injection state for one in-progress flow."""

    __slots__ = ("flow_id", "dst", "remaining", "seqno")

    def __init__(self, flow_id: int, dst: int, size: int):
        self.flow_id = flow_id
        self.dst = dst
        self.remaining = size
        self.seqno = 0


class FlowTraffic:
    """Flow-level arrival process implementing the TrafficSource protocol.

    Parameters
    ----------
    ports:
        Switch size N.
    load:
        Long-run offered load per input link in cells/slot, in [0, 1).
        Flow start rate is calibrated as
        ``load * ports / (group_size * mean_flow_size)`` groups per
        slot, so the sustained cell rate matches slot-level sources.
    sizes:
        A :class:`SizeDist` (default ``SizeDist.fixed(8)``).
    process:
        ``"poisson"`` -- memoryless flow starts -- or ``"onoff"`` --
        a global Markov-modulated gate: flows start only during ON
        periods (mean ``burst_slots`` slots, duty cycle ``duty``), at a
        rate scaled by ``1/duty`` so the long-run load is preserved.
    matrix:
        Demand matrix: ``"uniform"`` (src and dst uniform),
        ``"permutation"`` (dst = pi(src), re-drawn every
        ``churn_every`` slots when nonzero), ``"hotspot"`` (dst is
        ``hot_port`` with probability ``hot_fraction``, else uniform),
        ``"incast"`` (each arrival event is a fan-in group: ``fanin``
        flows from distinct sources to one uniform destination, all
        starting the same slot), ``"skewed"`` (dst drawn from a Zipf
        law with exponent ``zipf_s``; port 0 is the most popular).
    seed:
        Arrival stream seed (default-seed policy when omitted).

    The constructor validates long-run per-output feasibility: a matrix
    whose hottest output would be offered more than 1 cell/slot can
    never drain and the run would measure an unbounded transient.
    """

    def __init__(
        self,
        ports: int,
        load: float,
        sizes: Optional[SizeDist] = None,
        process: str = "poisson",
        matrix: str = "uniform",
        burst_slots: float = 50.0,
        duty: float = 0.3,
        fanin: int = 4,
        hot_port: int = 0,
        hot_fraction: float = 0.5,
        zipf_s: float = 1.0,
        churn_every: int = 0,
        seed: Optional[int] = None,
    ):
        if ports <= 0:
            raise ValueError(f"ports must be positive, got {ports}")
        if not 0.0 <= load < 1.0:
            raise ValueError(f"load must be in [0, 1), got {load}")
        if process not in _PROCESSES:
            raise ValueError(f"process must be one of {_PROCESSES}, got {process!r}")
        if matrix not in _MATRICES:
            raise ValueError(f"matrix must be one of {_MATRICES}, got {matrix!r}")
        if burst_slots < 1.0:
            raise ValueError(f"burst_slots must be >= 1, got {burst_slots}")
        if not 0.0 < duty <= 1.0:
            raise ValueError(f"duty must be in (0, 1], got {duty}")
        if matrix == "incast" and not 1 <= fanin < ports:
            raise ValueError(f"fanin must be in 1..{ports - 1}, got {fanin}")
        if matrix == "hotspot" and not 0 <= hot_port < ports:
            raise ValueError(f"hot_port {hot_port} outside [0, {ports})")
        if matrix == "hotspot" and not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
        if matrix == "skewed" and zipf_s < 0.0:
            raise ValueError(f"zipf_s must be >= 0, got {zipf_s}")
        if churn_every < 0:
            raise ValueError(f"churn_every must be >= 0, got {churn_every}")
        self.ports = ports
        self.load = load
        self.sizes = sizes if sizes is not None else SizeDist.fixed(8)
        self.process = process
        self.matrix = matrix
        self.burst_slots = burst_slots
        self.duty = duty
        self.fanin = fanin
        self.hot_port = hot_port
        self.hot_fraction = hot_fraction
        self.zipf_s = zipf_s
        self.churn_every = churn_every
        if seed is None:
            # Deterministic fallback (repro.sim.rng default-seed policy).
            from repro.sim.rng import default_seed

            seed = default_seed("traffic/flows")
        self._seed = int(seed)

        hottest = self._hottest_output_share()
        per_output = load * ports * hottest
        if per_output > 1.0 + 1e-9:
            raise ValueError(
                f"infeasible workload: the hottest output would be offered "
                f"{per_output:.3f} cells/slot (> 1) at load {load} with "
                f"matrix {matrix!r}; lower the load or flatten the matrix"
            )
        group = fanin if matrix == "incast" else 1
        self._group_rate = load * ports / (group * self.sizes.mean())
        # ON/OFF gate: geometric ON (mean burst_slots) and OFF periods
        # sized for the duty cycle; ON-rate scaled to preserve the load.
        self._p_end_on = 1.0 / burst_slots
        mean_off = burst_slots * (1.0 - duty) / duty
        self._p_end_off = 1.0 / mean_off if mean_off > 0 else 1.0
        if matrix == "skewed":
            weights = (1.0 / np.arange(1, ports + 1, dtype=np.float64)) ** zipf_s
            self._zipf_p = weights / weights.sum()
        self.reset()

    def _hottest_output_share(self) -> float:
        """Long-run fraction of all cells headed to the hottest output."""
        if self.matrix == "hotspot":
            return self.hot_fraction + (1.0 - self.hot_fraction) / self.ports
        if self.matrix == "skewed":
            weights = (1.0 / np.arange(1, self.ports + 1, dtype=np.float64)) ** self.zipf_s
            return float(weights.max() / weights.sum())
        # uniform, permutation, and incast all spread outputs uniformly.
        return 1.0 / self.ports

    def reset(self) -> None:
        """Rewind to slot 0 (rerun contract): RNG, queues, records."""
        self._rng = np.random.default_rng(self._seed)
        self._next_flow_id = 0
        self._records: Dict[int, FlowRecord] = {}
        self._queues: List[Deque[_ActiveFlow]] = [deque() for _ in range(self.ports)]
        self._on = False
        if self.matrix == "permutation":
            self._perm = self._rng.permutation(self.ports)

    # -- flow generation ------------------------------------------------

    def _sample_group(self) -> List[Tuple[int, int]]:
        """(src, dst) pairs for one arrival event."""
        rng = self._rng
        if self.matrix == "incast":
            dst = int(rng.integers(self.ports))
            others = [p for p in range(self.ports) if p != dst]
            srcs = rng.choice(len(others), size=self.fanin, replace=False)
            return [(others[int(s)], dst) for s in srcs]
        src = int(rng.integers(self.ports))
        if self.matrix == "uniform":
            dst = int(rng.integers(self.ports))
        elif self.matrix == "permutation":
            dst = int(self._perm[src])
        elif self.matrix == "hotspot":
            if rng.random() < self.hot_fraction:
                dst = self.hot_port
            else:
                dst = int(rng.integers(self.ports))
        else:  # skewed
            dst = int(rng.choice(self.ports, p=self._zipf_p))
        return [(src, dst)]

    def _start_flow(self, src: int, dst: int, slot: int) -> None:
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        size = self.sizes.sample(self._rng)
        self._records[flow_id] = FlowRecord(flow_id, src, dst, size, slot)
        self._queues[src].append(_ActiveFlow(flow_id, dst, size))

    def _groups_this_slot(self) -> int:
        if self._group_rate == 0.0:
            return 0
        if self.process == "poisson":
            return int(self._rng.poisson(self._group_rate))
        # ON/OFF: advance the gate, then draw only while ON.
        if self._on:
            if self._rng.random() < self._p_end_on:
                self._on = False
        elif self._rng.random() < self._p_end_off:
            self._on = True
        if not self._on:
            return 0
        return int(self._rng.poisson(self._group_rate / self.duty))

    def arrivals(self, slot: int) -> List[Tuple[int, Cell]]:
        """Cells arriving in ``slot`` as (input, cell) pairs.

        New flows are enqueued first (so a cell can depart in its
        flow's start slot); then each input injects at most one cell,
        round-robin over its active flows.
        """
        if (
            self.matrix == "permutation"
            and self.churn_every
            and slot > 0
            and slot % self.churn_every == 0
        ):
            self._perm = self._rng.permutation(self.ports)
        for _ in range(self._groups_this_slot()):
            for src, dst in self._sample_group():
                self._start_flow(src, dst, slot)
        cells: List[Tuple[int, Cell]] = []
        for i, queue in enumerate(self._queues):
            if not queue:
                continue
            flow = queue.popleft()
            cells.append(
                (
                    i,
                    Cell(
                        flow_id=flow.flow_id,
                        output=flow.dst,
                        service=ServiceClass.VBR,
                        seqno=flow.seqno,
                        injected_slot=slot,
                    ),
                )
            )
            flow.seqno += 1
            flow.remaining -= 1
            if flow.remaining > 0:
                queue.append(flow)
        return cells

    # -- flow bookkeeping ----------------------------------------------

    def flow_records(self) -> Dict[int, FlowRecord]:
        """All flows generated so far, keyed by flow id.

        ``start_slot`` is the slot the flow began injecting; a switch
        that has seen ``size`` departures for the flow knows its
        completion slot.  The mapping is live -- callers should read it
        after the run.
        """
        return self._records

    def pending_cells(self) -> int:
        """Cells generated but not yet injected (input-side queue depth)."""
        return sum(flow.remaining for queue in self._queues for flow in queue)

    def __repr__(self) -> str:
        return (
            f"FlowTraffic(ports={self.ports}, load={self.load}, "
            f"sizes={self.sizes!r}, process={self.process!r}, "
            f"matrix={self.matrix!r})"
        )


class WindowedSource:
    """Stop a source's arrivals after ``limit`` slots (drain window).

    Slots at or past ``limit`` return no cells and do not consult the
    wrapped source, so both backends can append drain slots without
    perturbing the wrapped RNG stream.  Every other attribute
    (``reset``, ``flow_records``, ...) is forwarded.
    """

    def __init__(self, source, limit: int):
        self.source = source
        self.ports = source.ports
        self.limit = limit

    def arrivals(self, slot: int):
        if slot >= self.limit:
            return []
        return self.source.arrivals(slot)

    def __getattr__(self, name):
        return getattr(self.source, name)
