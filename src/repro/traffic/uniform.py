"""Uniform Bernoulli traffic (Figures 3 and 5).

"Offered load is the probability that a cell arrives (departs) on a
given link in a given time slot.  The destinations of arriving cells
are uniformly distributed among the outputs." (Section 3.5.)

Each input independently receives a cell with probability ``load`` per
slot; the destination is uniform over all outputs (optionally excluding
the cell's own input, for topologies where a host never sends to
itself).  Cells are tagged with per-(input, output) flows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.switch.cell import Cell, ServiceClass

__all__ = ["UniformTraffic"]


class UniformTraffic:
    """Bernoulli i.i.d. arrivals with uniform destinations.

    Parameters
    ----------
    ports:
        Switch size N.
    load:
        Per-link offered load in [0, 1].
    seed:
        Seed for the arrival/destination stream.
    exclude_self:
        When True, destinations exclude the arriving input's own index.
        The paper's Figure 1 example "assumes for simplicity that cells
        can be sent out the same link they came in on", and the
        Figure 3 simulations follow the same convention, so the default
        is False.
    """

    def __init__(
        self,
        ports: int,
        load: float,
        seed: Optional[int] = None,
        exclude_self: bool = False,
    ):
        if ports <= 0:
            raise ValueError(f"ports must be positive, got {ports}")
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1], got {load}")
        if exclude_self and ports < 2:
            raise ValueError("exclude_self needs at least 2 ports")
        self.ports = ports
        self.load = load
        self.exclude_self = exclude_self
        if seed is None:
            # Deterministic fallback (repro.sim.rng default-seed policy).
            from repro.sim.rng import default_seed

            seed = default_seed("traffic/uniform")
        self._seed = int(seed)
        self._seqno: Dict[int, int] = {}
        self.reset()

    def reset(self) -> None:
        """Restore the as-constructed state (rerun contract).

        Rewinds the RNG stream and clears per-flow sequence numbers so a
        rerun replays the exact same arrival trace.
        """
        self._rng = np.random.default_rng(self._seed)
        self._seqno.clear()

    def _flow_id(self, input_port: int, output_port: int) -> int:
        return input_port * self.ports + output_port

    def _next_seqno(self, flow_id: int) -> int:
        seq = self._seqno.get(flow_id, 0)
        self._seqno[flow_id] = seq + 1
        return seq

    def arrivals(self, slot: int) -> List[Tuple[int, Cell]]:
        """Cells arriving in ``slot`` as (input, cell) pairs."""
        active = np.nonzero(self._rng.random(self.ports) < self.load)[0]
        cells: List[Tuple[int, Cell]] = []
        for i in active:
            i = int(i)
            if self.exclude_self:
                j = int(self._rng.integers(self.ports - 1))
                if j >= i:
                    j += 1
            else:
                j = int(self._rng.integers(self.ports))
            flow_id = self._flow_id(i, j)
            cells.append(
                (
                    i,
                    Cell(
                        flow_id=flow_id,
                        output=j,
                        service=ServiceClass.VBR,
                        seqno=self._next_seqno(flow_id),
                        injected_slot=slot,
                    ),
                )
            )
        return cells

    def __repr__(self) -> str:
        return f"UniformTraffic(ports={self.ports}, load={self.load})"
