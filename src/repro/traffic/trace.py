"""Trace record, replay, and persistence.

Wrapping a generator in :class:`TraceRecorder` captures the exact
arrival sequence; :class:`TraceTraffic` replays it.  This gives the
*common random numbers* discipline its strongest form: the Figure 3
bench can feed byte-identical arrivals to FIFO, PIM, and output
queueing, so every difference in the curves is due to the scheduler.

Traces can be saved to and loaded from JSON
(:meth:`TraceTraffic.save` / :meth:`TraceTraffic.load`), so a workload
captured once -- including hand-crafted adversarial patterns -- can be
shared and rerun across machines and versions.  A rotorsim-style
``slot,input,output`` CSV form (:meth:`TraceTraffic.load_csv` /
:meth:`TraceTraffic.save_csv`) covers traces exported from other
simulators, where per-cell flow/service metadata does not exist.
"""

from __future__ import annotations

import copy
import csv
import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.switch.cell import Cell, ServiceClass

__all__ = ["TraceRecorder", "TraceTraffic"]

Arrivals = List[Tuple[int, Cell]]


class TraceRecorder:
    """Record a traffic source's arrivals while passing them through."""

    def __init__(self, source) -> None:
        self.source = source
        self.ports = source.ports
        self.trace: Dict[int, Arrivals] = {}

    def arrivals(self, slot: int) -> Arrivals:
        """Delegate to the wrapped source, keeping a deep copy.

        Recording the same slot twice would silently corrupt the trace
        (the second recording overwrites the first, so a replay would no
        longer match either run); it is rejected instead.  Re-driving a
        recorder from slot 0 is done via :meth:`reset`.
        """
        if slot in self.trace:
            raise ValueError(
                f"slot {slot} already recorded; call reset() before "
                f"re-driving a TraceRecorder from the start"
            )
        cells = self.source.arrivals(slot)
        self.trace[slot] = copy.deepcopy(cells)
        return cells

    def reset(self) -> None:
        """Clear the trace and rewind the wrapped source (rerun contract)."""
        if hasattr(self.source, "reset"):
            self.source.reset()
        self.trace = {}

    def replay(self) -> "TraceTraffic":
        """A replayable source over everything recorded so far."""
        return TraceTraffic(self.ports, self.trace)


class TraceTraffic:
    """Replay a fixed arrival schedule.

    Parameters
    ----------
    ports:
        Switch size N.
    trace:
        Mapping from slot to its (input, cell) arrival list.  Cells are
        deep-copied at each replay so the mutable ``arrival_slot`` field
        never leaks between runs.
    """

    def __init__(self, ports: int, trace: Dict[int, Arrivals]):
        if ports <= 0:
            raise ValueError(f"ports must be positive, got {ports}")
        self.ports = ports
        self._trace = trace

    @classmethod
    def from_script(
        cls, ports: int, script: Sequence[Tuple[int, int, Cell]]
    ) -> "TraceTraffic":
        """Build from ``(slot, input, cell)`` triples (hand-written tests)."""
        trace: Dict[int, Arrivals] = {}
        for slot, input_port, cell in script:
            trace.setdefault(slot, []).append((input_port, cell))
        return cls(ports, trace)

    def arrivals(self, slot: int) -> Arrivals:
        """The recorded arrivals for ``slot`` (fresh copies)."""
        return copy.deepcopy(self._trace.get(slot, []))

    def reset(self) -> None:
        """No-op: a trace is immutable and every replay starts fresh."""

    @property
    def total_cells(self) -> int:
        """Number of cells in the whole trace."""
        return sum(len(v) for v in self._trace.values())

    @property
    def last_slot(self) -> int:
        """The last slot carrying an arrival (-1 for an empty trace)."""
        return max(self._trace) if self._trace else -1

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON.

        Persists the fields a replay needs (slot, input, flow, output,
        class, seqno, injected_slot); runtime fields like uid are
        regenerated on load.
        """
        records = []
        for slot in sorted(self._trace):
            for input_port, cell in self._trace[slot]:
                records.append(
                    {
                        "slot": slot,
                        "input": input_port,
                        "flow": cell.flow_id,
                        "output": cell.output,
                        "service": cell.service.value,
                        "seqno": cell.seqno,
                        "injected": cell.injected_slot,
                    }
                )
        payload = {"ports": self.ports, "cells": records}
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TraceTraffic":
        """Read a trace previously written by :meth:`save`.

        Trace files are hand-editable JSON, so every record is validated
        before it can poison a run: ports must be positive, each cell's
        input and output must lie in ``[0, ports)``, and slots must be
        non-negative.  Errors name the offending record.
        """
        payload = json.loads(Path(path).read_text())
        ports = payload["ports"]
        if not isinstance(ports, int) or ports <= 0:
            raise ValueError(f"{path}: ports must be a positive int, got {ports!r}")
        trace: Dict[int, Arrivals] = {}
        for index, record in enumerate(payload["cells"]):
            slot = record["slot"]
            input_port = record["input"]
            output = record["output"]
            if not isinstance(slot, int) or slot < 0:
                raise ValueError(
                    f"{path}: cell {index} has negative or non-integer "
                    f"slot {slot!r}"
                )
            if not isinstance(input_port, int) or not 0 <= input_port < ports:
                raise ValueError(
                    f"{path}: cell {index} (slot {slot}) has input "
                    f"{input_port!r} outside [0, {ports})"
                )
            if not isinstance(output, int) or not 0 <= output < ports:
                raise ValueError(
                    f"{path}: cell {index} (slot {slot}) has output "
                    f"{output!r} outside [0, {ports})"
                )
            cell = Cell(
                flow_id=record["flow"],
                output=output,
                service=ServiceClass(record["service"]),
                seqno=record["seqno"],
                injected_slot=record["injected"],
            )
            trace.setdefault(slot, []).append((input_port, cell))
        return cls(ports, trace)

    def save_csv(self, path: Union[str, Path]) -> None:
        """Write the trace in the rotorsim-style CSV form.

        One ``slot,input,output`` row per cell, header included.  The
        CSV form keeps only the routing triple -- flow ids, service
        class, and sequence numbers do not survive a round trip (use
        :meth:`save` for those).
        """
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["slot", "input", "output"])
            for slot in sorted(self._trace):
                for input_port, cell in self._trace[slot]:
                    writer.writerow([slot, input_port, cell.output])

    @classmethod
    def load_csv(cls, path: Union[str, Path], ports: int) -> "TraceTraffic":
        """Read a rotorsim-style ``(slot, input, output)`` CSV trace.

        The first data row may be a ``slot,input,output`` header; blank
        rows and ``#`` comment rows are skipped.  ``ports`` must be given
        because the CSV form carries no geometry.  Every row gets the
        same range validation as the JSON loader -- slot non-negative,
        input and output in ``[0, ports)`` -- with errors naming the
        offending line.  Cells synthesize one flow per (input, output)
        pair with per-flow sequence numbers, so FCT-free replays still
        satisfy the per-flow FIFO invariant checks.
        """
        if not isinstance(ports, int) or ports <= 0:
            raise ValueError(f"{path}: ports must be a positive int, got {ports!r}")
        trace: Dict[int, Arrivals] = {}
        seqno: Dict[int, int] = {}
        first_data_row = True
        with open(path, "r", encoding="utf-8", newline="") as handle:
            for lineno, row in enumerate(csv.reader(handle), start=1):
                if not row or row[0].lstrip().startswith("#"):
                    continue
                fields = [field.strip() for field in row]
                is_header = (
                    first_data_row
                    and fields[:3] == ["slot", "input", "output"]
                )
                first_data_row = False
                if is_header:
                    continue
                if len(fields) != 3:
                    raise ValueError(
                        f"{path}:{lineno}: expected 3 fields "
                        f"(slot,input,output), got {len(fields)}"
                    )
                try:
                    slot, input_port, output = (int(field) for field in fields)
                except ValueError:
                    raise ValueError(
                        f"{path}:{lineno}: non-integer field in "
                        f"{','.join(fields)!r}"
                    ) from None
                if slot < 0:
                    raise ValueError(
                        f"{path}:{lineno}: negative slot {slot}"
                    )
                if not 0 <= input_port < ports:
                    raise ValueError(
                        f"{path}:{lineno}: input {input_port} outside "
                        f"[0, {ports})"
                    )
                if not 0 <= output < ports:
                    raise ValueError(
                        f"{path}:{lineno}: output {output} outside "
                        f"[0, {ports})"
                    )
                flow_id = input_port * ports + output + 1
                cell = Cell(
                    flow_id=flow_id,
                    output=output,
                    service=ServiceClass.VBR,
                    seqno=seqno.get(flow_id, 0),
                    injected_slot=slot,
                )
                seqno[flow_id] = cell.seqno + 1
                trace.setdefault(slot, []).append((input_port, cell))
        return cls(ports, trace)
