"""Trace record, replay, and persistence.

Wrapping a generator in :class:`TraceRecorder` captures the exact
arrival sequence; :class:`TraceTraffic` replays it.  This gives the
*common random numbers* discipline its strongest form: the Figure 3
bench can feed byte-identical arrivals to FIFO, PIM, and output
queueing, so every difference in the curves is due to the scheduler.

Traces can be saved to and loaded from JSON
(:meth:`TraceTraffic.save` / :meth:`TraceTraffic.load`), so a workload
captured once -- including hand-crafted adversarial patterns -- can be
shared and rerun across machines and versions.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.switch.cell import Cell, ServiceClass

__all__ = ["TraceRecorder", "TraceTraffic"]

Arrivals = List[Tuple[int, Cell]]


class TraceRecorder:
    """Record a traffic source's arrivals while passing them through."""

    def __init__(self, source) -> None:
        self.source = source
        self.ports = source.ports
        self.trace: Dict[int, Arrivals] = {}

    def arrivals(self, slot: int) -> Arrivals:
        """Delegate to the wrapped source, keeping a deep copy.

        Recording the same slot twice would silently corrupt the trace
        (the second recording overwrites the first, so a replay would no
        longer match either run); it is rejected instead.  Re-driving a
        recorder from slot 0 is done via :meth:`reset`.
        """
        if slot in self.trace:
            raise ValueError(
                f"slot {slot} already recorded; call reset() before "
                f"re-driving a TraceRecorder from the start"
            )
        cells = self.source.arrivals(slot)
        self.trace[slot] = copy.deepcopy(cells)
        return cells

    def reset(self) -> None:
        """Clear the trace and rewind the wrapped source (rerun contract)."""
        if hasattr(self.source, "reset"):
            self.source.reset()
        self.trace = {}

    def replay(self) -> "TraceTraffic":
        """A replayable source over everything recorded so far."""
        return TraceTraffic(self.ports, self.trace)


class TraceTraffic:
    """Replay a fixed arrival schedule.

    Parameters
    ----------
    ports:
        Switch size N.
    trace:
        Mapping from slot to its (input, cell) arrival list.  Cells are
        deep-copied at each replay so the mutable ``arrival_slot`` field
        never leaks between runs.
    """

    def __init__(self, ports: int, trace: Dict[int, Arrivals]):
        if ports <= 0:
            raise ValueError(f"ports must be positive, got {ports}")
        self.ports = ports
        self._trace = trace

    @classmethod
    def from_script(
        cls, ports: int, script: Sequence[Tuple[int, int, Cell]]
    ) -> "TraceTraffic":
        """Build from ``(slot, input, cell)`` triples (hand-written tests)."""
        trace: Dict[int, Arrivals] = {}
        for slot, input_port, cell in script:
            trace.setdefault(slot, []).append((input_port, cell))
        return cls(ports, trace)

    def arrivals(self, slot: int) -> Arrivals:
        """The recorded arrivals for ``slot`` (fresh copies)."""
        return copy.deepcopy(self._trace.get(slot, []))

    def reset(self) -> None:
        """No-op: a trace is immutable and every replay starts fresh."""

    @property
    def total_cells(self) -> int:
        """Number of cells in the whole trace."""
        return sum(len(v) for v in self._trace.values())

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON.

        Persists the fields a replay needs (slot, input, flow, output,
        class, seqno, injected_slot); runtime fields like uid are
        regenerated on load.
        """
        records = []
        for slot in sorted(self._trace):
            for input_port, cell in self._trace[slot]:
                records.append(
                    {
                        "slot": slot,
                        "input": input_port,
                        "flow": cell.flow_id,
                        "output": cell.output,
                        "service": cell.service.value,
                        "seqno": cell.seqno,
                        "injected": cell.injected_slot,
                    }
                )
        payload = {"ports": self.ports, "cells": records}
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TraceTraffic":
        """Read a trace previously written by :meth:`save`.

        Trace files are hand-editable JSON, so every record is validated
        before it can poison a run: ports must be positive, each cell's
        input and output must lie in ``[0, ports)``, and slots must be
        non-negative.  Errors name the offending record.
        """
        payload = json.loads(Path(path).read_text())
        ports = payload["ports"]
        if not isinstance(ports, int) or ports <= 0:
            raise ValueError(f"{path}: ports must be a positive int, got {ports!r}")
        trace: Dict[int, Arrivals] = {}
        for index, record in enumerate(payload["cells"]):
            slot = record["slot"]
            input_port = record["input"]
            output = record["output"]
            if not isinstance(slot, int) or slot < 0:
                raise ValueError(
                    f"{path}: cell {index} has negative or non-integer "
                    f"slot {slot!r}"
                )
            if not isinstance(input_port, int) or not 0 <= input_port < ports:
                raise ValueError(
                    f"{path}: cell {index} (slot {slot}) has input "
                    f"{input_port!r} outside [0, {ports})"
                )
            if not isinstance(output, int) or not 0 <= output < ports:
                raise ValueError(
                    f"{path}: cell {index} (slot {slot}) has output "
                    f"{output!r} outside [0, {ports})"
                )
            cell = Cell(
                flow_id=record["flow"],
                output=output,
                service=ServiceClass(record["service"]),
                seqno=record["seqno"],
                injected_slot=record["injected"],
            )
            trace.setdefault(slot, []).append((input_port, cell))
        return cls(ports, trace)
