"""Client-server hot-spot traffic (Figure 4).

"Four of the sixteen ports were assumed to connect to servers, the
remainder to clients.  Destinations for arriving cells were randomly
chosen in such a way that client-client connections carried only 5% of
the traffic of client-server or server-server connections.  Here
offered load refers to the load on a server link." (Section 3.5.)

We realise this as a connection-weight matrix W with W[i, j] = 1 when
i or j is a server, ``client_client_ratio`` (default 0.05) when both
are clients, and 0 on the diagonal; per-connection arrival rates are
``c * W`` with the scale c chosen so a server link sees exactly the
requested ``load``.  The generator validates that no input link is
driven past capacity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.switch.cell import Cell, ServiceClass

__all__ = ["ClientServerTraffic"]


class ClientServerTraffic:
    """Hot-spot workload with server ports (Figure 4).

    Parameters
    ----------
    ports:
        Switch size N.
    load:
        Offered load **on a server link** (the x-axis of Figure 4).
    servers:
        Number of server ports (the first ``servers`` indices) or an
        explicit sequence of server port indices.  Default 4, per the
        paper.
    client_client_ratio:
        Weight of client-client connections relative to connections
        touching a server (paper: 0.05).
    seed:
        Seed for the arrival stream.
    """

    def __init__(
        self,
        ports: int,
        load: float,
        servers: "int | Sequence[int]" = 4,
        client_client_ratio: float = 0.05,
        seed: Optional[int] = None,
    ):
        if ports <= 1:
            raise ValueError(f"need at least 2 ports, got {ports}")
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1], got {load}")
        if not 0.0 <= client_client_ratio <= 1.0:
            raise ValueError(f"ratio must be in [0, 1], got {client_client_ratio}")
        if isinstance(servers, int):
            if not 0 < servers < ports:
                raise ValueError(f"server count must be in 1..{ports - 1}, got {servers}")
            server_set = set(range(servers))
        else:
            server_set = set(servers)
            if not server_set or not server_set.issubset(range(ports)):
                raise ValueError(f"invalid server indices: {sorted(server_set)}")
        self.ports = ports
        self.load = load
        self.server_ports = sorted(server_set)

        weights = np.full((ports, ports), client_client_ratio)
        for s in server_set:
            weights[s, :] = 1.0
            weights[:, s] = 1.0
        np.fill_diagonal(weights, 0.0)

        # Scale so the hottest *server* column carries exactly `load`.
        server_cols = weights[:, self.server_ports].sum(axis=0)
        scale = load / server_cols.max()
        self._rates = weights * scale

        row_loads = self._rates.sum(axis=1)
        if (row_loads > 1.0 + 1e-9).any():
            hottest = int(row_loads.argmax())
            raise ValueError(
                f"infeasible workload: input {hottest} would need load "
                f"{row_loads[hottest]:.3f} > 1 to put load {load} on a server link"
            )
        self._row_loads = np.minimum(row_loads, 1.0)
        # Destination distribution per input (rows with zero rate stay zero).
        self._dest_p = np.zeros_like(self._rates)
        for i in range(ports):
            if row_loads[i] > 0:
                self._dest_p[i] = self._rates[i] / row_loads[i]
        if seed is None:
            # Deterministic fallback (repro.sim.rng default-seed policy).
            from repro.sim.rng import default_seed

            seed = default_seed("traffic/clientserver")
        self._seed = int(seed)
        self._seqno: Dict[int, int] = {}
        self.reset()

    def reset(self) -> None:
        """Restore the as-constructed state (rerun contract).

        The rate matrix is immutable; only the RNG stream and per-flow
        sequence numbers need rewinding.
        """
        self._rng = np.random.default_rng(self._seed)
        self._seqno.clear()

    @property
    def connection_rates(self) -> np.ndarray:
        """Per-connection arrival rates (cells per slot)."""
        return self._rates.copy()

    def _next_seqno(self, flow_id: int) -> int:
        seq = self._seqno.get(flow_id, 0)
        self._seqno[flow_id] = seq + 1
        return seq

    def arrivals(self, slot: int) -> List[Tuple[int, Cell]]:
        """Cells arriving in ``slot`` as (input, cell) pairs."""
        cells: List[Tuple[int, Cell]] = []
        draws = self._rng.random(self.ports)
        for i in range(self.ports):
            if draws[i] >= self._row_loads[i]:
                continue
            j = int(self._rng.choice(self.ports, p=self._dest_p[i]))
            flow_id = i * self.ports + j
            cells.append(
                (
                    i,
                    Cell(
                        flow_id=flow_id,
                        output=j,
                        service=ServiceClass.VBR,
                        seqno=self._next_seqno(flow_id),
                        injected_slot=slot,
                    ),
                )
            )
        return cells

    def __repr__(self) -> str:
        return (
            f"ClientServerTraffic(ports={self.ports}, load={self.load}, "
            f"servers={self.server_ports})"
        )
