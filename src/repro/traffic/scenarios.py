"""Named workload scenarios over :class:`repro.traffic.flows.FlowTraffic`.

A scenario bundles a demand matrix, size distribution, arrival process,
and default run geometry under a stable name, so the same workload can
be invoked from the CLI (``repro-an2 scenario run websearch-incast``),
the differential-parity fuzzer, the benches, and the examples -- and a
number quoted in one place is reproducible everywhere else.

Scenario defaults are chosen *feasible*: the hottest output's long-run
offered load stays below 1 cell/slot so steady state exists (the
constructor of :class:`FlowTraffic` enforces this).  ``ports``, ``load``
and run lengths are defaults, overridable at build time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.traffic.flows import FlowTraffic, SizeDist

__all__ = ["Scenario", "SCENARIOS", "get_scenario", "list_scenarios"]


@dataclass(frozen=True)
class Scenario:
    """One named flow-level workload with default run geometry."""

    name: str
    description: str
    ports: int
    load: float
    slots: int
    warmup: int
    flow_kwargs: dict = field(default_factory=dict)

    def build_source(
        self,
        seed: int,
        ports: Optional[int] = None,
        load: Optional[float] = None,
    ) -> FlowTraffic:
        """Instantiate the scenario's traffic source.

        Two sources built with the same arguments generate identical
        arrival traces, which is what the cross-backend parity oracle
        relies on.
        """
        return FlowTraffic(
            ports if ports is not None else self.ports,
            load if load is not None else self.load,
            seed=seed,
            **self.flow_kwargs,
        )


# Websearch-style response sizes (in cells): mostly mice, a few
# multi-cell responses, the occasional large transfer.
_WEBSEARCH_SIZES = SizeDist.empirical(
    sizes=[1, 2, 4, 16, 64, 256],
    weights=[0.30, 0.20, 0.20, 0.15, 0.10, 0.05],
)

SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in [
        Scenario(
            name="websearch-incast",
            description=(
                "Partition-aggregate fan-in: each request triggers 4 "
                "responses from distinct sources converging on one "
                "output in the same slot, websearch-style size mix"
            ),
            ports=8,
            load=0.60,
            slots=2000,
            warmup=200,
            flow_kwargs=dict(
                sizes=_WEBSEARCH_SIZES,
                process="poisson",
                matrix="incast",
                fanin=4,
            ),
        ),
        Scenario(
            name="hotspot",
            description=(
                "Half of all heavy-tailed flows target port 0 (a "
                "server link); the hot output runs near saturation "
                "while the rest idle"
            ),
            ports=8,
            load=0.20,
            slots=2000,
            warmup=200,
            flow_kwargs=dict(
                sizes=SizeDist.pareto(alpha=1.3, min_size=2, max_size=200),
                process="poisson",
                matrix="hotspot",
                hot_port=0,
                hot_fraction=0.5,
            ),
        ),
        Scenario(
            name="permutation-churn",
            description=(
                "Conflict-free permutation demand re-drawn every 200 "
                "slots, fixed-size flows arriving in ON/OFF bursts -- "
                "stresses how fast schedulers re-converge after churn"
            ),
            ports=8,
            load=0.70,
            slots=2000,
            warmup=200,
            flow_kwargs=dict(
                sizes=SizeDist.fixed(8),
                process="onoff",
                matrix="permutation",
                churn_every=200,
                burst_slots=50.0,
                duty=0.3,
            ),
        ),
        Scenario(
            name="skewed-uniform",
            description=(
                "Zipf(1.0) output popularity with heavy-tailed sizes: "
                "port 0 sees ~37% of all cells, the tail ports starve-"
                "test fairness"
            ),
            ports=8,
            load=0.25,
            slots=2000,
            warmup=200,
            flow_kwargs=dict(
                sizes=SizeDist.pareto(alpha=1.5, min_size=1, max_size=100),
                process="poisson",
                matrix="skewed",
                zipf_s=1.0,
            ),
        ),
    ]
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name; errors list what exists."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown scenario {name!r}; known: {known}") from None


def list_scenarios() -> List[Scenario]:
    """All scenarios in registration order."""
    return list(SCENARIOS.values())
