"""Periodic traffic that triggers stationary blocking (Figure 1).

Li [1988] showed that with FIFO input queueing and periodic incoming
traffic, aggregate switch throughput can collapse to that of a single
link regardless of switch size.  Figure 1's worst case arises when
every input holds the *same* periodic destination sequence and
"scheduling priority rotates among inputs so that the first cell from
each input is scheduled in turn": all heads chase the same output, one
cell moves per slot, and the other N-1 links idle even though cells
for them sit right behind the blocked heads.

:class:`PeriodicTraffic` feeds every input the destination cycle
``0, 1, ..., N-1`` (optionally phase-shifted per input) at a given
load.  With identical phases and a FIFO switch the aggregate
throughput pins near 1-2 cells/slot; with per-input phase shifts (or
with a VOQ switch under any phase) all N links run at full rate --
which is exactly the contrast Figure 1 illustrates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.switch.cell import Cell, ServiceClass

__all__ = ["PeriodicTraffic"]


class PeriodicTraffic:
    """Deterministic periodic destination sequences.

    Parameters
    ----------
    ports:
        Switch size N.
    load:
        Probability an input receives its next periodic cell in a slot
        (1.0 reproduces the saturated Figure 1 scenario).
    staggered:
        When False (the adversarial case) every input follows the same
        destination cycle in phase.  When True input i's cycle is
        shifted by i, which is conflict-free: in any slot all inputs
        want distinct outputs.
    burst:
        Run length of consecutive cells to the same destination before
        the cycle advances.  ``burst >= ports`` is the Section 2.4
        "several input ports each receive a burst of cells for the same
        output" pattern: with in-phase bursts, FIFO heads stay
        synchronized on one hot output indefinitely -- the stationary
        blocking of Figure 1 -- while a single-cell interleave
        (``burst=1``) lets a rotating-priority FIFO switch self-stagger
        into a full-throughput pipeline.
    seed:
        Seed for the load-thinning draws (unused at load 1.0).
    """

    def __init__(
        self,
        ports: int,
        load: float = 1.0,
        staggered: bool = False,
        burst: int = 1,
        seed: Optional[int] = None,
    ):
        if ports <= 0:
            raise ValueError(f"ports must be positive, got {ports}")
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1], got {load}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.ports = ports
        self.load = load
        self.staggered = staggered
        self.burst = burst
        if seed is None:
            # Deterministic fallback (repro.sim.rng default-seed policy).
            from repro.sim.rng import default_seed

            seed = default_seed("traffic/periodic")
        self._seed = int(seed)
        self._position = np.zeros(ports, dtype=np.int64)
        self._seqno: Dict[int, int] = {}
        self.reset()

    def reset(self) -> None:
        """Restore the as-constructed state (rerun contract).

        Rewinds the thinning RNG, the per-input cycle cursors, and the
        per-flow sequence numbers.
        """
        self._rng = np.random.default_rng(self._seed)
        self._position[:] = 0
        self._seqno.clear()

    def _next_seqno(self, flow_id: int) -> int:
        seq = self._seqno.get(flow_id, 0)
        self._seqno[flow_id] = seq + 1
        return seq

    def arrivals(self, slot: int) -> List[Tuple[int, Cell]]:
        """Cells arriving in ``slot`` as (input, cell) pairs.

        Each input advances its own periodic cursor only when it emits
        a cell, so the *sequence* of destinations seen by an input is
        the full cycle regardless of load.
        """
        cells: List[Tuple[int, Cell]] = []
        draws = self._rng.random(self.ports) if self.load < 1.0 else None
        for i in range(self.ports):
            if draws is not None and draws[i] >= self.load:
                continue
            phase = i if self.staggered else 0
            j = int((self._position[i] // self.burst + phase) % self.ports)
            self._position[i] += 1
            flow_id = i * self.ports + j
            cells.append(
                (
                    i,
                    Cell(
                        flow_id=flow_id,
                        output=j,
                        service=ServiceClass.VBR,
                        seqno=self._next_seqno(flow_id),
                        injected_slot=slot,
                    ),
                )
            )
        return cells

    def __repr__(self) -> str:
        return (
            f"PeriodicTraffic(ports={self.ports}, load={self.load}, "
            f"staggered={self.staggered})"
        )
