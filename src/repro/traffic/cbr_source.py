"""Constant-bit-rate sources honouring frame reservations (Section 4).

A CBR flow reserves ``cells_per_frame`` slots per frame and may then
"transmit cells at a rate up to its requested bandwidth".  This source
emits exactly the reserved number of cells per frame, evenly spaced
(optionally jittered within the frame), which is the admissible worst
case for the Section 4 buffer/latency bounds: a conforming application
never exceeds its reservation over any frame.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.switch.cell import Cell, ServiceClass
from repro.switch.flow import Flow

__all__ = ["CBRSource"]


class CBRSource:
    """Arrival process for a set of CBR flows at one switch.

    Parameters
    ----------
    ports:
        Switch size N.
    flows:
        CBR :class:`repro.switch.flow.Flow` descriptors; ``src`` is the
        input port and ``dst`` the output port at this switch.
    frame_slots:
        Frame length F in slots; each flow emits ``cells_per_frame``
        cells per frame (must not exceed F).
    jitter:
        When True, each frame's emission slots are drawn uniformly
        without replacement instead of evenly spaced -- still
        reservation-conforming, but adversarial for buffering.
    seed:
        Seed for the jitter draws.
    """

    def __init__(
        self,
        ports: int,
        flows: Sequence[Flow],
        frame_slots: int,
        jitter: bool = False,
        seed: Optional[int] = None,
    ):
        if frame_slots <= 0:
            raise ValueError(f"frame_slots must be positive, got {frame_slots}")
        for flow in flows:
            if not flow.is_cbr:
                raise ValueError(f"flow {flow.flow_id} is not CBR")
            if flow.cells_per_frame > frame_slots:
                raise ValueError(
                    f"flow {flow.flow_id} reserves {flow.cells_per_frame} cells "
                    f"in a {frame_slots}-slot frame"
                )
            if not (0 <= flow.src < ports and 0 <= flow.dst < ports):
                raise ValueError(f"flow {flow.flow_id} ports out of range")
        self.ports = ports
        self.flows = list(flows)
        self.frame_slots = frame_slots
        self.jitter = jitter
        if seed is None:
            # Deterministic fallback (repro.sim.rng default-seed policy).
            from repro.sim.rng import default_seed

            seed = default_seed("traffic/cbr")
        self._seed = int(seed)
        self._seqno: Dict[int, int] = {}
        self._emission_slots: Dict[int, set] = {}
        self.reset()

    def reset(self) -> None:
        """Restore the as-constructed state (rerun contract).

        Rewinds the jitter RNG, discards the planned frame, and clears
        per-flow sequence numbers so a rerun replays the same emissions.
        """
        self._rng = np.random.default_rng(self._seed)
        self._seqno.clear()
        self._emission_slots = {}
        self._current_frame = -1

    def _plan_frame(self, frame_index: int) -> None:
        """Choose each flow's emission slots within the new frame."""
        self._current_frame = frame_index
        self._emission_slots = {}
        for flow in self.flows:
            k = flow.cells_per_frame
            if self.jitter:
                slots = self._rng.choice(self.frame_slots, size=k, replace=False)
            else:
                slots = (np.arange(k) * self.frame_slots) // k
            self._emission_slots[flow.flow_id] = set(int(s) for s in slots)

    def arrivals(self, slot: int) -> List[Tuple[int, Cell]]:
        """Cells arriving in ``slot`` as (input, cell) pairs."""
        frame_index, offset = divmod(slot, self.frame_slots)
        if frame_index != self._current_frame:
            self._plan_frame(frame_index)
        cells: List[Tuple[int, Cell]] = []
        for flow in self.flows:
            if offset not in self._emission_slots[flow.flow_id]:
                continue
            seq = self._seqno.get(flow.flow_id, 0)
            self._seqno[flow.flow_id] = seq + 1
            cells.append(
                (
                    flow.src,
                    Cell(
                        flow_id=flow.flow_id,
                        output=flow.dst,
                        service=ServiceClass.CBR,
                        seqno=seq,
                        injected_slot=slot,
                    ),
                )
            )
        return cells

    def __repr__(self) -> str:
        return (
            f"CBRSource(ports={self.ports}, flows={len(self.flows)}, "
            f"frame_slots={self.frame_slots}, jitter={self.jitter})"
        )
