"""On/off bursty traffic.

Section 2.4 motivates random-access buffering with bursty patterns:
"if several input ports each receive a burst of cells for the same
output, cells that arrive later for other outputs will be delayed
while the burst cells are forwarded sequentially through the
bottleneck link."  LAN traffic is rarely uniform (the paper cites the
Owicki & Karlin AN1 measurements), so the delay benches also sweep this
markov-modulated on/off source.

Each input alternates between ON periods -- every slot carries a cell,
all cells of one burst share a single destination (geometric length,
mean ``burst_length``) -- and OFF periods sized so the long-run offered
load equals ``load``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.switch.cell import Cell, ServiceClass

__all__ = ["BurstyTraffic"]


class BurstyTraffic:
    """Markov-modulated on/off arrivals with per-burst destinations.

    Parameters
    ----------
    ports:
        Switch size N.
    load:
        Long-run offered load per input link in [0, 1).
    burst_length:
        Mean ON-period length in cells (geometric); must be >= 1.
    seed:
        Seed for the modulation and destination draws.

    With mean ON length B and load rho, the mean OFF length is
    B (1 - rho) / rho, giving on-fraction rho.
    """

    def __init__(
        self,
        ports: int,
        load: float,
        burst_length: float = 10.0,
        seed: Optional[int] = None,
    ):
        if ports <= 0:
            raise ValueError(f"ports must be positive, got {ports}")
        if not 0.0 <= load < 1.0:
            raise ValueError(f"load must be in [0, 1), got {load}")
        if burst_length < 1.0:
            raise ValueError(f"burst_length must be >= 1, got {burst_length}")
        self.ports = ports
        self.load = load
        self.burst_length = burst_length
        if seed is None:
            # Deterministic fallback (repro.sim.rng default-seed policy).
            from repro.sim.rng import default_seed

            seed = default_seed("traffic/bursty")
        self._seed = int(seed)
        self._p_end_on = 1.0 / burst_length
        if load > 0:
            mean_off = burst_length * (1.0 - load) / load
            self._p_end_off = 1.0 / mean_off if mean_off > 0 else 1.0
        else:
            self._p_end_off = 0.0
        self._on = np.zeros(ports, dtype=bool)
        self._burst_dest = np.zeros(ports, dtype=np.int64)
        self._seqno: Dict[int, int] = {}
        self.reset()

    def reset(self) -> None:
        """Restore the as-constructed state (rerun contract).

        Rewinds the RNG stream and clears the on/off modulation state,
        per-burst destinations, and per-flow sequence numbers.
        """
        self._rng = np.random.default_rng(self._seed)
        self._on[:] = False
        self._burst_dest[:] = 0
        self._seqno.clear()

    def _next_seqno(self, flow_id: int) -> int:
        seq = self._seqno.get(flow_id, 0)
        self._seqno[flow_id] = seq + 1
        return seq

    def arrivals(self, slot: int) -> List[Tuple[int, Cell]]:
        """Cells arriving in ``slot`` as (input, cell) pairs."""
        if self.load == 0.0:
            return []
        cells: List[Tuple[int, Cell]] = []
        for i in range(self.ports):
            if self._on[i]:
                if self._rng.random() < self._p_end_on:
                    self._on[i] = False
            elif self._rng.random() < self._p_end_off:
                self._on[i] = True
                self._burst_dest[i] = self._rng.integers(self.ports)
            if not self._on[i]:
                continue
            j = int(self._burst_dest[i])
            flow_id = i * self.ports + j
            cells.append(
                (
                    i,
                    Cell(
                        flow_id=flow_id,
                        output=j,
                        service=ServiceClass.VBR,
                        seqno=self._next_seqno(flow_id),
                        injected_slot=slot,
                    ),
                )
            )
        return cells

    def __repr__(self) -> str:
        return (
            f"BurstyTraffic(ports={self.ports}, load={self.load}, "
            f"burst_length={self.burst_length})"
        )
