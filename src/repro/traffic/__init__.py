"""Workload generators for the paper's experiments.

Each generator implements the
:class:`repro.switch.switch.TrafficSource` protocol -- ``ports`` plus
``arrivals(slot)`` -- and assigns cells to per-(input, output) flows so
the switch's per-flow FIFO machinery is exercised:

- :mod:`repro.traffic.uniform` -- Bernoulli i.i.d. arrivals, uniform
  destinations (Figures 3 and 5, Table 1's request statistics),
- :mod:`repro.traffic.clientserver` -- the 4-servers-of-16 hot-spot
  workload of Figure 4,
- :mod:`repro.traffic.periodic` -- Li's periodic pattern that induces
  stationary blocking in FIFO switches (Figure 1),
- :mod:`repro.traffic.bursty` -- on/off markov-modulated bursts,
- :mod:`repro.traffic.cbr_source` -- reserved cells-per-frame sources
  for the Section 4 guarantees,
- :mod:`repro.traffic.flows` -- flow-level traffic (heavy-tailed sizes,
  ON/OFF bursts, incast/hotspot/permutation/skewed demand matrices)
  with per-flow completion-time bookkeeping,
- :mod:`repro.traffic.scenarios` -- the named-scenario registry over
  the flow generator (``repro-an2 scenario run websearch-incast``),
- :mod:`repro.traffic.trace` -- record/replay of any other source.

Every generator with cross-slot state also implements ``reset()``
(the rerun contract): run entry points rewind the source so repeated
runs with the same object replay identical arrival traces.
"""

from repro.traffic.uniform import UniformTraffic
from repro.traffic.clientserver import ClientServerTraffic
from repro.traffic.periodic import PeriodicTraffic
from repro.traffic.bursty import BurstyTraffic
from repro.traffic.cbr_source import CBRSource
from repro.traffic.flows import FlowRecord, FlowTraffic, SizeDist, WindowedSource
from repro.traffic.scenarios import SCENARIOS, Scenario, get_scenario, list_scenarios
from repro.traffic.trace import TraceRecorder, TraceTraffic

__all__ = [
    "UniformTraffic",
    "ClientServerTraffic",
    "PeriodicTraffic",
    "BurstyTraffic",
    "CBRSource",
    "FlowRecord",
    "FlowTraffic",
    "SizeDist",
    "WindowedSource",
    "Scenario",
    "SCENARIOS",
    "get_scenario",
    "list_scenarios",
    "TraceRecorder",
    "TraceTraffic",
]
