"""Table renderers for fleet sweep reports.

A fleet sweep's cells are heterogeneous -- a delay sweep carries
different metrics than an FCT scenario sweep -- so the generic renderer
(:func:`format_sweep_table`) derives its columns from the rows: the
union of config keys in first-appearance order, then the requested
metric columns.  Scenario-kind sweeps additionally re-render through
the existing :mod:`repro.analysis.fct_tables` helpers so fleet reports
and ``repro-an2 scenario`` quote numbers through the same code path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.analysis.fct_tables import FctRow

__all__ = ["format_sweep_table", "fct_rows_from_cells"]


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_sweep_table(
    rows: Sequence[Dict[str, Any]], metrics: Sequence[str]
) -> str:
    """Render aggregated sweep rows as a fixed-width text table.

    Each row is ``{"config": {...}, "n": samples, <metric>: value}``
    (the shape :func:`repro.fleet.report.aggregate_cells` produces).
    Config columns appear in first-appearance order; a metric missing
    from a row renders as ``-`` so mixed grids still tabulate.
    """
    if not rows:
        return "(no completed cells)"
    config_cols: List[str] = []
    for row in rows:
        for key in row.get("config", {}):
            if key not in config_cols:
                config_cols.append(key)
    columns = config_cols + ["n"] + [m for m in metrics]

    def cell_text(row: Dict[str, Any], column: str) -> str:
        if column in config_cols:
            return _format_value(row.get("config", {}).get(column, "-"))
        if column not in row:
            return "-"
        return _format_value(row[column])

    widths = {
        column: max(len(column), *(len(cell_text(row, column)) for row in rows))
        for column in columns
    }
    header = "  ".join(f"{c:>{widths[c]}}" for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "  ".join(f"{cell_text(row, c):>{widths[c]}}" for c in columns)
        )
    return "\n".join(lines)


def fct_rows_from_cells(records: Sequence[Dict[str, Any]]) -> List[FctRow]:
    """Rebuild :class:`FctRow` rows from scenario-kind cell records.

    Lets ``fleet report`` reuse ``format_fct_table`` verbatim, so the
    fleet's FCT tables match ``repro-an2 scenario run`` column for
    column.  Cells without flow metrics (e.g. an object-backend cell
    that tracked no flows) get NaN flow columns, same as the live path.
    """
    nan = float("nan")
    rows: List[FctRow] = []
    for record in records:
        config = record.get("config", {})
        metrics = record.get("metrics", {})
        rows.append(
            FctRow(
                scenario=str(config.get("scenario", "?")),
                scheduler=str(config.get("scheduler", "?")),
                backend=str(config.get("backend", "fastpath")),
                flows=int(metrics.get("flows", 0)),
                incomplete=int(metrics.get("incomplete", 0)),
                mean_fct=float(metrics.get("mean_fct", nan)),
                p99_fct=float(metrics.get("p99_fct", nan)),
                mean_slowdown=float(metrics.get("mean_slowdown", nan)),
                p99_slowdown=float(metrics.get("p99_slowdown", nan)),
                mean_delay=float(metrics.get("mean_delay", nan)),
                throughput=float(metrics.get("throughput", nan)),
            )
        )
    return rows
