"""Closed forms for single-iteration PIM throughput.

Under saturation (every VOQ non-empty, the Table 1 p = 1.0 regime),
one PIM iteration matches an input exactly when at least one output
grants to it.  Each output grants uniformly among the N requesting
inputs, independently, so an input receives no grant with probability
(1 - 1/N)^N and the expected matching size after one iteration is

    N * (1 - (1 - 1/N)^N)  ->  N (1 - 1/e)  ~  0.632 N.

This is simultaneously:

- Table 1's K=1 row at p = 1.0 (the paper measures 64%),
- the saturation throughput of a PIM-1 switch (the sharply rising
  PIM-1 curve in Figure 5, quantified by our arbiter ablation), and
- the same (1 - 1/e) that caps one *round* of statistical matching
  (Appendix C) -- the two results share the balls-in-bins core.

For request probability p < 1, conditioning on the number of
requesters of each output gives the one-iteration match fraction
computed by :func:`one_iteration_match_fraction`.
"""

from __future__ import annotations


__all__ = [
    "saturated_first_iteration_fraction",
    "one_iteration_match_fraction",
    "pim1_saturation_throughput",
]


def saturated_first_iteration_fraction(ports: int) -> float:
    """Expected fraction of inputs matched by iteration 1 at p = 1.

    1 - (1 - 1/N)^N; approaches 1 - 1/e from below as N grows.

    >>> round(saturated_first_iteration_fraction(16), 3)
    0.644
    """
    if ports < 1:
        raise ValueError(f"ports must be >= 1, got {ports}")
    return 1.0 - (1.0 - 1.0 / ports) ** ports


def one_iteration_match_fraction(ports: int, request_probability: float) -> float:
    """Expected matched-inputs fraction after one iteration, Bernoulli(p).

    An input with at least one request is matched iff some output
    grants to it.  Output j grants to input i with probability
    E[ R_ij / (number of requesters of j) ]; summing over outputs and
    using symmetry, the probability input i receives no grant is

        prod_j (1 - p * E[1 / (1 + Binomial(N-1, p))])

    with E[1/(1+B)] = (1 - (1-p)^N) / (N p) in closed form.

    Returns matched inputs / expected requesting inputs, the quantity
    Table 1's columns normalize (for K=1 the normalization by total
    maximal-match size differs slightly; the bench uses simulation for
    the exact Table 1 numbers and this formula as a sanity band).
    """
    if ports < 1:
        raise ValueError(f"ports must be >= 1, got {ports}")
    if not 0.0 < request_probability <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {request_probability}")
    p = request_probability
    n = ports
    # E[1 / (1 + Binomial(n-1, p))] = (1 - (1-p)^n) / (n p)
    grant_to_me = (1.0 - (1.0 - p) ** n) / n
    no_grant = (1.0 - grant_to_me) ** n
    matched_inputs = n * (1.0 - no_grant)
    requesting_inputs = n * (1.0 - (1.0 - p) ** n)
    return matched_inputs / requesting_inputs


def pim1_saturation_throughput(ports: int) -> float:
    """Saturation throughput per link of a PIM-1 switch.

    In steady state every VOQ is backlogged, so each slot is the p = 1
    single-iteration experiment: carried load per link equals
    :func:`saturated_first_iteration_fraction`.
    """
    return saturated_first_iteration_fraction(ports)
