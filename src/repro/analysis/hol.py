"""Head-of-line blocking limits for FIFO input queueing.

Karol, Hluchyj & Morgan [1987] (cited in Section 2.4) showed that a
FIFO-input-buffered switch saturates at 2 - sqrt(2) ~ 58.6% of link
capacity under uniform traffic as N grows.  The Figure 3 bench checks
the measured FIFO saturation against this limit, and
:func:`fifo_saturation_throughput` measures it directly by driving a
FIFO switch at full load.
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = ["KAROL_LIMIT", "fifo_saturation_throughput"]

#: Karol's asymptotic HOL saturation throughput: 2 - sqrt(2).
KAROL_LIMIT = 2.0 - math.sqrt(2.0)


def fifo_saturation_throughput(
    ports: int,
    slots: int = 20_000,
    warmup: int = 2_000,
    seed: Optional[int] = None,
) -> float:
    """Measured per-link throughput of a saturated FIFO switch.

    Drives a FIFO-input switch at offered load 1.0 with uniform
    destinations and returns the carried load per link.  For a 16x16
    switch the result lands close to (slightly above) the asymptotic
    :data:`KAROL_LIMIT`.
    """
    # Imported here to keep the analysis layer import-light.
    from repro.core.fifo import FIFOScheduler
    from repro.switch.switch import FIFOSwitch
    from repro.traffic.uniform import UniformTraffic

    switch = FIFOSwitch(ports, FIFOScheduler(policy="random", seed=seed))
    traffic = UniformTraffic(ports, load=1.0, seed=None if seed is None else seed + 1)
    result = switch.run(traffic, slots=slots, warmup=warmup)
    return result.throughput
