"""Appendix C: statistical matching throughput fractions.

With X bandwidth units per link, a connection allocated X_ij units is
matched in one round with probability exactly

    (X_ij / X) * (1 - ((X-1)/X)^X)

and in two rounds with probability at least

    (X_ij / X) * (1 - q) * (1 + q^2),   q = ((X-1)/X)^X.

As X grows, q -> 1/e, giving the paper's headline fractions 63% and
72% of the allocation.
"""

from __future__ import annotations

import math

__all__ = [
    "single_round_fraction",
    "two_round_fraction",
    "SINGLE_ROUND_LIMIT",
    "TWO_ROUND_LIMIT",
]

#: lim X->inf of the one-round delivered fraction: 1 - 1/e.
SINGLE_ROUND_LIMIT = 1.0 - 1.0 / math.e

#: lim X->inf of the two-round delivered fraction: (1 - 1/e)(1 + 1/e^2).
TWO_ROUND_LIMIT = (1.0 - 1.0 / math.e) * (1.0 + 1.0 / math.e**2)


def _unmatched_probability(units: int) -> float:
    """q = ((X-1)/X)^X: probability an input gets no virtual grant."""
    if units < 1:
        raise ValueError(f"units must be >= 1, got {units}")
    return ((units - 1.0) / units) ** units


def single_round_fraction(units: int) -> float:
    """Fraction of an allocation delivered by one round, exact in X.

    Approaches :data:`SINGLE_ROUND_LIMIT` from above as X grows
    (Appendix C: "(1 - ((X-1)/X)^X) approaches 1 - 1/e ... from
    above").
    """
    return 1.0 - _unmatched_probability(units)


def two_round_fraction(units: int) -> float:
    """Lower bound on the two-round delivered fraction, per Appendix C.

    (1 - q)(1 + q^2) with q = ((X-1)/X)^X; approaches
    :data:`TWO_ROUND_LIMIT` as X grows.
    """
    q = _unmatched_probability(units)
    return (1.0 - q) * (1.0 + q * q)
