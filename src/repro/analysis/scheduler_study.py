"""Cross-scheduler delay-vs-load study on the vectorized fast path.

Runs every kernel in the batched scheduler registry
(:data:`repro.core.batch.BATCH_SCHEDULERS`) over a common load sweep on
:func:`repro.sim.fastpath.run_fastpath`, and reports mean queueing
delay (Little's law), carried throughput, and two references per point:

- the perfect output-queueing delay (Karol's closed form,
  :func:`repro.analysis.queueing.output_queueing_delay`) -- the floor
  no input-queued scheduler can beat, and
- for the kernels that guarantee a **maximal** matching every slot
  (lqf, wavefront), the interference-drain upper bound of
  :mod:`repro.analysis.maximal_bounds`.  The bound is finite only
  below half load (speedup 1); above that it is vacuous and the table
  shows a dash.

The study is the measurement half of the Cogill-Lall claim: maximal
matchings buy a *provable* delay ceiling at light load, which the
randomized/iterative schedulers (pim, islip, qps) lack even when their
measured delay is just as good.

Use :func:`run_study` programmatically, ``repro-an2 sched-study`` from
the command line, or ``examples/scheduler_zoo_study.py`` for the
narrated version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.maximal_bounds import (
    MAXIMAL_SCHEDULERS,
    interference_drain_bound,
    mean_interference_uniform,
)
from repro.analysis.queueing import output_queueing_delay
from repro.core.batch import BATCH_SCHEDULERS

__all__ = ["StudyRow", "run_study", "format_table", "rows_for_record"]

DEFAULT_LOADS = (0.3, 0.45, 0.6, 0.75, 0.9)


@dataclass
class StudyRow:
    """One (scheduler, load) point of the study.

    ``bound`` is the interference-drain delay ceiling in slots: a
    finite number for maximal kernels below half load, ``inf`` for
    maximal kernels at or above half load (the argument is vacuous
    there), and ``None`` for kernels that do not guarantee maximality
    (the bound simply does not apply).  ``bound_ok`` is the
    measured-vs-bound verdict, ``None`` whenever the bound is absent
    or vacuous.
    """

    scheduler: str
    load: float
    mean_delay: float
    throughput: float
    mean_backlog: float
    oq_delay: float
    bound: Optional[float]
    bound_ok: Optional[bool]


def run_study(
    ports: int = 16,
    loads: Sequence[float] = DEFAULT_LOADS,
    slots: int = 2_000,
    replicas: int = 8,
    warmup: Optional[int] = None,
    iterations: int = 4,
    seed: int = 0,
    schedulers: Sequence[str] = BATCH_SCHEDULERS,
) -> List[StudyRow]:
    """Run the sweep and return one :class:`StudyRow` per point.

    Every (scheduler, load) point replays the *same* arrival streams
    (arrival seeds derive from ``seed`` and the replica index inside
    ``run_fastpath``), so differences across rows at one load are
    scheduler differences, not traffic noise.  ``warmup`` defaults to
    ``slots // 5``.
    """
    from repro.sim.fastpath import run_fastpath
    from repro.sim.rng import derive_seed

    if warmup is None:
        warmup = slots // 5
    rows: List[StudyRow] = []
    for name in schedulers:
        if name not in BATCH_SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {name!r}; registry: {BATCH_SCHEDULERS}"
            )
        for load in loads:
            result = run_fastpath(
                ports,
                load,
                slots,
                replicas=replicas,
                warmup=warmup,
                iterations=iterations,
                scheduler=name,
                seed=derive_seed(seed, f"study/{name}"),
                warmup_mode="arrival",
            )
            mean_backlog = float(
                result.backlog_integral.sum() / (result.window * replicas)
            )
            bound: Optional[float]
            bound_ok: Optional[bool]
            if name in MAXIMAL_SCHEDULERS:
                bound = interference_drain_bound(
                    mean_interference_uniform(mean_backlog, ports), load
                )
                bound_ok = (
                    result.mean_delay <= bound
                    if bound != float("inf")
                    else None
                )
            else:
                bound, bound_ok = None, None
            rows.append(
                StudyRow(
                    scheduler=name,
                    load=load,
                    mean_delay=result.mean_delay,
                    throughput=result.throughput,
                    mean_backlog=mean_backlog,
                    oq_delay=output_queueing_delay(load, ports),
                    bound=bound,
                    bound_ok=bound_ok,
                )
            )
    return rows


def format_table(rows: Sequence[StudyRow]) -> str:
    """Render the study as a fixed-width text table.

    The ``bound`` column shows the interference-drain ceiling for
    maximal kernels below half load and a dash where the bound is
    vacuous (load >= 1/2) or inapplicable (non-maximal kernel); the
    ``ok`` column marks whether the measured delay respected a finite
    bound.
    """
    header = (
        f"{'scheduler':<11}{'load':>6}{'delay':>9}{'thru':>7}"
        f"{'oq-ref':>9}{'bound':>9}{'ok':>4}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        if row.bound is None or row.bound == float("inf"):
            bound_cell, ok_cell = f"{'—':>9}", f"{'—':>4}"
        else:
            bound_cell = f"{row.bound:9.2f}"
            ok_cell = f"{'yes' if row.bound_ok else 'NO':>4}"
        lines.append(
            f"{row.scheduler:<11}{row.load:6.2f}{row.mean_delay:9.2f}"
            f"{row.throughput:7.3f}{row.oq_delay:9.2f}{bound_cell}{ok_cell}"
        )
    return "\n".join(lines)


def rows_for_record(rows: Sequence[StudyRow]) -> List[Dict[str, Any]]:
    """Flatten study rows into ``record_result``-shaped dicts."""
    out: List[Dict[str, Any]] = []
    for row in rows:
        entry: Dict[str, Any] = {
            "config": {"scheduler": row.scheduler, "load": row.load},
            "mean_delay": row.mean_delay,
            "throughput": row.throughput,
            "mean_backlog": row.mean_backlog,
            "oq_delay": row.oq_delay,
        }
        if row.bound is not None and row.bound != float("inf"):
            entry["bound"] = row.bound
            entry["bound_ok"] = bool(row.bound_ok)
        out.append(entry)
    return out
