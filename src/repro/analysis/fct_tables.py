"""Per-flow FCT tables for named-scenario runs.

One :class:`FctRow` summarizes a (scenario, scheduler, backend) run:
completed-flow count, mean/p99 flow completion time, mean/p99 slowdown
(FCT over flow size -- the size-normalized metric that exposes
mice-vs-elephant bias), plus the run's cell-level mean delay and
throughput for context.

The table renderer is shared by ``repro-an2 scenario run/smoke`` and
``examples/scenario_study.py`` so the artifact CI uploads and the
numbers quoted in the docs come from the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.sim.stats import FlowStats

__all__ = ["FctRow", "fct_row", "format_fct_table", "fct_rows_for_record"]


@dataclass
class FctRow:
    """One (scenario, scheduler, backend) run's flow-level summary."""

    scenario: str
    scheduler: str
    backend: str
    flows: int
    incomplete: int
    mean_fct: float
    p99_fct: float
    mean_slowdown: float
    p99_slowdown: float
    mean_delay: float
    throughput: float


def fct_row(
    scenario: str,
    scheduler: str,
    backend: str,
    fct: Optional[FlowStats],
    result,
) -> FctRow:
    """Build a row from a run result and its ``FlowStats``.

    ``result`` is either backend's result object -- only the common
    ``mean_delay``/``throughput`` attributes are read.  A run with no
    completed flows (or no flow tracking) yields NaN flow metrics
    rather than raising, so partial tables still render.
    """
    nan = float("nan")
    if fct is not None and fct.count:
        flows, incomplete = fct.count, fct.incomplete
        mean_fct, p99_fct = fct.mean_fct, float(fct.p99_fct)
        mean_slow, p99_slow = fct.mean_slowdown, fct.p99_slowdown
    else:
        flows = 0
        incomplete = fct.incomplete if fct is not None else 0
        mean_fct = p99_fct = mean_slow = p99_slow = nan
    return FctRow(
        scenario=scenario,
        scheduler=scheduler,
        backend=backend,
        flows=flows,
        incomplete=incomplete,
        mean_fct=mean_fct,
        p99_fct=p99_fct,
        mean_slowdown=mean_slow,
        p99_slowdown=p99_slow,
        mean_delay=float(result.mean_delay),
        throughput=float(result.throughput),
    )


def format_fct_table(rows: Sequence[FctRow]) -> str:
    """Render FCT rows as a fixed-width text table."""
    header = (
        f"{'scenario':<19}{'scheduler':<11}{'backend':<10}{'flows':>6}"
        f"{'inc':>5}{'fct':>8}{'p99':>7}{'slow':>7}{'p99':>7}"
        f"{'delay':>8}{'thru':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.scenario:<19}{row.scheduler:<11}{row.backend:<10}"
            f"{row.flows:>6d}{row.incomplete:>5d}{row.mean_fct:>8.2f}"
            f"{row.p99_fct:>7.0f}{row.mean_slowdown:>7.2f}"
            f"{row.p99_slowdown:>7.2f}{row.mean_delay:>8.2f}"
            f"{row.throughput:>7.3f}"
        )
    return "\n".join(lines)


def fct_rows_for_record(rows: Sequence[FctRow]) -> List[Dict[str, Any]]:
    """Flatten FCT rows into ``record_result``-shaped dicts."""
    out: List[Dict[str, Any]] = []
    for row in rows:
        out.append(
            {
                "config": {
                    "scenario": row.scenario,
                    "scheduler": row.scheduler,
                    "backend": row.backend,
                },
                "flows": row.flows,
                "incomplete": row.incomplete,
                "mean_fct": row.mean_fct,
                "p99_fct": row.p99_fct,
                "mean_slowdown": row.mean_slowdown,
                "p99_slowdown": row.p99_slowdown,
                "mean_delay": row.mean_delay,
                "throughput": row.throughput,
            }
        )
    return out
