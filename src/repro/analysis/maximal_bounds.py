"""Delay bounds for *maximal*-matching schedulers (Cogill-Lall style).

Cogill and Lall showed that any scheduler producing a **maximal**
matching every slot (no grantable input-output pair left unmatched --
lqf and wavefront here, but *not* PIM or iSLIP at finite iterations,
and not QPS-r at all) drains an input-queued switch whenever the
per-port load satisfies ``2*lambda < s`` (``s`` = speedup), with mean
delay bounded by a function of the backlog a cell finds on arrival.

The bound implemented here is the **interference-drain argument**,
re-derived from first principles rather than copied from the paper
(whose exact constants are not available offline; see Derivation).
It is deliberately conservative, and the cross-scheduler study in
:mod:`repro.analysis.scheduler_study` checks *measured* mean delay
against it only for the schedulers whose kernels guarantee maximality.

Derivation
----------
Tag a cell c arriving at input i for output j.  Let X be the total
number of queued cells that can *interfere* with c: cells at input i
(any destination) plus cells anywhere destined to output j.  Under a
maximal matching, any slot in which c is still queued and not served
moves at least one interfering cell -- otherwise (i, j) itself was
grantable and unmatched, contradicting maximality.  With speedup s,
each slot serves interfering cells at rate >= s while new interference
arrives at rate 2*lambda (Bernoulli arrivals at input i plus arrivals
for output j, counting the (i, j) stream once each way).  The tagged
cell therefore waits at most roughly ``E[X at arrival] / (s -
2*lambda)`` slots in expectation; we add a +2 slack for the slot
granularity of the two boundary slots (arrival and departure).  The
drift argument needs ``2*lambda < s``; at or above that point the
bound is vacuous and this module returns ``inf``.
"""

from __future__ import annotations

__all__ = [
    "MAXIMAL_SCHEDULERS",
    "interference_drain_bound",
    "mean_interference_uniform",
]

# Registry names (see repro.core.batch.BATCH_SCHEDULERS) whose kernels
# guarantee a maximal matching every slot.  PIM/iSLIP converge to
# maximal only as iterations -> N; QPS-r is explicitly non-maximal
# (single proposal per input).
MAXIMAL_SCHEDULERS = ("lqf", "wavefront")


def mean_interference_uniform(mean_backlog: float, ports: int) -> float:
    """Estimate E[X], the interference a fresh cell sees, from backlog.

    Under uniform traffic the ``mean_backlog`` cells in the switch are
    spread evenly over N inputs and N outputs, so a cell arriving at
    input i for output j sees on average ``mean_backlog / N`` cells
    ahead of it at its input and ``mean_backlog / N`` queued for its
    output -- ``2 * mean_backlog / ports`` interfering cells in total
    (the (i, j) cells are double-counted, keeping the estimate on the
    conservative side for the upper bound's input).
    """
    if ports < 1:
        raise ValueError(f"ports must be >= 1, got {ports}")
    if mean_backlog < 0:
        raise ValueError(f"mean_backlog must be >= 0, got {mean_backlog}")
    return 2.0 * mean_backlog / ports


def interference_drain_bound(
    mean_interference: float, load: float, speedup: float = 1.0
) -> float:
    """Upper bound on mean waiting time for a maximal-matching switch.

    ``mean_interference`` is E[X], the expected number of interfering
    cells a fresh arrival finds (see :func:`mean_interference_uniform`);
    ``load`` is the per-port Bernoulli arrival rate lambda; ``speedup``
    is the number of matchings executed per slot.  Returns the bound in
    slots, or ``inf`` when ``2*load >= speedup`` (the drift argument
    gives nothing there -- maximal matching only guarantees stability
    up to half load at speedup 1).
    """
    if mean_interference < 0:
        raise ValueError(
            f"mean_interference must be >= 0, got {mean_interference}"
        )
    if not 0.0 <= load <= 1.0:
        raise ValueError(f"load must be in [0, 1], got {load}")
    if speedup <= 0:
        raise ValueError(f"speedup must be > 0, got {speedup}")
    drift = speedup - 2.0 * load
    if drift <= 0:
        return float("inf")
    return (mean_interference + 2.0) / drift
