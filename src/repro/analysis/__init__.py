"""Closed-form results from the paper's appendices, as checkable code.

- :mod:`repro.analysis.iterations` -- Appendix A: the 3/4 resolution
  lemma and the E[C] <= log2(N) + 4/3 iteration bound,
- :mod:`repro.analysis.statistical_theory` -- Appendix C: the 63% / 72%
  statistical-matching throughput fractions,
- :mod:`repro.analysis.hol` -- Karol's 2 - sqrt(2) head-of-line
  saturation limit for FIFO input queueing,
- :mod:`repro.analysis.maximal_bounds` -- Cogill-Lall style
  interference-drain delay bound for maximal-matching schedulers,
- :mod:`repro.analysis.scheduler_study` -- cross-scheduler
  delay-vs-load study over the batched kernel registry,
- :mod:`repro.analysis.fct_tables` -- per-flow FCT summary tables for
  named-scenario runs.
"""

from repro.analysis.iterations import (
    expected_iterations_bound,
    measure_iterations,
    measure_unresolved_decay,
)
from repro.analysis.statistical_theory import (
    single_round_fraction,
    two_round_fraction,
    SINGLE_ROUND_LIMIT,
    TWO_ROUND_LIMIT,
)
from repro.analysis.hol import KAROL_LIMIT, fifo_saturation_throughput
from repro.analysis.queueing import (
    hol_saturation_limit,
    output_queueing_delay,
    output_queueing_mean_queue,
)
from repro.analysis.pim_theory import (
    one_iteration_match_fraction,
    pim1_saturation_throughput,
    saturated_first_iteration_fraction,
)
from repro.analysis.ascii_plot import bar_chart, line_chart
from repro.analysis.maximal_bounds import (
    MAXIMAL_SCHEDULERS,
    interference_drain_bound,
    mean_interference_uniform,
)
from repro.analysis.scheduler_study import (
    StudyRow,
    format_table,
    rows_for_record,
    run_study,
)
from repro.analysis.fct_tables import (
    FctRow,
    fct_row,
    fct_rows_for_record,
    format_fct_table,
)

__all__ = [
    "MAXIMAL_SCHEDULERS",
    "interference_drain_bound",
    "mean_interference_uniform",
    "StudyRow",
    "format_table",
    "rows_for_record",
    "run_study",
    "FctRow",
    "fct_row",
    "fct_rows_for_record",
    "format_fct_table",
    "hol_saturation_limit",
    "output_queueing_delay",
    "output_queueing_mean_queue",
    "one_iteration_match_fraction",
    "pim1_saturation_throughput",
    "saturated_first_iteration_fraction",
    "bar_chart",
    "line_chart",
    "expected_iterations_bound",
    "measure_iterations",
    "measure_unresolved_decay",
    "single_round_fraction",
    "two_round_fraction",
    "SINGLE_ROUND_LIMIT",
    "TWO_ROUND_LIMIT",
    "KAROL_LIMIT",
    "fifo_saturation_throughput",
]
