"""Appendix A: convergence of parallel iterative matching.

The appendix proves that each PIM iteration resolves, in expectation,
at least 3/4 of the remaining *unresolved requests* (a request is
unresolved while both its input and output are unmatched), from which

    E[C] <= log2(N) + 4/3

iterations to reach a maximal match, independent of the request
pattern.  The functions here measure both facts empirically so the
Appendix A bench can put measured numbers next to the bound.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.core.matching import as_request_matrix
from repro.core.pim import pim_match

__all__ = [
    "expected_iterations_bound",
    "measure_iterations",
    "measure_unresolved_decay",
]


def expected_iterations_bound(ports: int) -> float:
    """The Appendix A bound: log2(N) + 4/3."""
    if ports < 1:
        raise ValueError(f"ports must be positive, got {ports}")
    return math.log2(ports) + 4.0 / 3.0


def measure_iterations(
    ports: int,
    request_probability: float,
    trials: int,
    rng: np.random.Generator,
) -> Tuple[float, int]:
    """Empirical (mean, max) iterations for PIM to reach maximality.

    Each trial draws an i.i.d. Bernoulli request matrix and runs PIM to
    completion; the count is the number of iterations that added at
    least one pair, plus the final confirming iteration -- matching
    Appendix A's C, "the step on which the last request is resolved".
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    if not 0.0 <= request_probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {request_probability}")
    total = 0.0
    worst = 0
    for _ in range(trials):
        requests = rng.random((ports, ports)) < request_probability
        result = pim_match(requests, rng, iterations=None)
        iterations = _resolving_iterations(result.cumulative_sizes)
        total += iterations
        worst = max(worst, iterations)
    return total / trials, worst


def _resolving_iterations(cumulative_sizes: Tuple[int, ...]) -> int:
    """Number of iterations up to and including the last that added a pair."""
    last_useful = 0
    previous = 0
    for index, size in enumerate(cumulative_sizes, start=1):
        if size > previous:
            last_useful = index
        previous = size
    return last_useful


def measure_unresolved_decay(
    ports: int,
    request_probability: float,
    trials: int,
    rng: np.random.Generator,
) -> List[float]:
    """Mean unresolved-request counts after each iteration.

    Appendix A's lemma implies the sequence should decay by a factor of
    at least 4 per iteration on average.  Returns the mean counts
    (index 0 is before any iteration).
    """
    sums: List[float] = []
    for _ in range(trials):
        requests = as_request_matrix(rng.random((ports, ports)) < request_probability)
        counts = _unresolved_trajectory(requests, rng)
        for index, count in enumerate(counts):
            if index == len(sums):
                sums.append(0.0)
            sums[index] += count
    return [s / trials for s in sums]


def _unresolved_trajectory(requests: np.ndarray, rng: np.random.Generator) -> List[int]:
    """Unresolved request counts before/after each PIM iteration."""
    n = requests.shape[0]
    input_matched = np.zeros(n, dtype=bool)
    output_matched = np.zeros(n, dtype=bool)
    counts = [int(requests.sum())]
    while True:
        active = requests & ~input_matched[:, None] & ~output_matched[None, :]
        if not active.any():
            break
        keys = np.where(active, rng.random(active.shape), -1.0)
        grant_input = keys.argmax(axis=0)
        has_request = keys.max(axis=0) >= 0.0
        grants = np.zeros_like(active)
        cols = np.nonzero(has_request)[0]
        grants[grant_input[cols], cols] = True
        keys2 = np.where(grants, rng.random(grants.shape), -1.0)
        accept_output = keys2.argmax(axis=1)
        has_grant = keys2.max(axis=1) >= 0.0
        rows = np.nonzero(has_grant)[0]
        input_matched[rows] = True
        output_matched[accept_output[rows]] = True
        active = requests & ~input_matched[:, None] & ~output_matched[None, :]
        counts.append(int(active.sum()))
    return counts
