"""Closed-form queueing references for the switch simulations.

Karol, Hluchyj & Morgan [1987] (the paper's reference for both the
58.6% HOL limit and the output-queueing ideal) derive the steady-state
mean queue length of an N x N output-queued switch under uniform
Bernoulli arrivals; by Little's law the mean *waiting* time is

    W(N, rho) = (N - 1) / N * rho / (2 (1 - rho))

cell slots.  These formulas give the Figure 3 benches an independent
analytic check: our output-queueing curve must land on W, and every
input-buffered scheduler must sit above it.

Also provided: the saturated-HOL fixed-point (the 2 - sqrt(2) limit as
N -> infinity) evaluated for finite N via the Karol recurrence, used
to check the FIFO switch's measured saturation beyond the asymptote.
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = [
    "output_queueing_delay",
    "output_queueing_mean_queue",
    "hol_saturation_limit",
]


def output_queueing_delay(load: float, ports: int) -> float:
    """Karol's mean waiting time for perfect output queueing, in slots.

    ``load`` is the per-link offered load (rho < 1), ``ports`` the
    switch size N; arrivals are i.i.d. Bernoulli with uniform
    destinations.  Diverges as rho -> 1.
    """
    if not 0.0 <= load < 1.0:
        raise ValueError(f"load must be in [0, 1), got {load}")
    if ports < 1:
        raise ValueError(f"ports must be >= 1, got {ports}")
    return (ports - 1) / ports * load / (2.0 * (1.0 - load))


def output_queueing_mean_queue(load: float, ports: int) -> float:
    """Mean output-queue length (Little: lambda x W, lambda = rho)."""
    return load * output_queueing_delay(load, ports)


def hol_saturation_limit(ports: Optional[int] = None) -> float:
    """Saturation throughput of FIFO input queueing, uniform traffic.

    With ``ports`` None, the asymptotic 2 - sqrt(2).  For finite N the
    exact values (Karol et al., Table I) are tabulated; intermediate
    sizes interpolate between neighbours, which is accurate to ~1e-3
    and plenty for test tolerances.
    """
    if ports is None:
        return 2.0 - math.sqrt(2.0)
    if ports < 1:
        raise ValueError(f"ports must be >= 1, got {ports}")
    # Karol et al. 1987, Table I: saturation throughput vs N.
    table = {
        1: 1.0000,
        2: 0.7500,
        3: 0.6825,
        4: 0.6553,
        5: 0.6399,
        6: 0.6302,
        7: 0.6234,
        8: 0.6184,
    }
    if ports in table:
        return table[ports]
    if ports > 8:
        # Between N=8 and the asymptote; geometric approach.
        asymptote = 2.0 - math.sqrt(2.0)
        return asymptote + (table[8] - asymptote) * (8.0 / ports)
    raise AssertionError("unreachable")
