"""Terminal plotting for delay/throughput curves.

The library deliberately has no plotting dependency; these helpers
render the paper's figure shapes as ASCII so the examples and benches
can show -- not just tabulate -- curves like Figure 3's delay
explosion at the FIFO saturation knee.

>>> chart = line_chart({"a": [(0, 0.0), (1, 1.0)]}, width=20, height=4)
>>> print(chart)  # doctest: +SKIP
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence, Tuple

__all__ = ["line_chart", "bar_chart"]

_MARKERS = "*o+x#@%&"


def line_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    logy: bool = False,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render (x, y) series as an ASCII scatter/line chart.

    Parameters
    ----------
    series:
        Mapping from series name to its (x, y) points.
    width, height:
        Plot area in characters.
    logy:
        Log-scale the y axis (useful for delay curves, which span
        orders of magnitude near saturation).
    x_label, y_label:
        Axis annotations.

    Returns a multi-line string; the legend maps marker characters to
    series names.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 4:
        raise ValueError("chart must be at least 8x4")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("series contain no points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if logy:
        floor = min(y for y in ys if y > 0) if any(y > 0 for y in ys) else 1e-3
        transform = lambda y: math.log10(max(y, floor / 10))
    else:
        transform = lambda y: y
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(transform(y) for y in ys), max(transform(y) for y in ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in pts:
            col = int(round((x - x_low) / x_span * (width - 1)))
            row = int(round((transform(y) - y_low) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    top_value = 10**y_high if logy else y_high
    bottom_value = 10**y_low if logy else y_low
    lines = []
    if y_label:
        lines.append(y_label + ("  (log scale)" if logy else ""))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = f"{top_value:8.1f} |"
        elif row_index == height - 1:
            prefix = f"{bottom_value:8.1f} |"
        else:
            prefix = " " * 9 + "|"
        lines.append(prefix + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    axis = f"{x_low:<10.2f}{' ' * max(width - 20, 0)}{x_high:>10.2f}"
    lines.append(" " * 10 + axis)
    if x_label:
        lines.append(" " * 10 + x_label.center(width))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append("  " + legend)
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    reference: Optional[float] = None,
    reference_label: str = "",
) -> str:
    """Render labelled values as horizontal ASCII bars.

    ``reference`` draws a vertical tick at that value (e.g. the fair
    share in the Figure 8/9 charts).
    """
    if not values:
        raise ValueError("need at least one value")
    if any(v < 0 for v in values.values()):
        raise ValueError("values must be non-negative")
    peak = max(values.values()) or 1.0
    label_width = max(len(str(k)) for k in values)
    tick = None
    if reference is not None:
        tick = int(round(reference / peak * width))
    lines = []
    for key, value in values.items():
        filled = int(round(value / peak * width))
        chars = ["#"] * filled + [" "] * (width - filled)
        if tick is not None and 0 <= tick < width and chars[tick] == " ":
            chars[tick] = "|"
        lines.append(f"{str(key):>{label_width}} |{''.join(chars)}| {value:.3f}")
    if reference is not None and reference_label:
        tick = int(round(reference / peak * width))
        lines.append(
            f"{'':>{label_width}} " + " " * (tick + 1) + f"^ {reference_label}"
        )
    return "\n".join(lines)
